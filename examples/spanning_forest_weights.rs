//! Minimum spanning forests on weighted graphs, with fault injection.
//!
//! Two things are demonstrated on a realistic clustering-style workload
//! (random geometric-ish weights on a sparse graph):
//!
//! 1. the AMPC MSF algorithm (Section 7) produces exactly the Kruskal
//!    forest while using `O(log log_{m/n} n)` rounds, compared against the
//!    Borůvka MPC baseline's `Θ(log n)` rounds;
//! 2. the model's fault-tolerance story (Section 2.1): machines are crashed
//!    mid-round via a fault plan and simply re-execute against the immutable
//!    previous-round snapshot, changing nothing in the output.
//!
//! Run with: `cargo run --release --example spanning_forest_weights`

use ampc_suite::prelude::*;
use ampc_suite::runtime::FaultPlan;

fn main() {
    println!("Minimum spanning forest — AMPC (Section 7) vs Borůvka (MPC)\n");
    println!(
        "{:>8} {:>9} {:>13} {:>13} {:>16} {:>12}",
        "n", "m", "AMPC rounds", "MPC rounds", "AMPC weight", "Kruskal"
    );

    for &(n, extra) in &[
        (2_000usize, 6_000usize),
        (10_000, 30_000),
        (30_000, 120_000),
    ] {
        let base = generators::connected_gnm(n, extra, 11);
        let graph = generators::with_random_weights(&base, 12);

        let ampc = minimum_spanning_forest(&graph, 0.5, 11);
        let (_, kruskal_weight) = sequential::kruskal_msf(&graph);
        let (_, boruvka_weight, boruvka_stats) = ampc_suite::mpc::boruvka_msf(&graph, 128);

        assert_eq!(ampc.output.total_weight, kruskal_weight);
        assert_eq!(boruvka_weight, kruskal_weight);

        println!(
            "{:>8} {:>9} {:>13} {:>13} {:>16} {:>12}",
            n,
            graph.num_edges(),
            ampc.rounds(),
            boruvka_stats.num_rounds(),
            ampc.output.total_weight,
            kruskal_weight
        );
    }

    // --- Fault tolerance demo ------------------------------------------------
    println!("\nFault tolerance (Section 2.1): crash machines mid-round and re-run them.");
    let config = AmpcConfig::for_graph(50_000, 0, 0.5).with_seed(3);
    let machines = config.num_machines();
    let plan = FaultPlan::none()
        .fail(0, 1)
        .fail(0, machines / 2)
        .fail(1, 0);

    let run = |plan: FaultPlan| {
        let mut rt = AmpcRuntime::new(config.clone()).with_fault_plan(plan);
        rt.load_input((0..10_000u64).map(|x| {
            (
                ampc_suite::dds::Key::of(ampc_suite::dds::KeyTag::Successor, x),
                ampc_suite::dds::Value::scalar((x + 1) % 10_000),
            )
        }));
        // Two rounds of pointer chasing.
        let mut total = 0u64;
        for _ in 0..2 {
            let sums = rt
                .run_round(machines, |ctx| {
                    let mut x = ctx.machine_id() as u64 % 10_000;
                    let mut acc = 0u64;
                    for _ in 0..64 {
                        x = ctx
                            .read(ampc_suite::dds::Key::of(
                                ampc_suite::dds::KeyTag::Successor,
                                x,
                            ))
                            .map(|v| v.x)
                            .unwrap_or(x);
                        acc = acc.wrapping_add(x);
                    }
                    acc
                })
                .unwrap();
            total = total.wrapping_add(sums.iter().copied().fold(0u64, u64::wrapping_add));
        }
        (total, rt.stats().restarts())
    };

    let (clean, restarts_clean) = run(FaultPlan::none());
    let (faulty, restarts_faulty) = run(plan);
    println!("  checksum without faults: {clean} (restarts: {restarts_clean})");
    println!("  checksum with 3 crashes: {faulty} (restarts: {restarts_faulty})");
    assert_eq!(
        clean, faulty,
        "restarted machines must reproduce identical results"
    );
    println!("  identical — failed machines recompute from the immutable snapshot.");
}

//! Quickstart: run the headline result of the paper end to end.
//!
//! The 2-Cycle problem — "is this graph one big cycle or two half-sized
//! cycles?" — is conjectured to need Ω(log n) rounds in the MPC model, but
//! the AMPC algorithm of Section 4 solves it in O(1/ε) rounds.  This example
//! runs both on the same instances and prints the round counts side by side.
//!
//! Run with: `cargo run --release --example quickstart [-- <backend>]`
//!
//! The DDS backend serving the AMPC runs is selectable without touching
//! code: pass `local`, `channel` or `remote` as the first argument (or set
//! `AMPC_BACKEND`).  `remote` runs every round over localhost TCP sockets
//! speaking the `ampc_dds::proto` wire format — same answers, same round
//! counts, per the cross-backend determinism suite.

use ampc_suite::prelude::*;

fn main() {
    let backend: DdsBackendKind = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("AMPC_BACKEND").ok())
        .map(|name| match name.parse() {
            Ok(kind) => kind,
            Err(err) => {
                eprintln!("{err}");
                std::process::exit(2);
            }
        })
        .unwrap_or_default();

    println!("AMPC quickstart — the 2-Cycle problem (paper Section 4)");
    println!("DDS backend: {backend}\n");
    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "n", "instance", "AMPC rounds", "MPC rounds"
    );

    for &n in &[1_000usize, 10_000, 100_000] {
        for &two in &[false, true] {
            let graph = generators::two_cycle_instance(n, two, 42);

            // AMPC (Section 4): Shrink + single-machine finish, O(1/ε)
            // rounds, on the configured backend.
            let config = AmpcConfig::for_graph(n, graph.num_edges(), 0.5)
                .with_seed(42)
                .with_backend(backend);
            let ampc = two_cycle_with(&graph, &config);

            // MPC baseline: pointer doubling, Θ(log n) rounds.
            let (mpc_answer, mpc_stats) = ampc_suite::mpc::two_cycle_mpc(&graph, 64);

            let expected = if two {
                TwoCycleAnswer::TwoCycles
            } else {
                TwoCycleAnswer::OneCycle
            };
            assert_eq!(ampc.output, expected, "AMPC answer must match the instance");
            let mpc_matches = matches!(
                (mpc_answer, two),
                (ampc_suite::mpc::TwoCycleAnswer::OneCycle, false)
                    | (ampc_suite::mpc::TwoCycleAnswer::TwoCycles, true)
            );
            assert!(mpc_matches, "MPC answer must match the instance");

            println!(
                "{:>10} {:>12} {:>14} {:>14}",
                n,
                if two { "two cycles" } else { "one cycle" },
                ampc.rounds(),
                mpc_stats.num_rounds()
            );
        }
    }

    println!("\nThe AMPC round count stays flat while the MPC baseline grows with log n —");
    println!("that gap is exactly why the 2-Cycle conjecture fails in the AMPC model.");
}

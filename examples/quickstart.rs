//! Quickstart: run the headline result of the paper end to end.
//!
//! The 2-Cycle problem — "is this graph one big cycle or two half-sized
//! cycles?" — is conjectured to need Ω(log n) rounds in the MPC model, but
//! the AMPC algorithm of Section 4 solves it in O(1/ε) rounds.  This example
//! runs both on the same instances and prints the round counts side by side.
//!
//! Run with: `cargo run --release --example quickstart [-- <backend>]`
//!
//! The DDS backend serving the AMPC runs is selectable without touching
//! code: pass `local`, `channel` or `remote` as the first argument (or set
//! `AMPC_BACKEND`).  `remote` runs every round over localhost TCP sockets
//! speaking the `ampc_dds::proto` wire format — same answers, same round
//! counts, per the cross-backend determinism suite.
//!
//! # Two-process mode
//!
//! The store can also live in a *separate owner process*:
//!
//! ```text
//! cargo run --release --example quickstart -- --serve 127.0.0.1:7471
//! cargo run --release --example quickstart -- --connect 127.0.0.1:7471
//! ```
//!
//! `--serve` starts a standalone DDS owner (`ampc_dds::serve`) and blocks;
//! `--connect` runs the full quickstart against it, every runtime holding
//! its own leased session over real sockets, with automatic reconnect if a
//! connection drops mid-round.  Any number of `--connect` clients may share
//! one `--serve` process concurrently.
//!
//! # Cluster mode
//!
//! The store can also be *sharded across several owners*, each holding a
//! contiguous shard range and coordinated through the two-phase advance
//! barrier:
//!
//! ```text
//! cargo run --release --example quickstart -- --cluster 3
//! ```
//!
//! spawns 3 cluster owners on ephemeral ports inside this process and runs
//! the quickstart against them.  To split the owners into their own
//! processes, give every owner the same peer list plus its own index, then
//! point a client at the list (or set `AMPC_ENDPOINTS`):
//!
//! ```text
//! cargo run --release --example quickstart -- --serve-cluster 0 127.0.0.1:7481,127.0.0.1:7482
//! cargo run --release --example quickstart -- --serve-cluster 1 127.0.0.1:7481,127.0.0.1:7482
//! cargo run --release --example quickstart -- --connect-cluster 127.0.0.1:7481,127.0.0.1:7482
//! ```

use ampc_suite::prelude::*;
use ampc_suite::runtime::{parse_endpoint_list, MAX_CLUSTER_OWNERS};

fn usage() -> ! {
    eprintln!(
        "usage: quickstart [local|channel|remote|cluster]\n       \
         quickstart --serve <addr>\n       \
         quickstart --connect <addr>\n       \
         quickstart --cluster <owners>\n       \
         quickstart --serve-cluster <node> <addr,addr,...>\n       \
         quickstart --connect-cluster <addr,addr,...>\n\n\
         AMPC_ENDPOINTS=<addr,addr,...> selects cluster mode without flags."
    );
    std::process::exit(2);
}

/// Parse a comma-separated endpoint list, exiting with the typed
/// [`ampc_runtime::AmpcError`] message on malformed input (never a panic).
fn endpoints_or_exit(list: &str) -> Vec<String> {
    parse_endpoint_list(list).unwrap_or_else(|err| {
        eprintln!("{err}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--serve") => {
            let addr = args.get(1).cloned().unwrap_or_else(|| usage());
            let server = ampc_suite::dds::serve(addr.as_str()).unwrap_or_else(|err| {
                eprintln!("failed to bind the DDS owner on {addr}: {err}");
                std::process::exit(1);
            });
            println!("AMPC DDS owner serving on {}", server.local_addr());
            println!("(press Ctrl-C to stop; clients connect with --connect {addr})");
            loop {
                // Parked on purpose: the example serves until Ctrl-C.
                #[allow(clippy::disallowed_methods)]
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Some("--connect") => {
            let addr = args.get(1).cloned().unwrap_or_else(|| usage());
            run_quickstart(Mode::Connect(addr));
        }
        Some("--cluster") => {
            let owners: usize = args
                .get(1)
                .and_then(|raw| raw.parse().ok())
                .unwrap_or_else(|| usage());
            if owners == 0 || owners > MAX_CLUSTER_OWNERS {
                eprintln!("--cluster takes 1..={MAX_CLUSTER_OWNERS} owners, got {owners}");
                std::process::exit(2);
            }
            // Spawn the owners on ephemeral ports: bind every listener first
            // so the full peer list exists before any owner starts serving.
            let listeners: Vec<std::net::TcpListener> = (0..owners)
                .map(|_| std::net::TcpListener::bind("127.0.0.1:0"))
                .collect::<std::io::Result<_>>()
                .unwrap_or_else(|err| {
                    eprintln!("failed to bind a cluster owner: {err}");
                    std::process::exit(1);
                });
            let peers: Vec<String> = listeners
                .iter()
                .map(|l| {
                    l.local_addr()
                        .expect("bound listener has an addr")
                        .to_string()
                })
                .collect();
            let servers: Vec<_> = listeners
                .into_iter()
                .enumerate()
                .map(|(node, listener)| {
                    ampc_suite::dds::serve::serve_cluster_listener(listener, node, peers.clone())
                        .unwrap_or_else(|err| {
                            eprintln!("failed to start cluster owner {node}: {err}");
                            std::process::exit(1);
                        })
                })
                .collect();
            println!("spawned {owners} cluster owners on {}", peers.join(", "));
            run_quickstart(Mode::Cluster(peers));
            drop(servers); // owners outlive every client runtime
        }
        Some("--serve-cluster") => {
            let node: usize = args
                .get(1)
                .and_then(|raw| raw.parse().ok())
                .unwrap_or_else(|| usage());
            let peers =
                endpoints_or_exit(args.get(2).map(String::as_str).unwrap_or_else(|| usage()));
            if node >= peers.len() {
                eprintln!(
                    "--serve-cluster node {node} is out of range for {} peers",
                    peers.len()
                );
                std::process::exit(2);
            }
            let addr = peers[node].clone();
            let server = ampc_suite::dds::serve_cluster(addr.as_str(), node, peers.clone())
                .unwrap_or_else(|err| {
                    eprintln!("failed to bind cluster owner {node} on {addr}: {err}");
                    std::process::exit(1);
                });
            println!(
                "AMPC DDS cluster owner {node}/{} serving on {}",
                peers.len(),
                server.local_addr()
            );
            println!(
                "(press Ctrl-C to stop; clients connect with --connect-cluster {})",
                peers.join(",")
            );
            loop {
                // Parked on purpose: the example serves until Ctrl-C.
                #[allow(clippy::disallowed_methods)]
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Some("--connect-cluster") => {
            let list = args.get(1).cloned().unwrap_or_else(|| usage());
            run_quickstart(Mode::Cluster(endpoints_or_exit(&list)));
        }
        Some(name) if name.starts_with('-') => usage(),
        Some(name) => {
            let backend = name.parse().unwrap_or_else(|err| {
                eprintln!("{err}");
                std::process::exit(2);
            });
            run_quickstart(Mode::InProcess(backend));
        }
        None => {
            if let Ok(list) = std::env::var("AMPC_ENDPOINTS") {
                run_quickstart(Mode::Cluster(endpoints_or_exit(&list)));
                return;
            }
            let backend = match std::env::var("AMPC_BACKEND") {
                Ok(name) => name.parse().unwrap_or_else(|err| {
                    eprintln!("{err}");
                    std::process::exit(2);
                }),
                Err(_) => DdsBackendKind::default(),
            };
            run_quickstart(Mode::InProcess(backend));
        }
    }
}

enum Mode {
    /// Owners spawned inside this process, per `DdsBackendKind`.
    InProcess(DdsBackendKind),
    /// Owners served by an external `--serve` process at this address.
    Connect(String),
    /// Shards split across cluster owners at these endpoints.
    Cluster(Vec<String>),
}

fn run_quickstart(mode: Mode) {
    println!("AMPC quickstart — the 2-Cycle problem (paper Section 4)");
    match &mode {
        Mode::InProcess(backend) => println!("DDS backend: {backend}\n"),
        Mode::Connect(addr) => println!("DDS backend: remote, served by {addr}\n"),
        Mode::Cluster(endpoints) => println!(
            "DDS backend: cluster, {} owners at {}\n",
            endpoints.len(),
            endpoints.join(", ")
        ),
    }
    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "n", "instance", "AMPC rounds", "MPC rounds"
    );

    for &n in &[1_000usize, 10_000, 100_000] {
        for &two in &[false, true] {
            let graph = generators::two_cycle_instance(n, two, 42);

            // AMPC (Section 4): Shrink + single-machine finish, O(1/ε)
            // rounds, on the configured backend.
            let config = AmpcConfig::for_graph(n, graph.num_edges(), 0.5).with_seed(42);
            let config = match &mode {
                Mode::InProcess(backend) => config.with_backend(*backend),
                Mode::Connect(addr) => config.with_remote_endpoint(addr.clone()),
                Mode::Cluster(endpoints) => config
                    .with_cluster_endpoints(endpoints.clone())
                    .unwrap_or_else(|err| {
                        eprintln!("{err}");
                        std::process::exit(2);
                    }),
            };
            let ampc = two_cycle_with(&graph, &config);

            // MPC baseline: pointer doubling, Θ(log n) rounds.
            let (mpc_answer, mpc_stats) = ampc_suite::mpc::two_cycle_mpc(&graph, 64);

            let expected = if two {
                TwoCycleAnswer::TwoCycles
            } else {
                TwoCycleAnswer::OneCycle
            };
            assert_eq!(ampc.output, expected, "AMPC answer must match the instance");
            let mpc_matches = matches!(
                (mpc_answer, two),
                (ampc_suite::mpc::TwoCycleAnswer::OneCycle, false)
                    | (ampc_suite::mpc::TwoCycleAnswer::TwoCycles, true)
            );
            assert!(mpc_matches, "MPC answer must match the instance");

            println!(
                "{:>10} {:>12} {:>14} {:>14}",
                n,
                if two { "two cycles" } else { "one cycle" },
                ampc.rounds(),
                mpc_stats.num_rounds()
            );
        }
    }

    println!("\nThe AMPC round count stays flat while the MPC baseline grows with log n —");
    println!("that gap is exactly why the 2-Cycle conjecture fails in the AMPC model.");
}

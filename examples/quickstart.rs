//! Quickstart: run the headline result of the paper end to end.
//!
//! The 2-Cycle problem — "is this graph one big cycle or two half-sized
//! cycles?" — is conjectured to need Ω(log n) rounds in the MPC model, but
//! the AMPC algorithm of Section 4 solves it in O(1/ε) rounds.  This example
//! runs both on the same instances and prints the round counts side by side.
//!
//! Run with: `cargo run --release --example quickstart [-- <backend>]`
//!
//! The DDS backend serving the AMPC runs is selectable without touching
//! code: pass `local`, `channel` or `remote` as the first argument (or set
//! `AMPC_BACKEND`).  `remote` runs every round over localhost TCP sockets
//! speaking the `ampc_dds::proto` wire format — same answers, same round
//! counts, per the cross-backend determinism suite.
//!
//! # Two-process mode
//!
//! The store can also live in a *separate owner process*:
//!
//! ```text
//! cargo run --release --example quickstart -- --serve 127.0.0.1:7471
//! cargo run --release --example quickstart -- --connect 127.0.0.1:7471
//! ```
//!
//! `--serve` starts a standalone DDS owner (`ampc_dds::serve`) and blocks;
//! `--connect` runs the full quickstart against it, every runtime holding
//! its own leased session over real sockets, with automatic reconnect if a
//! connection drops mid-round.  Any number of `--connect` clients may share
//! one `--serve` process concurrently.

use ampc_suite::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: quickstart [local|channel|remote]\n       quickstart --serve <addr>\n       quickstart --connect <addr>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--serve") => {
            let addr = args.get(1).cloned().unwrap_or_else(|| usage());
            let server = ampc_suite::dds::serve(addr.as_str()).unwrap_or_else(|err| {
                eprintln!("failed to bind the DDS owner on {addr}: {err}");
                std::process::exit(1);
            });
            println!("AMPC DDS owner serving on {}", server.local_addr());
            println!("(press Ctrl-C to stop; clients connect with --connect {addr})");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Some("--connect") => {
            let addr = args.get(1).cloned().unwrap_or_else(|| usage());
            run_quickstart(Mode::Connect(addr));
        }
        Some(name) if name.starts_with('-') => usage(),
        Some(name) => {
            let backend = name.parse().unwrap_or_else(|err| {
                eprintln!("{err}");
                std::process::exit(2);
            });
            run_quickstart(Mode::InProcess(backend));
        }
        None => {
            let backend = match std::env::var("AMPC_BACKEND") {
                Ok(name) => name.parse().unwrap_or_else(|err| {
                    eprintln!("{err}");
                    std::process::exit(2);
                }),
                Err(_) => DdsBackendKind::default(),
            };
            run_quickstart(Mode::InProcess(backend));
        }
    }
}

enum Mode {
    /// Owners spawned inside this process, per `DdsBackendKind`.
    InProcess(DdsBackendKind),
    /// Owners served by an external `--serve` process at this address.
    Connect(String),
}

fn run_quickstart(mode: Mode) {
    println!("AMPC quickstart — the 2-Cycle problem (paper Section 4)");
    match &mode {
        Mode::InProcess(backend) => println!("DDS backend: {backend}\n"),
        Mode::Connect(addr) => println!("DDS backend: remote, served by {addr}\n"),
    }
    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "n", "instance", "AMPC rounds", "MPC rounds"
    );

    for &n in &[1_000usize, 10_000, 100_000] {
        for &two in &[false, true] {
            let graph = generators::two_cycle_instance(n, two, 42);

            // AMPC (Section 4): Shrink + single-machine finish, O(1/ε)
            // rounds, on the configured backend.
            let config = AmpcConfig::for_graph(n, graph.num_edges(), 0.5).with_seed(42);
            let config = match &mode {
                Mode::InProcess(backend) => config.with_backend(*backend),
                Mode::Connect(addr) => config.with_remote_endpoint(addr.clone()),
            };
            let ampc = two_cycle_with(&graph, &config);

            // MPC baseline: pointer doubling, Θ(log n) rounds.
            let (mpc_answer, mpc_stats) = ampc_suite::mpc::two_cycle_mpc(&graph, 64);

            let expected = if two {
                TwoCycleAnswer::TwoCycles
            } else {
                TwoCycleAnswer::OneCycle
            };
            assert_eq!(ampc.output, expected, "AMPC answer must match the instance");
            let mpc_matches = matches!(
                (mpc_answer, two),
                (ampc_suite::mpc::TwoCycleAnswer::OneCycle, false)
                    | (ampc_suite::mpc::TwoCycleAnswer::TwoCycles, true)
            );
            assert!(mpc_matches, "MPC answer must match the instance");

            println!(
                "{:>10} {:>12} {:>14} {:>14}",
                n,
                if two { "two cycles" } else { "one cycle" },
                ampc.rounds(),
                mpc_stats.num_rounds()
            );
        }
    }

    println!("\nThe AMPC round count stays flat while the MPC baseline grows with log n —");
    println!("that gap is exactly why the 2-Cycle conjecture fails in the AMPC model.");
}

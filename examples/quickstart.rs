//! Quickstart: run the headline result of the paper end to end.
//!
//! The 2-Cycle problem — "is this graph one big cycle or two half-sized
//! cycles?" — is conjectured to need Ω(log n) rounds in the MPC model, but
//! the AMPC algorithm of Section 4 solves it in O(1/ε) rounds.  This example
//! runs both on the same instances and prints the round counts side by side.
//!
//! Run with: `cargo run --release --example quickstart`

use ampc_suite::prelude::*;

fn main() {
    println!("AMPC quickstart — the 2-Cycle problem (paper Section 4)\n");
    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "n", "instance", "AMPC rounds", "MPC rounds"
    );

    for &n in &[1_000usize, 10_000, 100_000] {
        for &two in &[false, true] {
            let graph = generators::two_cycle_instance(n, two, 42);

            // AMPC (Section 4): Shrink + single-machine finish, O(1/ε) rounds.
            let ampc = two_cycle(&graph, 0.5, 42);

            // MPC baseline: pointer doubling, Θ(log n) rounds.
            let (mpc_answer, mpc_stats) = ampc_suite::mpc::two_cycle_mpc(&graph, 64);

            let expected = if two {
                TwoCycleAnswer::TwoCycles
            } else {
                TwoCycleAnswer::OneCycle
            };
            assert_eq!(ampc.output, expected, "AMPC answer must match the instance");
            let mpc_matches = matches!(
                (mpc_answer, two),
                (ampc_suite::mpc::TwoCycleAnswer::OneCycle, false)
                    | (ampc_suite::mpc::TwoCycleAnswer::TwoCycles, true)
            );
            assert!(mpc_matches, "MPC answer must match the instance");

            println!(
                "{:>10} {:>12} {:>14} {:>14}",
                n,
                if two { "two cycles" } else { "one cycle" },
                ampc.rounds(),
                mpc_stats.num_rounds()
            );
        }
    }

    println!("\nThe AMPC round count stays flat while the MPC baseline grows with log n —");
    println!("that gap is exactly why the 2-Cycle conjecture fails in the AMPC model.");
}

//! Connected components of a large sparse graph: AMPC vs the MPC baselines.
//!
//! The motivating workload of the paper's introduction: finding connected
//! components of graphs too large for one machine.  This example builds
//! graphs with controlled density (m/n) and diameter, runs the paper's
//! AMPC connectivity algorithm (Section 6) next to two MPC baselines
//! (label propagation at Θ(D) rounds and Shiloach–Vishkin-style hooking at
//! Θ(log n) rounds), and prints round counts and communication volumes.
//!
//! Run with: `cargo run --release --example connected_components`

use ampc_suite::prelude::*;

fn main() {
    println!("Connected components — AMPC (Section 6) vs MPC baselines\n");
    println!(
        "{:>22} {:>8} {:>8} {:>6} {:>12} {:>14} {:>14}",
        "graph", "n", "m", "D", "AMPC rounds", "MPC logn rnds", "MPC O(D) rnds"
    );

    let seed = 7;
    let cases: Vec<(String, Graph)> = vec![
        (
            "G(n, 4n) components".to_string(),
            generators::planted_components(20_000, 8, 3 * 20_000 / 8, seed),
        ),
        (
            "G(n, 2n) sparse".to_string(),
            generators::planted_components(20_000, 8, 20_000 / 8, seed),
        ),
        (
            "path of cliques".to_string(),
            generators::path_of_cliques(25, 400),
        ),
        (
            "random forest".to_string(),
            generators::random_forest(20_000, 8, seed),
        ),
    ];

    for (name, graph) in cases {
        let reference = sequential::connected_components(&graph);
        let diameter = sequential::diameter_estimate(&graph);

        let ampc = connectivity(&graph, 0.5, seed);
        assert_eq!(
            ampc.output, reference,
            "{name}: AMPC labels must match the reference"
        );

        let (sv_labels, sv_stats) = ampc_suite::mpc::pointer_doubling_connectivity(&graph, 128);
        assert_eq!(
            sv_labels, reference,
            "{name}: MPC labels must match the reference"
        );

        let (lp_labels, lp_stats) = ampc_suite::mpc::label_propagation_connectivity(&graph, 0.5);
        assert_eq!(
            lp_labels, reference,
            "{name}: label propagation must match the reference"
        );

        println!(
            "{:>22} {:>8} {:>8} {:>6} {:>12} {:>14} {:>14}",
            name,
            graph.num_vertices(),
            graph.num_edges(),
            diameter,
            ampc.rounds(),
            sv_stats.num_rounds(),
            lp_stats.num_rounds()
        );
    }

    println!("\nAMPC rounds track log log(n) and ignore the diameter entirely;");
    println!("label propagation pays Θ(D) rounds on the high-diameter instance.");
}

//! Tree analytics with Euler tours: rooting, preorder, subtree sizes,
//! bridges and 2-edge-connected components.
//!
//! A hierarchy-analysis scenario: given a large forest (say, a filesystem or
//! org-chart snapshot) plus some cross links, compute per-node statistics
//! and find the single points of failure (bridges).  Exercises the whole
//! Section 8 toolbox (forest connectivity, list ranking, tree rooting,
//! preorder numbering, subtree sizes) and the Section 9 BC-labeling.
//!
//! Run with: `cargo run --release --example tree_analytics`

use ampc_suite::prelude::*;

fn main() {
    println!("Tree analytics via Euler tours (paper Sections 8–9)\n");

    // A forest of 20 trees over 50k vertices.
    let n = 50_000;
    let forest = generators::random_forest(n, 20, 5);

    // Forest connectivity (Theorem 5): O(1/ε) rounds.
    let components = forest_connectivity(&forest, 0.5, 5);
    let distinct: std::collections::HashSet<u32> = components.output.iter().copied().collect();
    println!(
        "forest connectivity: {} trees found in {} AMPC rounds",
        distinct.len(),
        components.rounds()
    );
    assert_eq!(components.output, sequential::connected_components(&forest));

    // Rooting + preorder + subtree sizes (Theorem 7, Lemmas 8.7–8.8).
    let rooted = root_forest(&forest, None, 0.5, 5);
    let tree = &rooted.output;
    println!(
        "rooted {} trees in {} AMPC rounds",
        distinct.len(),
        rooted.rounds()
    );

    let deepest_subtree = (0..n as u32)
        .filter(|&v| tree.parent[v as usize] != v)
        .max_by_key(|&v| tree.subtree_size[v as usize])
        .unwrap();
    println!(
        "largest non-root subtree: rooted at vertex {} with {} descendants (preorder {})",
        deepest_subtree,
        tree.subtree_size[deepest_subtree as usize],
        tree.preorder[deepest_subtree as usize]
    );

    // List ranking on its own (Theorem 6): rank a 100k-element list.
    let list_len = 100_000usize;
    let successor: Vec<u32> = (0..list_len as u32)
        .map(|v| {
            if (v as usize) + 1 < list_len {
                v + 1
            } else {
                v
            }
        })
        .collect();
    let ranks = list_ranking(&successor, 0.5, 9);
    assert_eq!(ranks.output[0], (list_len - 1) as u64);
    println!(
        "list ranking: ranked {} elements in {} AMPC rounds",
        list_len,
        ranks.rounds()
    );

    // Add sparse cross links and find the bridges (Theorem 8).
    let mut edges: Vec<Edge> = forest.edges().to_vec();
    let extra = generators::erdos_renyi_gnm(n, n / 10, 77);
    edges.extend(extra.edges().iter().copied());
    let linked = Graph::from_edges(n, &edges);

    let bc = two_edge_connectivity(&linked, 0.5, 5);
    let expected_bridges = sequential::bridges(&linked);
    assert_eq!(bc.output.bridges, expected_bridges);
    let tecc_count: std::collections::HashSet<u32> =
        bc.output.two_edge_components.iter().copied().collect();
    println!(
        "2-edge connectivity: {} bridges and {} 2-edge-connected components in {} AMPC rounds",
        bc.output.bridges.len(),
        tecc_count.len(),
        bc.rounds()
    );

    println!("\nAll results verified against sequential reference algorithms.");
}

//! # ampc-suite — umbrella crate for the AMPC reproduction
//!
//! Re-exports the whole workspace behind one dependency, which is what the
//! runnable examples under `examples/` and the cross-crate integration tests
//! under `tests/` build against.
//!
//! * [`dds`] — the distributed data store substrate.
//! * [`runtime`] — the AMPC model executor (machines, rounds, budgets).
//! * [`graph`] — graph storage, generators and sequential references.
//! * [`mpc`] — the MPC executor and the baseline algorithms of Figure 1.
//! * [`algorithms`] — the paper's AMPC algorithms (Sections 4–9).
//!
//! ```
//! use ampc_suite::prelude::*;
//!
//! let graph = generators::two_cycle_instance(512, true, 1);
//! let answer = two_cycle(&graph, 0.5, 1);
//! assert_eq!(answer.output, TwoCycleAnswer::TwoCycles);
//! ```

#![warn(missing_docs)]

pub use ampc_algorithms as algorithms;
pub use ampc_dds as dds;
pub use ampc_graph as graph;
pub use ampc_mpc as mpc;
pub use ampc_runtime as runtime;

/// Everything a typical caller needs, in one import.
pub mod prelude {
    pub use ampc_algorithms::{
        connectivity, cycle_connectivity, forest_connectivity, list_ranking,
        maximal_independent_set, minimum_spanning_forest, preorder_numbers, root_forest,
        spanning_forest, subtree_sizes, two_cycle, two_cycle_with, two_edge_connectivity,
        AlgorithmResult, TwoCycleAnswer,
    };
    pub use ampc_graph::{generators, sequential, Edge, EdgeList, Graph};
    pub use ampc_runtime::{
        AmpcConfig, AmpcRuntime, BudgetMode, DdsBackendKind, FaultPlan, RunStats,
    };
}

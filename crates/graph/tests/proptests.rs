//! Property tests for the graph substrate: CSR construction invariants,
//! generator guarantees (edge counts, component counts, degree profiles)
//! and agreement between independent sequential reference algorithms.

use ampc_graph::{generators, sequential, Edge, Graph, UnionFind};
use proptest::prelude::*;

fn arbitrary_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..80).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..200),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    #[test]
    fn csr_degrees_sum_to_twice_edge_count((n, pairs) in arbitrary_edges()) {
        let edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect();
        let g = Graph::from_edges(n, &edges);
        let degree_sum: usize = (0..n as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        // Adjacency is symmetric and self-loop free.
        for v in 0..n as u32 {
            for &u in g.neighbors(v) {
                prop_assert_ne!(u, v);
                prop_assert!(g.neighbors(u).contains(&v));
            }
        }
        // No duplicate undirected edges survive.
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            prop_assert!(seen.insert((e.u.min(e.v), e.u.max(e.v))));
        }
    }

    #[test]
    fn bridges_are_exactly_the_component_increasing_edges((n, pairs) in arbitrary_edges()) {
        let edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect();
        let g = Graph::from_edges(n, &edges);
        let bridges: std::collections::HashSet<Edge> = sequential::bridges(&g).into_iter().collect();
        let base_components = sequential::count_components(&g);
        for e in g.edges() {
            let without: Vec<Edge> = g.edges().iter().filter(|&&x| x != *e).copied().collect();
            let stripped = Graph::from_edges(n, &without);
            let increased = sequential::count_components(&stripped) > base_components;
            prop_assert_eq!(
                bridges.contains(&e.normalized()),
                increased,
                "edge {:?} misclassified", e
            );
        }
    }

    #[test]
    fn lfmis_is_maximal_and_respects_priorities((n, pairs) in arbitrary_edges(), seed in 0u64..500) {
        let edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect();
        let g = Graph::from_edges(n, &edges);
        let priorities = ampc_graph::permutation::random_priorities(n, seed);
        let mis = sequential::lexicographically_first_mis(&g, &priorities);
        prop_assert!(sequential::is_maximal_independent_set(&g, &mis));
        // Greedy property: a vertex outside the MIS has an in-MIS neighbour
        // with smaller priority.
        for v in 0..n as u32 {
            if !mis[v as usize] {
                let has_earlier_in_mis_neighbor = g
                    .neighbors(v)
                    .iter()
                    .any(|&u| mis[u as usize] && (priorities[u as usize], u) < (priorities[v as usize], v));
                prop_assert!(has_earlier_in_mis_neighbor, "vertex {} blocked without cause", v);
            }
        }
    }

    #[test]
    fn kruskal_weight_is_minimal_among_random_spanning_forests(
        (n, pairs) in arbitrary_edges(),
        seed in 0u64..500
    ) {
        let edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect();
        let base = Graph::from_edges(n, &edges);
        let g = generators::with_random_weights(&base, seed);
        let (forest, total) = sequential::kruskal_msf(&g);
        // The forest spans: same number of components as the graph.
        let mut uf = UnionFind::new(n);
        for e in &forest {
            prop_assert!(uf.union(e.u, e.v), "Kruskal output contains a cycle");
        }
        prop_assert_eq!(uf.num_components(), sequential::count_components(&g));
        // Any other spanning forest (built greedily in random order) weighs
        // at least as much.
        if g.num_edges() > 0 {
            let mut other = UnionFind::new(n);
            let mut other_total = 0u64;
            let mut shuffled = g.weighted_edges();
            // Deterministic pseudo-shuffle keyed by the seed.
            shuffled.sort_unstable_by_key(|e| (e.weight.wrapping_mul(seed | 1)) ^ e.id as u64);
            for e in shuffled {
                if other.union(e.u, e.v) {
                    other_total += e.weight;
                }
            }
            prop_assert!(total <= other_total);
        }
    }

    #[test]
    fn generators_meet_their_contracts(n in 6usize..200, k in 1usize..8, seed in 0u64..500) {
        let n = n - (n % 2); // even for two_cycles
        let k = k.min(n);

        let forest = generators::random_forest(n, k, seed);
        prop_assert_eq!(forest.num_edges(), n - k);
        prop_assert_eq!(generators::component_count(&forest), k);

        let planted = generators::planted_components(n, k, 2, seed);
        prop_assert_eq!(generators::component_count(&planted), k);

        let connected = generators::connected_gnm(n, n / 2, seed);
        prop_assert_eq!(generators::component_count(&connected), 1);

        let cycles = generators::two_cycle_instance(n.max(6), seed % 2 == 0, seed);
        prop_assert!((0..cycles.num_vertices() as u32).all(|v| cycles.degree(v) == 2));
    }

    #[test]
    fn diameter_estimate_is_a_valid_eccentricity((n, pairs) in arbitrary_edges()) {
        let edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect();
        let g = Graph::from_edges(n, &edges);
        let estimate = sequential::diameter_estimate(&g);
        // The estimate is achieved by some BFS, so it is at most the number
        // of vertices and at least the eccentricity lower bound from vertex 0.
        let from_zero = sequential::bfs_distances(&g, 0)
            .into_iter()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0);
        prop_assert!(estimate >= from_zero);
        prop_assert!(estimate < n.max(1));
    }
}

//! # ampc-graph — graph substrate for the AMPC reproduction
//!
//! Graph storage ([`Graph`], [`EdgeList`]), synthetic workload generators
//! ([`generators`]), sequential reference algorithms used as ground truth
//! ([`sequential`]), union-find ([`UnionFind`]) and random permutations
//! ([`permutation`]).
//!
//! The paper evaluates on cluster-scale graphs; this crate supplies
//! parameterised synthetic families (cycles, forests, G(n, m), paths of
//! cliques, bridged block chains) whose structure controls exactly the
//! quantities the paper's round bounds depend on — `n`, `m/n` and the
//! diameter `D` — so the *shape* of every result is reproducible at
//! laptop scale.

#![warn(missing_docs)]

pub mod generators;
#[allow(clippy::module_inception)]
mod graph;
pub mod permutation;
pub mod sequential;
pub mod unionfind;

pub use graph::{dedup_edges, Edge, EdgeList, Graph, WeightedEdge};
pub use unionfind::{canonicalize_labels, UnionFind};

//! Sequential reference algorithms used as ground truth.
//!
//! Every AMPC algorithm in the workspace is validated against a simple,
//! obviously-correct sequential counterpart: union-find connectivity,
//! Kruskal's MSF, the greedy lexicographically-first MIS, an iterative DFS
//! bridge/articulation-point finder (Hopcroft–Tarjan), BFS-based diameter
//! estimation, and sequential Euler tours / list ranking.  These run on a
//! single thread directly over the CSR graph, with no model accounting.

use crate::graph::{Edge, Graph, WeightedEdge};
use crate::unionfind::UnionFind;

/// Connected-component labels: `labels[v]` is the smallest vertex id in the
/// component of `v`.
pub fn connected_components(graph: &Graph) -> Vec<u32> {
    let mut uf = UnionFind::new(graph.num_vertices());
    for e in graph.edges() {
        uf.union(e.u, e.v);
    }
    uf.canonical_labels()
}

/// Number of connected components.
pub fn count_components(graph: &Graph) -> usize {
    let mut uf = UnionFind::new(graph.num_vertices());
    for e in graph.edges() {
        uf.union(e.u, e.v);
    }
    uf.num_components()
}

/// Kruskal's minimum spanning forest.
///
/// Returns the MSF edges (with their original edge ids) and the total weight.
/// Assumes distinct weights (ties broken by edge id, deterministically).
pub fn kruskal_msf(graph: &Graph) -> (Vec<WeightedEdge>, u64) {
    assert!(
        graph.is_weighted() || graph.num_edges() == 0,
        "Kruskal needs a weighted graph"
    );
    let mut edges = if graph.num_edges() == 0 {
        Vec::new()
    } else {
        graph.weighted_edges()
    };
    edges.sort_unstable_by_key(|e| (e.weight, e.id));
    let mut uf = UnionFind::new(graph.num_vertices());
    let mut forest = Vec::new();
    let mut total = 0u64;
    for e in edges {
        if uf.union(e.u, e.v) {
            total += e.weight;
            forest.push(e);
        }
    }
    (forest, total)
}

/// The lexicographically-first MIS with respect to the priority order
/// `priority[v]` (lower priority value = processed earlier).
///
/// This is the sequential greedy process that Algorithm 3 of the paper
/// simulates with adaptive queries; for a fixed priority assignment the AMPC
/// algorithm must return exactly this set.
pub fn lexicographically_first_mis(graph: &Graph, priority: &[u64]) -> Vec<bool> {
    let n = graph.num_vertices();
    assert_eq!(priority.len(), n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (priority[v as usize], v));
    let mut in_mis = vec![false; n];
    let mut blocked = vec![false; n];
    for v in order {
        if !blocked[v as usize] {
            in_mis[v as usize] = true;
            for &u in graph.neighbors(v) {
                blocked[u as usize] = true;
            }
        }
    }
    in_mis
}

/// `true` if `set` is an independent set of `graph`.
pub fn is_independent_set(graph: &Graph, set: &[bool]) -> bool {
    graph
        .edges()
        .iter()
        .all(|e| !(set[e.u as usize] && set[e.v as usize]))
}

/// `true` if `set` is a *maximal* independent set of `graph`.
pub fn is_maximal_independent_set(graph: &Graph, set: &[bool]) -> bool {
    if !is_independent_set(graph, set) {
        return false;
    }
    (0..graph.num_vertices() as u32)
        .all(|v| set[v as usize] || graph.neighbors(v).iter().any(|&u| set[u as usize]))
}

/// Bridges of the graph (edges whose removal increases the number of
/// components), found with an iterative Hopcroft–Tarjan DFS.
pub fn bridges(graph: &Graph) -> Vec<Edge> {
    let n = graph.num_vertices();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut timer = 0usize;
    let mut result = Vec::new();

    // Iterative DFS; each frame tracks the adjacency cursor and the edge id
    // used to enter the vertex (to skip the tree edge back to the parent).
    for start in 0..n as u32 {
        if disc[start as usize] != usize::MAX {
            continue;
        }
        let mut stack: Vec<(u32, usize, u32)> = vec![(start, 0, u32::MAX)];
        disc[start as usize] = timer;
        low[start as usize] = timer;
        timer += 1;
        while let Some(&mut (v, ref mut cursor, via_edge)) = stack.last_mut() {
            let adjacency: Vec<(u32, u32)> = graph.neighbors_with_ids(v).collect();
            if *cursor < adjacency.len() {
                let (u, edge_id) = adjacency[*cursor];
                *cursor += 1;
                if edge_id == via_edge {
                    continue; // don't traverse the entering edge backwards
                }
                if disc[u as usize] == usize::MAX {
                    disc[u as usize] = timer;
                    low[u as usize] = timer;
                    timer += 1;
                    stack.push((u, 0, edge_id));
                } else {
                    low[v as usize] = low[v as usize].min(disc[u as usize]);
                }
            } else {
                stack.pop();
                if let Some(&(parent, _, parent_edge)) = stack.last() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    if low[v as usize] > disc[parent as usize] {
                        let _ = parent_edge;
                        result.push(Edge::new(parent, v).normalized());
                    }
                }
            }
        }
    }
    result.sort_unstable();
    result
}

/// Articulation points (cut vertices) of the graph, via iterative DFS.
pub fn articulation_points(graph: &Graph) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;

    for start in 0..n as u32 {
        if disc[start as usize] != usize::MAX {
            continue;
        }
        // (vertex, cursor, entering edge id, children count)
        let mut stack: Vec<(u32, usize, u32, usize)> = vec![(start, 0, u32::MAX, 0)];
        disc[start as usize] = timer;
        low[start as usize] = timer;
        timer += 1;
        while let Some(&mut (v, ref mut cursor, via_edge, ref mut _children)) = stack.last_mut() {
            let adjacency: Vec<(u32, u32)> = graph.neighbors_with_ids(v).collect();
            if *cursor < adjacency.len() {
                let (u, edge_id) = adjacency[*cursor];
                *cursor += 1;
                if edge_id == via_edge {
                    continue;
                }
                if disc[u as usize] == usize::MAX {
                    disc[u as usize] = timer;
                    low[u as usize] = timer;
                    timer += 1;
                    stack.push((u, 0, edge_id, 0));
                } else {
                    low[v as usize] = low[v as usize].min(disc[u as usize]);
                }
            } else {
                stack.pop();
                if let Some(last) = stack.last_mut() {
                    let parent = last.0;
                    last.3 += 1;
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    // Non-root: cut vertex if some child cannot reach above it.
                    if parent != start && low[v as usize] >= disc[parent as usize] {
                        is_cut[parent as usize] = true;
                    }
                } else {
                    // `v` was the root of this DFS tree: cut vertex iff ≥ 2 children.
                    // (children count was accumulated in the popped frame)
                }
            }
        }
        // Determine root separately: count DFS children of `start`.
        let root_children = graph
            .neighbors(start)
            .iter()
            .filter(|&&u| {
                // u is a DFS child of start iff disc[u] > disc[start] and low[u] >= ...
                // Simpler: rerun a tiny check — u is a child if its lowest
                // discovery-time path to the root goes through start.  We
                // recompute children by checking disc order of tree edges is
                // not tracked here, so use the standard trick below.
                disc[u as usize] != usize::MAX
            })
            .count();
        let _ = root_children;
    }

    // The loop above handles non-root vertices; handle roots with a clean
    // second pass: a root is a cut vertex iff it has ≥ 2 DFS children, which
    // equals "removing it disconnects its component".  Verify directly.
    for start in 0..n as u32 {
        if graph.degree(start) < 2 {
            continue;
        }
        if is_cut[start as usize] {
            continue;
        }
        if is_root_cut_vertex(graph, start, &disc) {
            is_cut[start as usize] = true;
        }
    }

    (0..n as u32).filter(|&v| is_cut[v as usize]).collect()
}

/// Check whether removing `v` disconnects its component (only called for a
/// small number of candidate vertices).
fn is_root_cut_vertex(graph: &Graph, v: u32, _disc: &[usize]) -> bool {
    let nbrs = graph.neighbors(v);
    if nbrs.len() < 2 {
        return false;
    }
    // BFS from one neighbour avoiding `v`; if some other neighbour is not
    // reached, `v` is a cut vertex.
    let n = graph.num_vertices();
    let mut visited = vec![false; n];
    visited[v as usize] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(nbrs[0]);
    visited[nbrs[0] as usize] = true;
    while let Some(x) = queue.pop_front() {
        for &y in graph.neighbors(x) {
            if !visited[y as usize] {
                visited[y as usize] = true;
                queue.push_back(y);
            }
        }
    }
    nbrs.iter().any(|&u| !visited[u as usize])
}

/// Labels of the 2-edge-connected components: remove all bridges, then label
/// connected components of what remains.
pub fn two_edge_connected_components(graph: &Graph) -> Vec<u32> {
    let bridge_set: std::collections::HashSet<Edge> = bridges(graph).into_iter().collect();
    let remaining: Vec<Edge> = graph
        .edges()
        .iter()
        .filter(|e| !bridge_set.contains(&e.normalized()))
        .copied()
        .collect();
    let stripped = Graph::from_edges(graph.num_vertices(), &remaining);
    connected_components(&stripped)
}

/// BFS distances from `source`; unreachable vertices get `usize::MAX`.
pub fn bfs_distances(graph: &Graph, source: u32) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for &u in graph.neighbors(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dist[v as usize] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Eccentricity-based lower bound on the diameter: the largest finite BFS
/// distance from a handful of probe vertices.  Exact for trees when probed
/// twice (double sweep); a good estimate otherwise.
pub fn diameter_estimate(graph: &Graph) -> usize {
    let n = graph.num_vertices();
    if n == 0 {
        return 0;
    }
    // Double sweep: BFS from 0, then BFS from the farthest vertex found.
    let d0 = bfs_distances(graph, 0);
    let (far, _) = d0
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != usize::MAX)
        .max_by_key(|(_, &d)| d)
        .unwrap_or((0, &0));
    let d1 = bfs_distances(graph, far as u32);
    d1.iter()
        .filter(|&&d| d != usize::MAX)
        .max()
        .copied()
        .unwrap_or(0)
}

/// Sequential list ranking: given `successor[i]` pointers forming a simple
/// path ending at a vertex whose successor is itself, return each element's
/// distance to the end of the list.
pub fn sequential_list_ranks(successor: &[u32]) -> Vec<u64> {
    let n = successor.len();
    let mut rank = vec![0u64; n];
    // Find the terminal element (successor == itself).
    let terminal = (0..n as u32)
        .find(|&v| successor[v as usize] == v)
        .expect("list must have a terminal element pointing at itself");
    // Compute in-degree to find the head, then walk.
    let mut indeg = vec![0usize; n];
    for v in 0..n {
        if successor[v] != v as u32 {
            indeg[successor[v] as usize] += 1;
        }
    }
    let head = (0..n as u32)
        .find(|&v| indeg[v as usize] == 0)
        .unwrap_or(terminal);
    // Walk from head to terminal, recording positions.
    let mut order = Vec::with_capacity(n);
    let mut cur = head;
    loop {
        order.push(cur);
        if cur == terminal {
            break;
        }
        cur = successor[cur as usize];
    }
    let len = order.len();
    for (pos, &v) in order.iter().enumerate() {
        rank[v as usize] = (len - 1 - pos) as u64;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_forest() {
        let g = generators::random_forest(60, 5, 1);
        assert_eq!(count_components(&g), 5);
        let labels = connected_components(&g);
        let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
        assert_eq!(distinct.len(), 5);
        // Each label is the smallest vertex of its component.
        for (v, &l) in labels.iter().enumerate() {
            assert!(l <= v as u32);
        }
    }

    #[test]
    fn kruskal_on_small_graph() {
        // Square with a diagonal: MSF should avoid the heaviest edges.
        let g = Graph::from_weighted_edges(
            4,
            &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 10), (0, 2, 5)],
        );
        let (forest, total) = kruskal_msf(&g);
        assert_eq!(forest.len(), 3);
        assert_eq!(total, 1 + 2 + 3);
    }

    #[test]
    fn kruskal_on_disconnected_graph() {
        let g = Graph::from_weighted_edges(6, &[(0, 1, 4), (1, 2, 2), (3, 4, 7), (4, 5, 1)]);
        let (forest, total) = kruskal_msf(&g);
        assert_eq!(forest.len(), 4);
        assert_eq!(total, 14);
    }

    #[test]
    fn lfmis_matches_manual_example() {
        // Path 0-1-2-3 with priorities making vertex 1 first.
        let g = generators::path(4);
        let priority = vec![5, 0, 3, 1];
        let mis = lexicographically_first_mis(&g, &priority);
        // Order: 1, 3, 2, 0. 1 joins; 3 joins; 2 blocked by 1 and 3; 0 blocked by 1.
        assert_eq!(mis, vec![false, true, false, true]);
        assert!(is_maximal_independent_set(&g, &mis));
    }

    #[test]
    fn mis_validators_reject_bad_sets() {
        let g = generators::path(4);
        assert!(!is_independent_set(&g, &[true, true, false, false]));
        // Independent but not maximal: empty set.
        assert!(is_independent_set(&g, &[false, false, false, false]));
        assert!(!is_maximal_independent_set(
            &g,
            &[false, false, false, false]
        ));
    }

    #[test]
    fn bridges_of_path_are_all_edges() {
        let g = generators::path(6);
        let b = bridges(&g);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn bridges_of_cycle_are_empty() {
        let g = generators::cycle(10);
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn bridges_of_two_triangles_joined_by_edge() {
        // Triangles {0,1,2} and {3,4,5} joined by bridge 2-3.
        let g = Graph::from_edges(
            6,
            &[
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 0),
                Edge::new(3, 4),
                Edge::new(4, 5),
                Edge::new(5, 3),
                Edge::new(2, 3),
            ],
        );
        assert_eq!(bridges(&g), vec![Edge::new(2, 3)]);
        let aps = articulation_points(&g);
        assert_eq!(aps, vec![2, 3]);
        let tecc = two_edge_connected_components(&g);
        assert_eq!(tecc[0], tecc[1]);
        assert_eq!(tecc[1], tecc[2]);
        assert_eq!(tecc[3], tecc[4]);
        assert_eq!(tecc[4], tecc[5]);
        assert_ne!(tecc[0], tecc[3]);
    }

    #[test]
    fn articulation_points_of_star_center_only() {
        let g = generators::star(6);
        assert_eq!(articulation_points(&g), vec![0]);
    }

    #[test]
    fn articulation_points_of_cycle_none() {
        let g = generators::cycle(8);
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn bfs_and_diameter() {
        let g = generators::path(10);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[9], 9);
        assert_eq!(diameter_estimate(&g), 9);
        let c = generators::cycle(10);
        assert_eq!(diameter_estimate(&c), 5);
        let grid = generators::grid(4, 4);
        assert_eq!(diameter_estimate(&grid), 6);
    }

    #[test]
    fn bfs_unreachable_vertices_are_max() {
        let g = generators::two_cycles(10);
        let d = bfs_distances(&g, 0);
        assert!(d.contains(&usize::MAX));
    }

    #[test]
    fn sequential_list_ranking_is_positional() {
        // List 3 -> 1 -> 4 -> 0 -> 2 -> 2 (terminal).
        let successor = vec![2, 4, 2, 1, 0];
        let ranks = sequential_list_ranks(&successor);
        assert_eq!(ranks[3], 4);
        assert_eq!(ranks[1], 3);
        assert_eq!(ranks[4], 2);
        assert_eq!(ranks[0], 1);
        assert_eq!(ranks[2], 0);
    }

    #[test]
    fn pendant_edges_of_bridged_blocks_are_bridges() {
        let g = generators::bridged_blocks(5, 3, 2, 1);
        let b = bridges(&g);
        // 2 chaining bridges + 2 pendant edges per block * 3 blocks.
        assert_eq!(b.len(), 2 + 6);
    }
}

//! Compact undirected graph representations.
//!
//! Two views are provided:
//!
//! * [`EdgeList`] — a flat list of undirected edges; the natural form for
//!   generators and for the driver side of contraction-based algorithms.
//! * [`Graph`] — a CSR (compressed sparse row) adjacency structure built from
//!   an edge list; the form the algorithms load into the DDS and the
//!   sequential reference algorithms traverse.
//!
//! Vertices are `u32` ids in `0..n`.  Self-loops and duplicate edges are
//! removed when building a [`Graph`], matching the paper's assumption that
//! "there are no self-edges or duplicate edges in the graph".

use serde::{Deserialize, Serialize};

/// An undirected, unweighted edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub u: u32,
    /// The other endpoint.
    pub v: u32,
}

impl Edge {
    /// Construct an edge; orientation is irrelevant.
    pub fn new(u: u32, v: u32) -> Self {
        Edge { u, v }
    }

    /// The edge with its endpoints ordered `(min, max)`.
    pub fn normalized(&self) -> Edge {
        Edge {
            u: self.u.min(self.v),
            v: self.u.max(self.v),
        }
    }

    /// `true` if both endpoints coincide.
    pub fn is_self_loop(&self) -> bool {
        self.u == self.v
    }
}

/// An undirected, weighted edge with a stable id into the original edge list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WeightedEdge {
    /// One endpoint.
    pub u: u32,
    /// The other endpoint.
    pub v: u32,
    /// Edge weight.  All algorithms assume weights are distinct.
    pub weight: u64,
    /// Index of this edge in the original input (used by MSF to report
    /// original edges after contractions).
    pub id: u32,
}

/// A growable list of undirected edges over vertices `0..n`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EdgeList {
    n: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Empty edge list over `n` vertices.
    pub fn new(n: usize) -> Self {
        EdgeList {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges currently stored (duplicates included).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add an undirected edge `{u, v}`.
    ///
    /// # Panics
    /// If either endpoint is out of range.
    pub fn push(&mut self, u: u32, v: u32) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        self.edges.push(Edge::new(u, v));
    }

    /// The edges as a slice.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Sort, deduplicate and drop self-loops in place.
    pub fn dedup(&mut self) {
        self.edges = dedup_edges(std::mem::take(&mut self.edges));
    }

    /// Build the CSR graph (deduplicating and dropping self-loops).
    pub fn build(&self) -> Graph {
        Graph::from_edges(self.n, &self.edges)
    }
}

/// Remove self-loops and duplicates from a set of undirected edges.
pub fn dedup_edges(edges: Vec<Edge>) -> Vec<Edge> {
    let mut normalized: Vec<Edge> = edges
        .into_iter()
        .filter(|e| !e.is_self_loop())
        .map(|e| e.normalized())
        .collect();
    normalized.sort_unstable();
    normalized.dedup();
    normalized
}

/// An undirected graph in CSR form, optionally weighted.
///
/// Each undirected edge `{u, v}` appears twice in the adjacency arrays: once
/// as `u → v` and once as `v → u`.  The `edge_ids` array maps each adjacency
/// slot back to the id of the undirected edge, so weighted algorithms can
/// report original edges.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
    /// Per-adjacency-slot undirected edge id.
    edge_ids: Vec<u32>,
    /// Per-undirected-edge weight; empty for unweighted graphs.
    weights: Vec<u64>,
    /// The undirected edges themselves, indexed by edge id.
    edges: Vec<Edge>,
}

impl Graph {
    /// Build an unweighted graph from undirected edges over `n` vertices.
    ///
    /// Self-loops and duplicates are removed.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let clean = dedup_edges(edges.to_vec());
        Self::from_clean_edges(n, clean, Vec::new())
    }

    /// Build a weighted graph from `(u, v, weight)` triples over `n` vertices.
    ///
    /// Self-loops are dropped; among duplicate edges the one with the
    /// smallest weight is kept.  Weights should be distinct for the MSF
    /// algorithms (ties are broken by edge id internally, but the paper's
    /// uniqueness argument assumes distinct weights).
    pub fn from_weighted_edges(n: usize, edges: &[(u32, u32, u64)]) -> Self {
        let mut cleaned: Vec<(Edge, u64)> = edges
            .iter()
            .filter(|(u, v, _)| u != v)
            .map(|&(u, v, w)| (Edge::new(u, v).normalized(), w))
            .collect();
        cleaned.sort_unstable_by_key(|&(e, w)| (e, w));
        cleaned.dedup_by_key(|&mut (e, _)| e);
        let (clean, weights): (Vec<Edge>, Vec<u64>) = cleaned.into_iter().unzip();
        Self::from_clean_edges(n, clean, weights)
    }

    fn from_clean_edges(n: usize, clean: Vec<Edge>, weights: Vec<u64>) -> Self {
        assert!(
            clean
                .iter()
                .all(|e| (e.u as usize) < n && (e.v as usize) < n),
            "edge endpoint out of range for n={n}"
        );
        let mut degree = vec![0usize; n];
        for e in &clean {
            degree[e.u as usize] += 1;
            degree[e.v as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; clean.len() * 2];
        let mut edge_ids = vec![0u32; clean.len() * 2];
        for (id, e) in clean.iter().enumerate() {
            let cu = cursor[e.u as usize];
            neighbors[cu] = e.v;
            edge_ids[cu] = id as u32;
            cursor[e.u as usize] += 1;
            let cv = cursor[e.v as usize];
            neighbors[cv] = e.u;
            edge_ids[cv] = id as u32;
            cursor[e.v as usize] += 1;
        }
        Graph {
            offsets,
            neighbors,
            edge_ids,
            weights,
            edges: clean,
        }
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Input size `N = n + m` as used by the paper's space bounds.
    pub fn input_size(&self) -> usize {
        self.num_vertices() + self.num_edges()
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbours of `v` as a slice.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// `(neighbour, undirected edge id)` pairs incident to `v`.
    pub fn neighbors_with_ids(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let range = self.offsets[v as usize]..self.offsets[v as usize + 1];
        range.map(move |i| (self.neighbors[i], self.edge_ids[i]))
    }

    /// `true` if the graph carries edge weights.
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Weight of the undirected edge with id `edge_id`.
    ///
    /// # Panics
    /// If the graph is unweighted.
    pub fn edge_weight(&self, edge_id: u32) -> u64 {
        self.weights[edge_id as usize]
    }

    /// The undirected edge with id `edge_id`.
    pub fn edge(&self, edge_id: u32) -> Edge {
        self.edges[edge_id as usize]
    }

    /// All undirected edges, indexed by id.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// All weighted edges (id, endpoints, weight).
    ///
    /// # Panics
    /// If the graph is unweighted.
    pub fn weighted_edges(&self) -> Vec<WeightedEdge> {
        assert!(self.is_weighted(), "graph has no weights");
        self.edges
            .iter()
            .enumerate()
            .map(|(id, e)| WeightedEdge {
                u: e.u,
                v: e.v,
                weight: self.weights[id],
                id: id as u32,
            })
            .collect()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// `true` if `{u, v}` is an edge (linear scan of the shorter adjacency
    /// list — fine for tests and verification).
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if self.degree(u) <= self.degree(v) {
            self.neighbors(u).contains(&v)
        } else {
            self.neighbors(v).contains(&u)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)])
    }

    #[test]
    fn csr_construction_basic() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.input_size(), 6);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn duplicates_and_self_loops_are_removed() {
        let g = Graph::from_edges(
            3,
            &[
                Edge::new(0, 1),
                Edge::new(1, 0),
                Edge::new(0, 1),
                Edge::new(2, 2),
                Edge::new(1, 2),
            ],
        );
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn neighbors_and_edge_ids_are_consistent() {
        let g = triangle();
        for v in 0..3u32 {
            for (u, id) in g.neighbors_with_ids(v) {
                let e = g.edge(id);
                let pair = (e.u.min(e.v), e.u.max(e.v));
                assert_eq!(pair, (v.min(u), v.max(u)));
            }
        }
    }

    #[test]
    fn weighted_graph_keeps_minimum_duplicate() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 10), (1, 0, 5), (1, 2, 7), (2, 2, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.is_weighted());
        let weights: Vec<u64> = g.weighted_edges().iter().map(|e| e.weight).collect();
        assert!(weights.contains(&5));
        assert!(weights.contains(&7));
        assert!(!weights.contains(&10));
    }

    #[test]
    fn edge_list_builder() {
        let mut el = EdgeList::new(4);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 1);
        el.push(3, 3);
        assert_eq!(el.num_edges(), 4);
        el.dedup();
        assert_eq!(el.num_edges(), 2);
        let g = el.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut el = EdgeList::new(2);
        el.push(0, 5);
    }

    #[test]
    fn empty_graph_statistics() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn average_and_max_degree() {
        let g = Graph::from_edges(4, &[Edge::new(0, 1), Edge::new(0, 2), Edge::new(0, 3)]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn normalized_edge_orders_endpoints() {
        assert_eq!(Edge::new(5, 2).normalized(), Edge::new(2, 5));
        assert!(Edge::new(3, 3).is_self_loop());
        assert!(!Edge::new(3, 4).is_self_loop());
    }
}

//! Synthetic workload generators.
//!
//! The paper's experiments target cluster-scale graphs (up to trillions of
//! edges); we substitute parameterised synthetic families whose *structure*
//! controls exactly the quantities the paper's round bounds depend on:
//! the number of vertices `n`, the density `m/n` (which drives the
//! `log log_{m/n} n` terms), and the diameter `D` (which drives the MPC
//! baselines the paper compares against).  Every generator takes an explicit
//! seed so workloads are reproducible across runs and across benches.

use crate::graph::{Edge, EdgeList, Graph};
use crate::unionfind::UnionFind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A simple cycle on `n ≥ 3` vertices: `0 — 1 — … — (n-1) — 0`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut el = EdgeList::new(n);
    for v in 0..n as u32 {
        el.push(v, ((v as usize + 1) % n) as u32);
    }
    el.build()
}

/// Two disjoint cycles of `n / 2` vertices each (`n` must be even and ≥ 6).
pub fn two_cycles(n: usize) -> Graph {
    assert!(n >= 6 && n.is_multiple_of(2), "need an even n ≥ 6");
    let half = n / 2;
    let mut el = EdgeList::new(n);
    for v in 0..half as u32 {
        el.push(v, ((v as usize + 1) % half) as u32);
    }
    for v in 0..half as u32 {
        let a = half as u32 + v;
        let b = half as u32 + ((v as usize + 1) % half) as u32;
        el.push(a, b);
    }
    el.build()
}

/// An instance of the 2-Cycle problem: one `n`-cycle if `two == false`,
/// otherwise two `n/2`-cycles, with the vertex ids randomly permuted so the
/// structure is not visible from the ids.
pub fn two_cycle_instance(n: usize, two: bool, seed: u64) -> Graph {
    let base = if two { two_cycles(n) } else { cycle(n) };
    relabel(&base, seed)
}

/// A path on `n ≥ 1` vertices: `0 — 1 — … — (n-1)`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1);
    let mut el = EdgeList::new(n);
    for v in 0..(n.saturating_sub(1)) as u32 {
        el.push(v, v + 1);
    }
    el.build()
}

/// A star: vertex 0 connected to every other vertex.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    let mut el = EdgeList::new(n);
    for v in 1..n as u32 {
        el.push(0, v);
    }
    el.build()
}

/// The complete graph on `n` vertices.
pub fn complete(n: usize) -> Graph {
    let mut el = EdgeList::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            el.push(u, v);
        }
    }
    el.build()
}

/// A `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut el = EdgeList::new(n);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                el.push(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                el.push(id(r, c), id(r + 1, c));
            }
        }
    }
    el.build()
}

/// A complete binary tree on `n` vertices (vertex `v` has children `2v+1`,
/// `2v+2`).
pub fn binary_tree(n: usize) -> Graph {
    let mut el = EdgeList::new(n);
    for v in 1..n {
        el.push(v as u32, ((v - 1) / 2) as u32);
    }
    el.build()
}

/// A uniformly random recursive tree on `n` vertices: vertex `v` attaches to
/// a uniformly random earlier vertex.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut el = EdgeList::new(n);
    for v in 1..n as u32 {
        let parent = rng.gen_range(0..v);
        el.push(v, parent);
    }
    el.build()
}

/// A random forest with `trees` components over `n` vertices.
///
/// Vertices are split into `trees` contiguous groups of (nearly) equal size,
/// each group forming an independent random tree, and the whole vertex set
/// is then relabelled randomly.
pub fn random_forest(n: usize, trees: usize, seed: u64) -> Graph {
    assert!(trees >= 1 && trees <= n.max(1), "need 1 ≤ trees ≤ n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut el = EdgeList::new(n);
    let base = n / trees;
    let extra = n % trees;
    let mut start = 0usize;
    for t in 0..trees {
        let size = base + usize::from(t < extra);
        for i in 1..size {
            let v = (start + i) as u32;
            let parent = start as u32 + rng.gen_range(0..i as u32);
            el.push(v, parent);
        }
        start += size;
    }
    relabel(&el.build(), seed.wrapping_add(1))
}

/// Erdős–Rényi `G(n, m)`: `m` distinct edges sampled uniformly at random.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "cannot fit {m} edges into a simple graph on {n} vertices"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut el = EdgeList::new(n);
    while seen.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            el.push(key.0, key.1);
        }
    }
    el.build()
}

/// A connected Erdős–Rényi-style graph: a random spanning tree plus
/// `extra_edges` additional random edges, with vertex ids shuffled so ids
/// carry no structural information (in particular, no "my tree parent has a
/// smaller id" artefact).
pub fn connected_gnm(n: usize, extra_edges: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut el = EdgeList::new(n);
    for v in 1..n as u32 {
        let parent = rng.gen_range(0..v);
        el.push(v, parent);
        seen.insert((parent.min(v), parent.max(v)));
    }
    let max_edges = n * n.saturating_sub(1) / 2;
    let target = (n.saturating_sub(1) + extra_edges).min(max_edges);
    while seen.len() < target {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            el.push(key.0, key.1);
        }
    }
    relabel(&el.build(), seed.wrapping_add(0x5eed))
}

/// A graph with exactly `k` planted connected components.
///
/// Each component is an independent connected G(n_i, n_i - 1 + extra) graph;
/// vertex ids are shuffled afterwards so components are not contiguous.
pub fn planted_components(
    n: usize,
    k: usize,
    extra_edges_per_component: usize,
    seed: u64,
) -> Graph {
    assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut el = EdgeList::new(n);
    let base = n / k;
    let extra = n % k;
    let mut start = 0usize;
    let mut seen = std::collections::HashSet::new();
    for c in 0..k {
        let size = base + usize::from(c < extra);
        // Spanning tree of the component.
        for i in 1..size {
            let v = (start + i) as u32;
            let parent = start as u32 + rng.gen_range(0..i as u32);
            el.push(v, parent);
            seen.insert((parent.min(v), parent.max(v)));
        }
        // Extra intra-component edges.
        if size >= 3 {
            let mut added = 0usize;
            let mut attempts = 0usize;
            while added < extra_edges_per_component && attempts < extra_edges_per_component * 20 {
                attempts += 1;
                let u = start as u32 + rng.gen_range(0..size as u32);
                let v = start as u32 + rng.gen_range(0..size as u32);
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if seen.insert(key) {
                    el.push(key.0, key.1);
                    added += 1;
                }
            }
        }
        start += size;
    }
    relabel(&el.build(), seed.wrapping_add(97))
}

/// A "path of cliques": `num_cliques` cliques of `clique_size` vertices each,
/// consecutive cliques joined by a single bridge edge.
///
/// This family has a large diameter (`Θ(num_cliques)`) while staying dense
/// (`m/n ≈ clique_size/2`), which is exactly the regime where the
/// `O(log D · …)` MPC connectivity baselines suffer and the AMPC algorithm
/// does not — the ablation benchmark sweeps `num_cliques`.
pub fn path_of_cliques(clique_size: usize, num_cliques: usize) -> Graph {
    assert!(clique_size >= 2 && num_cliques >= 1);
    let n = clique_size * num_cliques;
    let mut el = EdgeList::new(n);
    for c in 0..num_cliques {
        let base = (c * clique_size) as u32;
        for i in 0..clique_size as u32 {
            for j in (i + 1)..clique_size as u32 {
                el.push(base + i, base + j);
            }
        }
        if c + 1 < num_cliques {
            // Bridge from the last vertex of this clique to the first of the next.
            el.push(base + clique_size as u32 - 1, base + clique_size as u32);
        }
    }
    el.build()
}

/// A graph guaranteed to contain bridges: `blocks` biconnected blocks
/// (cycles with chords) chained together by single bridge edges, plus
/// pendant trees hanging off some blocks.
///
/// Used by the 2-edge-connectivity experiments: the bridges are exactly the
/// chaining edges plus every pendant tree edge.
pub fn bridged_blocks(block_size: usize, blocks: usize, pendant: usize, seed: u64) -> Graph {
    assert!(block_size >= 3 && blocks >= 1);
    let n = block_size * blocks + pendant * blocks;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut el = EdgeList::new(n);
    for b in 0..blocks {
        let base = (b * block_size) as u32;
        // A cycle (2-edge-connected) …
        for i in 0..block_size as u32 {
            el.push(base + i, base + (i + 1) % block_size as u32);
        }
        // … with a couple of random chords to vary the structure.
        for _ in 0..(block_size / 4) {
            let i = rng.gen_range(0..block_size as u32);
            let j = rng.gen_range(0..block_size as u32);
            if i != j {
                el.push(base + i, base + j);
            }
        }
        if b + 1 < blocks {
            el.push(base + block_size as u32 - 1, base + block_size as u32);
        }
    }
    // Pendant paths (every edge of which is a bridge).
    let tree_base = block_size * blocks;
    for b in 0..blocks {
        let attach = (b * block_size) as u32;
        let mut prev = attach;
        for p in 0..pendant {
            let v = (tree_base + b * pendant + p) as u32;
            el.push(prev, v);
            prev = v;
        }
    }
    el.build()
}

/// Assign uniformly random *distinct* weights to the edges of `graph`.
///
/// Weights are a random permutation of `1..=m`, so the MSF is unique.
pub fn with_random_weights(graph: &Graph, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = graph.num_edges();
    let mut weights: Vec<u64> = (1..=m as u64).collect();
    weights.shuffle(&mut rng);
    let weighted: Vec<(u32, u32, u64)> = graph
        .edges()
        .iter()
        .enumerate()
        .map(|(id, e)| (e.u, e.v, weights[id]))
        .collect();
    Graph::from_weighted_edges(graph.num_vertices(), &weighted)
}

/// Randomly permute the vertex ids of `graph` (preserving weights if any).
pub fn relabel(graph: &Graph, seed: u64) -> Graph {
    let n = graph.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut rng);
    if graph.is_weighted() {
        let edges: Vec<(u32, u32, u64)> = graph
            .weighted_edges()
            .iter()
            .map(|e| (perm[e.u as usize], perm[e.v as usize], e.weight))
            .collect();
        Graph::from_weighted_edges(n, &edges)
    } else {
        let edges: Vec<Edge> = graph
            .edges()
            .iter()
            .map(|e| Edge::new(perm[e.u as usize], perm[e.v as usize]))
            .collect();
        Graph::from_edges(n, &edges)
    }
}

/// Number of connected components of a generated graph (convenience used by
/// generator tests; algorithms use `sequential::connected_components`).
pub fn component_count(graph: &Graph) -> usize {
    let mut uf = UnionFind::new(graph.num_vertices());
    for e in graph.edges() {
        uf.union(e.u, e.v);
    }
    uf.num_components()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_has_n_edges_and_degree_two() {
        let g = cycle(10);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 10);
        assert!((0..10u32).all(|v| g.degree(v) == 2));
        assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn two_cycles_has_two_components() {
        let g = two_cycles(20);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 20);
        assert_eq!(component_count(&g), 2);
        assert!((0..20u32).all(|v| g.degree(v) == 2));
    }

    #[test]
    fn two_cycle_instance_hides_structure_but_keeps_components() {
        let one = two_cycle_instance(100, false, 5);
        let two = two_cycle_instance(100, true, 5);
        assert_eq!(component_count(&one), 1);
        assert_eq!(component_count(&two), 2);
        assert!((0..100u32).all(|v| one.degree(v) == 2 && two.degree(v) == 2));
    }

    #[test]
    fn path_and_star_shapes() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
        let s = star(6);
        assert_eq!(s.num_edges(), 5);
        assert_eq!(s.degree(0), 5);
        assert!((1..6u32).all(|v| s.degree(v) == 1));
        let single = path(1);
        assert_eq!(single.num_edges(), 0);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!((0..6u32).all(|v| g.degree(v) == 5));
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn trees_have_n_minus_one_edges() {
        for seed in 0..3 {
            let t = random_tree(50, seed);
            assert_eq!(t.num_edges(), 49);
            assert_eq!(component_count(&t), 1);
        }
        let b = binary_tree(31);
        assert_eq!(b.num_edges(), 30);
        assert_eq!(component_count(&b), 1);
    }

    #[test]
    fn random_forest_has_exact_component_count() {
        for &(n, k) in &[(30usize, 3usize), (100, 7), (12, 12), (50, 1)] {
            let f = random_forest(n, k, 9);
            assert_eq!(component_count(&f), k, "n={n} k={k}");
            assert_eq!(f.num_edges(), n - k);
        }
    }

    #[test]
    fn gnm_has_requested_edge_count() {
        let g = erdos_renyi_gnm(100, 250, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn connected_gnm_is_connected() {
        for seed in 0..3 {
            let g = connected_gnm(200, 300, seed);
            assert_eq!(component_count(&g), 1);
            assert!(g.num_edges() >= 199);
        }
    }

    #[test]
    fn planted_components_have_exact_count() {
        for &(n, k) in &[(60usize, 4usize), (100, 10), (40, 1)] {
            let g = planted_components(n, k, 2, 13);
            assert_eq!(component_count(&g), k, "n={n} k={k}");
        }
    }

    #[test]
    fn path_of_cliques_is_connected_and_dense() {
        let g = path_of_cliques(8, 10);
        assert_eq!(g.num_vertices(), 80);
        assert_eq!(component_count(&g), 1);
        // Each clique contributes 28 edges, plus 9 bridges.
        assert_eq!(g.num_edges(), 10 * 28 + 9);
    }

    #[test]
    fn bridged_blocks_connected() {
        let g = bridged_blocks(6, 5, 3, 2);
        assert_eq!(component_count(&g), 1);
        assert!(g.num_edges() >= 5 * 6 + 4 + 15);
    }

    #[test]
    fn random_weights_are_distinct_permutation() {
        let g = with_random_weights(&cycle(20), 3);
        assert!(g.is_weighted());
        let mut ws: Vec<u64> = g.weighted_edges().iter().map(|e| e.weight).collect();
        ws.sort_unstable();
        assert_eq!(ws, (1..=20u64).collect::<Vec<_>>());
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = cycle(15);
        let r = relabel(&g, 8);
        assert_eq!(r.num_vertices(), 15);
        assert_eq!(r.num_edges(), 15);
        assert!((0..15u32).all(|v| r.degree(v) == 2));
        assert_eq!(component_count(&r), 1);
    }

    #[test]
    fn relabel_preserves_weights() {
        let g = with_random_weights(&cycle(10), 4);
        let r = relabel(&g, 5);
        let mut a: Vec<u64> = g.weighted_edges().iter().map(|e| e.weight).collect();
        let mut b: Vec<u64> = r.weighted_edges().iter().map(|e| e.weight).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_rejected() {
        let _ = cycle(2);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn overfull_gnm_rejected() {
        let _ = erdos_renyi_gnm(4, 100, 0);
    }
}

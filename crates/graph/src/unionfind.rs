//! Union-find (disjoint set union) with path compression and union by rank.
//!
//! Used as the sequential ground truth for every connectivity-flavoured
//! algorithm in the workspace (connectivity, spanning forest, forest
//! connectivity, 2-edge connectivity), and internally by the graph
//! generators to plant components.

/// Disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression pass.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`.  Returns `true` if they were
    /// previously different sets.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Canonical labelling: every element mapped to the smallest element of
    /// its set.  Useful for comparing two component labellings for equality
    /// up to renaming.
    pub fn canonical_labels(&mut self) -> Vec<u32> {
        let n = self.len();
        let mut min_of_root = vec![u32::MAX; n];
        for x in 0..n as u32 {
            let r = self.find(x) as usize;
            if x < min_of_root[r] {
                min_of_root[r] = x;
            }
        }
        (0..n as u32)
            .map(|x| min_of_root[self.find(x) as usize])
            .collect()
    }
}

/// Normalise an arbitrary component labelling to "label = smallest vertex id
/// in the component", so two labellings can be compared directly.
pub fn canonicalize_labels(labels: &[u32]) -> Vec<u32> {
    let n = labels.len();
    let mut uf = UnionFind::new(n);
    // Group vertices by label, then union each group to its first member.
    let mut first_with_label: std::collections::HashMap<u32, u32> =
        std::collections::HashMap::new();
    for (v, &l) in labels.iter().enumerate() {
        match first_with_label.get(&l) {
            Some(&first) => {
                uf.union(first, v as u32);
            }
            None => {
                first_with_label.insert(l, v as u32);
            }
        }
    }
    uf.canonical_labels()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disconnected() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.find(3), 3);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_merges_components() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.num_components(), 2);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 2));
        assert_eq!(uf.num_components(), 1);
        assert!(uf.connected(0, 3));
        assert!(!uf.union(0, 3), "already connected");
    }

    #[test]
    fn canonical_labels_use_smallest_member() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(3, 1);
        uf.union(0, 2);
        let labels = uf.canonical_labels();
        assert_eq!(labels, vec![0, 1, 0, 1, 4, 1]);
    }

    #[test]
    fn canonicalize_arbitrary_labels() {
        // Two labellings of the same partition must canonicalise identically.
        let a = vec![7, 7, 9, 9, 3];
        let b = vec![100, 100, 2, 2, 50];
        assert_eq!(canonicalize_labels(&a), canonicalize_labels(&b));
        assert_eq!(canonicalize_labels(&a), vec![0, 0, 2, 2, 4]);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..(n as u32 - 1) {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert_eq!(uf.find(n as u32 - 1), uf.find(0));
    }
}

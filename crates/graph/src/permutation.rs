//! Random permutations and priorities.
//!
//! The MIS algorithm (Section 5) and cycle connectivity (Section 8) both fix
//! a uniformly random permutation π over the vertices; the paper samples it
//! by "each vertex v picking a random real ρ_v ∈ [0, 1]".  We use random
//! distinct `u64` priorities, which induce the same uniform permutation and
//! avoid any floating-point tie handling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Distinct random priorities for `n` vertices: lower value = earlier in π.
///
/// Priorities are guaranteed distinct (re-drawn on collision), so they induce
/// a well-defined permutation.
pub fn random_priorities(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut priorities = vec![0u64; n];
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    for p in priorities.iter_mut() {
        loop {
            let candidate: u64 = rng.gen();
            if seen.insert(candidate) {
                *p = candidate;
                break;
            }
        }
    }
    priorities
}

/// A uniformly random permutation of `0..n` (as a mapping `perm[v] = rank`).
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);
    // order[rank] = vertex; invert to perm[vertex] = rank.
    let mut perm = vec![0u32; n];
    for (rank, &v) in order.iter().enumerate() {
        perm[v as usize] = rank as u32;
    }
    perm
}

/// The permutation induced by priorities: `rank[v]` is the position of `v`
/// when vertices are sorted by `(priority, id)`.
pub fn ranks_from_priorities(priorities: &[u64]) -> Vec<u32> {
    let n = priorities.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (priorities[v as usize], v));
    let mut rank = vec![0u32; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_are_distinct_and_deterministic() {
        let a = random_priorities(1000, 42);
        let b = random_priorities(1000, 42);
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert_eq!(distinct.len(), 1000);
        let c = random_priorities(1000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let perm = random_permutation(500, 7);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..500u32).collect::<Vec<_>>());
    }

    #[test]
    fn ranks_follow_priorities() {
        let priorities = vec![50, 10, 30, 20, 40];
        let ranks = ranks_from_priorities(&priorities);
        assert_eq!(ranks, vec![4, 0, 2, 1, 3]);
    }

    #[test]
    fn ranks_break_ties_by_id() {
        let priorities = vec![5, 5, 1];
        let ranks = ranks_from_priorities(&priorities);
        assert_eq!(ranks, vec![1, 2, 0]);
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(random_priorities(0, 1).is_empty());
        assert!(random_permutation(0, 1).is_empty());
        assert!(ranks_from_priorities(&[]).is_empty());
    }
}

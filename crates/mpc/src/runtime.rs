//! A vertex-centric MPC/Pregel-style superstep executor.
//!
//! The MPC model allows each machine to exchange `O(S)` data with other
//! machines *between* rounds but gives it no in-round access to remote data
//! — the capability AMPC adds.  The standard way MPC graph algorithms are
//! expressed (and the way systems like Pregel/Giraph execute them) is
//! vertex-centric: in superstep `t` every active vertex consumes the
//! messages addressed to it in superstep `t − 1`, updates its state and
//! emits messages for superstep `t + 1`.
//!
//! [`MpcRuntime::run`] executes a [`VertexProgram`] to completion and
//! records [`MpcRunStats`] so the baselines' round counts can be compared
//! directly with the AMPC algorithms' round counts.

use crate::stats::{MpcRunStats, SuperstepStats};
use ampc_graph::Graph;
use std::collections::HashMap;

/// A vertex-centric program in the Pregel style.
pub trait VertexProgram: Sync {
    /// Per-vertex state.
    type State: Clone + Send;
    /// Message type exchanged between vertices.
    type Message: Clone + Send;

    /// Initial state of vertex `v`.
    fn init(&self, v: u32, graph: &Graph) -> Self::State;

    /// Execute vertex `v` for one superstep.
    ///
    /// `messages` are the messages addressed to `v` in the previous
    /// superstep (empty in superstep 0).  Returns the messages to send; a
    /// vertex that returns no messages and does not get any in the next
    /// superstep becomes inactive.
    fn step(
        &self,
        v: u32,
        graph: &Graph,
        state: &mut Self::State,
        messages: &[Self::Message],
        superstep: usize,
    ) -> Vec<(u32, Self::Message)>;
}

/// Configuration and executor for vertex-centric MPC programs.
#[derive(Clone, Debug)]
pub struct MpcRuntime {
    /// Number of (virtual) machines; vertex `v` lives on machine `v % machines`.
    pub machines: usize,
    /// Hard cap on supersteps (protects against non-terminating programs).
    pub max_supersteps: usize,
}

impl MpcRuntime {
    /// Runtime with `machines` machines and a superstep cap.
    pub fn new(machines: usize, max_supersteps: usize) -> Self {
        MpcRuntime {
            machines: machines.max(1),
            max_supersteps,
        }
    }

    /// Runtime sized like the paper's MPC setting for a graph: `P = N / n^ε`
    /// machines.
    pub fn for_graph(graph: &Graph, epsilon: f64) -> Self {
        let n = graph.num_vertices().max(1);
        let space = (n as f64).powf(epsilon).ceil().max(2.0) as usize;
        let machines = graph.input_size().div_ceil(space).max(1);
        MpcRuntime::new(machines, 4 * (n.ilog2() as usize + 2))
    }

    /// Execute `program` on `graph` until no messages are in flight (or the
    /// superstep cap is reached).  Returns final vertex states and stats.
    pub fn run<P: VertexProgram>(
        &self,
        graph: &Graph,
        program: &P,
    ) -> (Vec<P::State>, MpcRunStats) {
        let n = graph.num_vertices();
        let mut states: Vec<P::State> = (0..n as u32).map(|v| program.init(v, graph)).collect();
        let mut stats = MpcRunStats::default();
        // inbox[v] = messages addressed to v for the current superstep.
        let mut inbox: Vec<Vec<P::Message>> = vec![Vec::new(); n];
        let mut active: Vec<bool> = vec![true; n];

        for superstep in 0..self.max_supersteps {
            let mut outbox: HashMap<u32, Vec<P::Message>> = HashMap::new();
            let mut messages_sent = 0u64;
            let mut active_count = 0usize;

            for v in 0..n as u32 {
                let has_mail = !inbox[v as usize].is_empty();
                if !active[v as usize] && !has_mail {
                    continue;
                }
                active_count += 1;
                let outgoing = program.step(
                    v,
                    graph,
                    &mut states[v as usize],
                    &inbox[v as usize],
                    superstep,
                );
                active[v as usize] = false;
                messages_sent += outgoing.len() as u64;
                for (dest, msg) in outgoing {
                    outbox.entry(dest).or_default().push(msg);
                }
            }

            // Machine load: messages grouped by destination machine.
            let mut per_machine: HashMap<usize, u64> = HashMap::new();
            for (&dest, msgs) in &outbox {
                *per_machine
                    .entry(dest as usize % self.machines)
                    .or_default() += msgs.len() as u64;
            }
            let max_machine = per_machine.values().copied().max().unwrap_or(0);

            stats.push(SuperstepStats {
                superstep,
                active_vertices: active_count,
                messages: messages_sent,
                max_messages_per_machine: max_machine,
            });

            if messages_sent == 0 {
                break;
            }

            // Deliver.
            for mail in inbox.iter_mut() {
                mail.clear();
            }
            for (dest, msgs) in outbox {
                inbox[dest as usize] = msgs;
            }
        }

        (states, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::generators;

    /// Classic "propagate the minimum id" program used as a smoke test.
    struct MinLabel;

    impl VertexProgram for MinLabel {
        type State = u32;
        type Message = u32;

        fn init(&self, v: u32, _graph: &Graph) -> u32 {
            v
        }

        fn step(
            &self,
            v: u32,
            graph: &Graph,
            state: &mut u32,
            messages: &[u32],
            superstep: usize,
        ) -> Vec<(u32, u32)> {
            let incoming_min = messages.iter().copied().min().unwrap_or(u32::MAX);
            let improved = incoming_min < *state;
            if improved {
                *state = incoming_min;
            }
            if superstep == 0 || improved {
                graph.neighbors(v).iter().map(|&u| (u, *state)).collect()
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn min_label_converges_on_a_path() {
        let g = generators::path(50);
        let rt = MpcRuntime::new(8, 200);
        let (labels, stats) = rt.run(&g, &MinLabel);
        assert!(labels.iter().all(|&l| l == 0));
        // Label 0 must travel distance 49, so ≥ 49 supersteps are needed:
        // the O(D) behaviour the AMPC algorithms avoid.
        assert!(stats.num_rounds() >= 49, "rounds = {}", stats.num_rounds());
        assert!(stats.total_messages() > 0);
    }

    #[test]
    fn min_label_respects_components() {
        let g = generators::two_cycles(20);
        let rt = MpcRuntime::new(4, 100);
        let (labels, _) = rt.run(&g, &MinLabel);
        let c0: Vec<u32> = (0..10).map(|v| labels[v]).collect();
        let c1: Vec<u32> = (10..20).map(|v| labels[v]).collect();
        assert!(c0.iter().all(|&l| l == c0[0]));
        assert!(c1.iter().all(|&l| l == c1[0]));
        assert_ne!(c0[0], c1[0]);
    }

    #[test]
    fn superstep_cap_stops_runaway_programs() {
        /// A program that messages itself forever.
        struct Forever;
        impl VertexProgram for Forever {
            type State = ();
            type Message = ();
            fn init(&self, _v: u32, _g: &Graph) {}
            fn step(
                &self,
                v: u32,
                _g: &Graph,
                _s: &mut (),
                _m: &[()],
                _t: usize,
            ) -> Vec<(u32, ())> {
                vec![(v, ())]
            }
        }
        let g = generators::path(4);
        let rt = MpcRuntime::new(2, 10);
        let (_, stats) = rt.run(&g, &Forever);
        assert_eq!(stats.num_rounds(), 10);
    }

    #[test]
    fn for_graph_sizes_machines_from_epsilon() {
        let g = generators::cycle(10_000);
        let rt = MpcRuntime::for_graph(&g, 0.5);
        assert_eq!(rt.machines, 200); // (10_000 + 10_000) / 100
        assert!(rt.max_supersteps > 0);
    }

    #[test]
    fn empty_graph_runs_one_round() {
        let g = Graph::from_edges(0, &[]);
        let rt = MpcRuntime::new(2, 10);
        let (states, stats) = rt.run(&g, &MinLabel);
        assert!(states.is_empty());
        assert_eq!(stats.num_rounds(), 1);
    }
}

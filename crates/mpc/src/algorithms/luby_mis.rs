//! Luby's maximal independent set: the `O(log n)`-round MPC baseline.
//!
//! In every round each surviving vertex draws a random priority; a vertex
//! joins the MIS if its priority beats every surviving neighbour's, and then
//! it and its neighbours leave the graph.  A constant fraction of edges is
//! removed per round in expectation, giving `O(log n)` rounds w.h.p. — the
//! baseline the paper's `O(1)`-round AMPC MIS (Section 5) is compared to.
//! (The best known MPC bound in the paper's table is Õ(√log n) [Ghaffari &
//! Uitto 2019]; Luby is the standard implementable baseline and an upper
//! bound on that column.)

use crate::stats::{MpcRunStats, SuperstepStats};
use ampc_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run Luby's algorithm.  Returns the MIS membership bitmap and per-round
/// statistics (`stats.num_rounds()` is `O(log n)` w.h.p.).
pub fn luby_mis(graph: &Graph, machines: usize, seed: u64) -> (Vec<bool>, MpcRunStats) {
    let n = graph.num_vertices();
    let machines = machines.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = MpcRunStats::default();

    let mut in_mis = vec![false; n];
    let mut alive = vec![true; n];
    let mut alive_count = n;
    let mut superstep = 0usize;

    while alive_count > 0 {
        // Each alive vertex draws a priority and sends it to its neighbours:
        // one MPC round of communication along every surviving edge.
        let priorities: Vec<u64> = (0..n)
            .map(|v| if alive[v] { rng.gen() } else { u64::MAX })
            .collect();

        let mut joins = Vec::new();
        let mut messages = 0u64;
        for v in 0..n as u32 {
            if !alive[v as usize] {
                continue;
            }
            let mut is_local_min = true;
            for &u in graph.neighbors(v) {
                if alive[u as usize] {
                    messages += 1;
                    // Tie-break by id so distinct vertices never tie.
                    if (priorities[u as usize], u) < (priorities[v as usize], v) {
                        is_local_min = false;
                    }
                }
            }
            if is_local_min {
                joins.push(v);
            }
        }

        for &v in &joins {
            in_mis[v as usize] = true;
            if alive[v as usize] {
                alive[v as usize] = false;
                alive_count -= 1;
            }
            for &u in graph.neighbors(v) {
                if alive[u as usize] {
                    alive[u as usize] = false;
                    alive_count -= 1;
                }
            }
        }

        stats.push(SuperstepStats {
            superstep,
            active_vertices: n - alive_count,
            messages,
            max_messages_per_machine: messages.div_ceil(machines as u64),
        });
        superstep += 1;
        if superstep > 8 * (n.max(2).ilog2() as usize + 2) {
            break; // safety net
        }
    }

    (in_mis, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::{generators, sequential};

    #[test]
    fn output_is_a_maximal_independent_set() {
        for seed in 0..5 {
            let g = generators::erdos_renyi_gnm(300, 900, seed);
            let (mis, _) = luby_mis(&g, 8, seed);
            assert!(sequential::is_maximal_independent_set(&g, &mis));
        }
    }

    #[test]
    fn round_count_is_logarithmic() {
        let g = generators::erdos_renyi_gnm(2000, 8000, 1);
        let (_, stats) = luby_mis(&g, 16, 1);
        let logn = (2000f64).log2();
        assert!(
            stats.num_rounds() as f64 <= 3.0 * logn,
            "rounds = {}",
            stats.num_rounds()
        );
        assert!(stats.num_rounds() >= 1);
    }

    #[test]
    fn star_graph_resolves_quickly() {
        let g = generators::star(100);
        let (mis, stats) = luby_mis(&g, 4, 9);
        assert!(sequential::is_maximal_independent_set(&g, &mis));
        // Either the centre joins (1 vertex) or all leaves join (99 vertices).
        let size = mis.iter().filter(|&&b| b).count();
        assert!(size == 1 || size == 99);
        assert!(stats.num_rounds() <= 3);
    }

    #[test]
    fn graph_with_no_edges_takes_one_round() {
        let g = ampc_graph::Graph::from_edges(10, &[]);
        let (mis, stats) = luby_mis(&g, 2, 0);
        assert!(mis.iter().all(|&b| b));
        assert_eq!(stats.num_rounds(), 1);
    }
}

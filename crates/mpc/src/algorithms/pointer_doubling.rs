//! Pointer jumping baselines: list ranking and `O(log n)` connectivity.
//!
//! In the MPC model a machine cannot chase a pointer chain within a round —
//! each hop costs a round — so the classic way to rank lists and label
//! components is *pointer jumping*: in every round each element replaces its
//! pointer `p(v)` by `p(p(v))`, halving the remaining distance.  That costs
//! `Θ(log n)` rounds, which is precisely what the AMPC `Shrink` /
//! list-ranking algorithms (Sections 4 and 8 of the paper) replace with
//! `O(1/ε)` rounds of adaptive traversal.
//!
//! Two baselines live here:
//! * [`wyllie_list_ranking`] — Wyllie's list-ranking algorithm.
//! * [`pointer_doubling_connectivity`] — Shiloach–Vishkin-style connectivity
//!   (hook each root onto its minimum neighbouring root, then shortcut by
//!   pointer jumping), the standard `O(log n)`-round MPC connectivity used
//!   as the 2-Cycle baseline.

use crate::stats::{MpcRunStats, SuperstepStats};
use ampc_graph::Graph;

/// Wyllie's list ranking by pointer jumping.
///
/// `successor[v]` is the next element of the list, with the terminal element
/// pointing at itself.  Returns `(ranks, stats)` where `ranks[v]` is the
/// number of links between `v` and the terminal, computed in `Θ(log n)`
/// supersteps.
pub fn wyllie_list_ranking(successor: &[u32], machines: usize) -> (Vec<u64>, MpcRunStats) {
    let n = successor.len();
    let machines = machines.max(1);
    let mut stats = MpcRunStats::default();
    let mut next: Vec<u32> = successor.to_vec();
    let mut rank: Vec<u64> = (0..n)
        .map(|v| u64::from(successor[v] != v as u32))
        .collect();

    let mut superstep = 0usize;
    loop {
        // A vertex still benefits from jumping while its successor is not
        // yet the terminal (i.e. jumping would move its pointer).
        let active: Vec<u32> = (0..n as u32)
            .filter(|&v| {
                let s = next[v as usize];
                s != v && next[s as usize] != s
            })
            .collect();
        if active.is_empty() {
            break;
        }
        let mut new_next = next.clone();
        let mut new_rank = rank.clone();
        for &v in &active {
            let s = next[v as usize];
            new_rank[v as usize] = rank[v as usize] + rank[s as usize];
            new_next[v as usize] = next[s as usize];
        }
        let messages = 2 * active.len() as u64;
        let mut per_machine = vec![0u64; machines];
        for &v in &active {
            per_machine[next[v as usize] as usize % machines] += 1;
            per_machine[v as usize % machines] += 1;
        }
        stats.push(SuperstepStats {
            superstep,
            active_vertices: active.len(),
            messages,
            max_messages_per_machine: per_machine.iter().copied().max().unwrap_or(0),
        });
        next = new_next;
        rank = new_rank;
        superstep += 1;
        if superstep > 2 * (n.max(2).ilog2() as usize + 2) {
            break; // safety net; never hit for well-formed lists
        }
    }
    (rank, stats)
}

/// Connected components in `O(log n)` MPC rounds via Shiloach–Vishkin-style
/// hooking plus pointer jumping.
///
/// Every vertex maintains a parent pointer into a forest of rooted trees.
/// Each round (a constant number of MPC supersteps) does:
/// 1. **Hook**: for every edge, the larger root is hooked onto the smaller
///    adjacent root.
/// 2. **Shortcut**: every vertex replaces its parent by its grandparent
///    (pointer jumping), flattening the trees.
///
/// The number of roots drops geometrically, so `O(log n)` rounds suffice; on
/// a cycle of length `n` this is `Θ(log n)` — the baseline the AMPC `Shrink`
/// algorithm beats.
pub fn pointer_doubling_connectivity(graph: &Graph, machines: usize) -> (Vec<u32>, MpcRunStats) {
    let n = graph.num_vertices();
    let machines = machines.max(1);
    let mut stats = MpcRunStats::default();
    if n == 0 {
        return (Vec::new(), stats);
    }

    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut superstep = 0usize;

    loop {
        let mut changed = false;

        // Hook: each root adopts the minimum root seen across its incident
        // edges.  In MPC this is one round: every edge sends the two current
        // roots to each other's machines and roots aggregate the minimum.
        let mut candidate: Vec<u32> = (0..n as u32).map(|v| parent[v as usize]).collect();
        for e in graph.edges() {
            let ru = parent[e.u as usize];
            let rv = parent[e.v as usize];
            if ru == rv {
                continue;
            }
            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
            if lo < candidate[hi as usize] {
                candidate[hi as usize] = lo;
            }
        }
        for v in 0..n {
            let r = parent[v] as usize;
            if candidate[r] < parent[r] {
                parent[r] = candidate[r];
                changed = true;
            }
        }

        // Shortcut: pointer jumping, one MPC round of lookups.
        for v in 0..n {
            let g = parent[parent[v] as usize];
            if g != parent[v] {
                parent[v] = g;
                changed = true;
            }
        }

        // Each iteration costs two MPC supersteps: one to aggregate the
        // minimum adjacent root at every root (messages along every edge),
        // and one of pointer jumping (every vertex asks its parent).
        let hook_messages = 2 * graph.num_edges() as u64;
        stats.push(SuperstepStats {
            superstep,
            active_vertices: n,
            messages: hook_messages,
            max_messages_per_machine: hook_messages.div_ceil(machines as u64),
        });
        superstep += 1;
        let jump_messages = n as u64;
        stats.push(SuperstepStats {
            superstep,
            active_vertices: n,
            messages: jump_messages,
            max_messages_per_machine: jump_messages.div_ceil(machines as u64),
        });
        superstep += 1;

        if !changed {
            break;
        }
        if superstep > 4 * (n.max(2).ilog2() as usize + 2) {
            break; // safety net
        }
    }

    // Final flattening so every vertex reports its root directly (roots are
    // already component minima because hooking always goes to the minimum).
    let mut labels = parent;
    loop {
        let mut changed = false;
        for v in 0..n {
            let g = labels[labels[v] as usize];
            if g != labels[v] {
                labels[v] = g;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (labels, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::{generators, sequential};

    #[test]
    fn wyllie_ranks_match_sequential() {
        // Build a list 0 -> 1 -> 2 -> ... -> 99 -> 99.
        let n = 100;
        let successor: Vec<u32> = (0..n as u32)
            .map(|v| if v + 1 < n as u32 { v + 1 } else { v })
            .collect();
        let (ranks, stats) = wyllie_list_ranking(&successor, 8);
        let expected = sequential::sequential_list_ranks(&successor);
        assert_eq!(ranks, expected);
        // Θ(log n) rounds: about 7 for n = 100.
        assert!(
            stats.num_rounds() >= 5 && stats.num_rounds() <= 9,
            "rounds = {}",
            stats.num_rounds()
        );
    }

    #[test]
    fn wyllie_on_singleton_list() {
        let (ranks, stats) = wyllie_list_ranking(&[0], 2);
        assert_eq!(ranks, vec![0]);
        assert_eq!(stats.num_rounds(), 0);
    }

    #[test]
    fn wyllie_on_shuffled_list() {
        // A list threaded through shuffled ids.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 512usize;
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(&mut rng);
        let mut successor = vec![0u32; n];
        for i in 0..n - 1 {
            successor[order[i] as usize] = order[i + 1];
        }
        successor[order[n - 1] as usize] = order[n - 1];
        let (ranks, _) = wyllie_list_ranking(&successor, 16);
        assert_eq!(ranks, sequential::sequential_list_ranks(&successor));
    }

    #[test]
    fn connectivity_on_cycles_matches_sequential() {
        for &(n, two) in &[(64usize, false), (64, true), (501, false), (500, true)] {
            let g = generators::two_cycle_instance(n, two, 3);
            let (labels, stats) = pointer_doubling_connectivity(&g, 8);
            assert_eq!(
                labels,
                sequential::connected_components(&g),
                "n={n} two={two}"
            );
            // Θ(log n) rounds with a modest constant.
            let logn = (n as f64).log2();
            assert!(
                (stats.num_rounds() as f64) <= 4.0 * logn + 8.0,
                "rounds = {} for n = {n}",
                stats.num_rounds()
            );
            assert!(stats.num_rounds() >= 2);
        }
    }

    #[test]
    fn connectivity_matches_sequential_on_general_graphs() {
        for seed in 0..3 {
            let g = generators::planted_components(300, 6, 4, seed);
            let (labels, _) = pointer_doubling_connectivity(&g, 8);
            assert_eq!(labels, sequential::connected_components(&g));
        }
    }

    #[test]
    fn connectivity_round_count_grows_with_n() {
        let small = generators::two_cycle_instance(64, false, 1);
        let large = generators::two_cycle_instance(8192, false, 1);
        let (_, small_stats) = pointer_doubling_connectivity(&small, 8);
        let (_, large_stats) = pointer_doubling_connectivity(&large, 8);
        assert!(large_stats.num_rounds() > small_stats.num_rounds());
    }

    #[test]
    fn connectivity_handles_isolated_vertices() {
        let g = ampc_graph::Graph::from_edges(4, &[ampc_graph::Edge::new(1, 2)]);
        let (labels, _) = pointer_doubling_connectivity(&g, 2);
        assert_eq!(labels, vec![0, 1, 1, 3]);
    }

    #[test]
    fn connectivity_on_empty_graph() {
        let g = ampc_graph::Graph::from_edges(0, &[]);
        let (labels, stats) = pointer_doubling_connectivity(&g, 2);
        assert!(labels.is_empty());
        assert_eq!(stats.num_rounds(), 0);
    }
}

//! Connectivity by label propagation: the `O(D)`-round MPC baseline.
//!
//! Every vertex repeatedly adopts the minimum label in its closed
//! neighbourhood and tells its neighbours when its label improves.  The
//! number of supersteps is `Θ(D)` (the graph diameter) — exactly the
//! dependence the paper's AMPC connectivity algorithm removes, and the
//! quantity the diameter-ablation benchmark sweeps.

use crate::runtime::{MpcRuntime, VertexProgram};
use crate::stats::MpcRunStats;
use ampc_graph::Graph;

struct LabelPropagation;

impl VertexProgram for LabelPropagation {
    type State = u32;
    type Message = u32;

    fn init(&self, v: u32, _graph: &Graph) -> u32 {
        v
    }

    fn step(
        &self,
        v: u32,
        graph: &Graph,
        state: &mut u32,
        messages: &[u32],
        superstep: usize,
    ) -> Vec<(u32, u32)> {
        let best_incoming = messages.iter().copied().min().unwrap_or(u32::MAX);
        let improved = best_incoming < *state;
        if improved {
            *state = best_incoming;
        }
        if superstep == 0 || improved {
            graph.neighbors(v).iter().map(|&u| (u, *state)).collect()
        } else {
            Vec::new()
        }
    }
}

/// Connected components by min-label propagation.
///
/// Returns `(labels, stats)` where `labels[v]` is the smallest vertex id in
/// `v`'s component and `stats.num_rounds()` is `Θ(D)`.
pub fn label_propagation_connectivity(graph: &Graph, epsilon: f64) -> (Vec<u32>, MpcRunStats) {
    let runtime = MpcRuntime::for_graph(graph, epsilon);
    // Label propagation needs up to D + 2 supersteps; D can approach n.
    let runtime = MpcRuntime::new(runtime.machines, graph.num_vertices() + 2);
    runtime.run(graph, &LabelPropagation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::{generators, sequential};

    #[test]
    fn matches_sequential_connectivity_on_random_graphs() {
        for seed in 0..3 {
            let g = generators::planted_components(200, 5, 3, seed);
            let (labels, _) = label_propagation_connectivity(&g, 0.5);
            assert_eq!(labels, sequential::connected_components(&g));
        }
    }

    #[test]
    fn round_count_scales_with_diameter() {
        let short = generators::star(1000); // D = 2
        let long = generators::path(1000); // D = 999
        let (_, short_stats) = label_propagation_connectivity(&short, 0.5);
        let (_, long_stats) = label_propagation_connectivity(&long, 0.5);
        assert!(short_stats.num_rounds() <= 5);
        assert!(long_stats.num_rounds() >= 999);
        assert!(long_stats.num_rounds() > 50 * short_stats.num_rounds());
    }

    #[test]
    fn isolated_vertices_keep_their_own_label() {
        let g = ampc_graph::Graph::from_edges(5, &[ampc_graph::Edge::new(0, 1)]);
        let (labels, _) = label_propagation_connectivity(&g, 0.5);
        assert_eq!(labels, vec![0, 0, 2, 3, 4]);
    }
}

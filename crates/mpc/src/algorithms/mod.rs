//! Baseline MPC graph algorithms — the right-hand column of Figure 1.
//!
//! Each baseline is the textbook MPC/PRAM-style algorithm the paper compares
//! against, executed round by round with explicit superstep accounting so
//! the benchmark harness can print "AMPC rounds vs MPC rounds" for every
//! problem:
//!
//! | Problem           | Baseline here                         | Rounds      |
//! |-------------------|---------------------------------------|-------------|
//! | Connectivity      | [`label_propagation`]                 | `O(D)`      |
//! | Connectivity      | [`pointer_doubling::connectivity`]    | `O(log n)`  |
//! | 2-Cycle           | [`two_cycle`]                         | `O(log n)`  |
//! | MIS               | [`luby_mis`]                          | `O(log n)`  |
//! | MSF                | [`boruvka`]                           | `O(log n)`  |
//! | List ranking      | [`pointer_doubling::list_ranking`]    | `O(log n)`  |

pub mod boruvka;
pub mod label_propagation;
pub mod luby_mis;
pub mod pointer_doubling;
pub mod two_cycle;

pub use boruvka::boruvka_msf;
pub use label_propagation::label_propagation_connectivity;
pub use luby_mis::luby_mis;
pub use pointer_doubling::{pointer_doubling_connectivity, wyllie_list_ranking};
pub use two_cycle::two_cycle_mpc;

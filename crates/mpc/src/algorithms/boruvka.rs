//! Borůvka's minimum spanning forest: the `O(log n)`-round MPC baseline.
//!
//! In every round each component selects its minimum-weight outgoing edge and
//! the selected edges are contracted; the number of components at least
//! halves per round, so `Θ(log n)` rounds suffice.  This is the standard MPC
//! MSF algorithm the paper's `O(log log_{m/n} n)`-round AMPC algorithm
//! (Section 7) is compared against in Figure 1.

use crate::stats::{MpcRunStats, SuperstepStats};
use ampc_graph::{Graph, UnionFind, WeightedEdge};

/// Run Borůvka's algorithm on a weighted graph.
///
/// Returns the MSF edges (original ids), the total weight, and per-round
/// statistics.  Weights are assumed distinct (ties broken by edge id).
pub fn boruvka_msf(graph: &Graph, machines: usize) -> (Vec<WeightedEdge>, u64, MpcRunStats) {
    assert!(graph.is_weighted(), "Borůvka needs a weighted graph");
    let n = graph.num_vertices();
    let machines = machines.max(1);
    let edges = graph.weighted_edges();
    let mut stats = MpcRunStats::default();

    let mut uf = UnionFind::new(n);
    let mut forest: Vec<WeightedEdge> = Vec::new();
    let mut total = 0u64;
    let mut superstep = 0usize;

    loop {
        // Each component scans its incident edges for the cheapest outgoing
        // one — in MPC this is one round of sort/aggregate over all edges.
        let mut best: Vec<Option<WeightedEdge>> = vec![None; n];
        let mut messages = 0u64;
        for e in &edges {
            let ru = uf.find(e.u) as usize;
            let rv = uf.find(e.v) as usize;
            if ru == rv {
                continue;
            }
            messages += 2;
            for &root in &[ru, rv] {
                let better = match best[root] {
                    None => true,
                    Some(cur) => (e.weight, e.id) < (cur.weight, cur.id),
                };
                if better {
                    best[root] = Some(*e);
                }
            }
        }

        let mut merged_any = false;
        for e in best.iter().copied().flatten() {
            if uf.union(e.u, e.v) {
                forest.push(e);
                total += e.weight;
                merged_any = true;
            }
        }

        stats.push(SuperstepStats {
            superstep,
            active_vertices: uf.num_components(),
            messages,
            max_messages_per_machine: messages.div_ceil(machines as u64),
        });
        superstep += 1;

        if !merged_any {
            break;
        }
    }

    (forest, total, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::{generators, sequential};

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..4 {
            let base = generators::connected_gnm(150, 400, seed);
            let g = generators::with_random_weights(&base, seed + 100);
            let (forest, total, _) = boruvka_msf(&g, 8);
            let (kruskal, kruskal_total) = sequential::kruskal_msf(&g);
            assert_eq!(total, kruskal_total, "seed {seed}");
            assert_eq!(forest.len(), kruskal.len());
        }
    }

    #[test]
    fn works_on_disconnected_graphs() {
        let base = generators::random_forest(100, 4, 7);
        let g = generators::with_random_weights(&base, 8);
        let (forest, total, _) = boruvka_msf(&g, 4);
        let (_, kruskal_total) = sequential::kruskal_msf(&g);
        assert_eq!(total, kruskal_total);
        assert_eq!(forest.len(), 96); // n - #components
    }

    #[test]
    fn round_count_is_logarithmic() {
        let base = generators::connected_gnm(4096, 12_000, 2);
        let g = generators::with_random_weights(&base, 3);
        let (_, _, stats) = boruvka_msf(&g, 16);
        // Components at least halve per round, so ≤ log2(n) + 1 productive
        // rounds plus the final empty round.
        assert!(stats.num_rounds() <= 14, "rounds = {}", stats.num_rounds());
        assert!(stats.num_rounds() >= 2);
    }

    #[test]
    fn single_edge_graph() {
        let g = Graph::from_weighted_edges(2, &[(0, 1, 5)]);
        let (forest, total, stats) = boruvka_msf(&g, 2);
        assert_eq!(forest.len(), 1);
        assert_eq!(total, 5);
        assert!(stats.num_rounds() >= 1);
    }

    #[test]
    #[should_panic(expected = "weighted")]
    fn unweighted_graph_rejected() {
        let g = generators::cycle(5);
        let _ = boruvka_msf(&g, 2);
    }
}

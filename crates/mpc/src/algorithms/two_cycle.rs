//! The 2-Cycle problem in MPC: `Θ(log n)` rounds via pointer doubling.
//!
//! The 2-Cycle conjecture (discussed in Section 1 of the paper) states that
//! distinguishing one `n`-cycle from two `n/2`-cycles requires `Ω(log n)` MPC
//! rounds with sublinear space per machine.  The matching upper bound is
//! pointer doubling: label every vertex with the minimum id of its component
//! in `O(log n)` rounds, then count distinct labels.  The AMPC algorithm of
//! Section 4 does the same job in `O(1/ε)` rounds — that gap is the
//! headline result the 2-Cycle benchmark reproduces.

use crate::algorithms::pointer_doubling::pointer_doubling_connectivity;
use crate::stats::MpcRunStats;
use ampc_graph::Graph;

/// Answer to a 2-Cycle instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TwoCycleAnswer {
    /// The graph is a single cycle.
    OneCycle,
    /// The graph consists of two cycles.
    TwoCycles,
}

/// Solve the 2-Cycle problem with the MPC pointer-doubling baseline.
///
/// # Panics
/// If the input is not a disjoint union of one or two cycles (every vertex
/// must have degree 2).
pub fn two_cycle_mpc(graph: &Graph, machines: usize) -> (TwoCycleAnswer, MpcRunStats) {
    assert!(
        (0..graph.num_vertices() as u32).all(|v| graph.degree(v) == 2),
        "2-Cycle instances must be disjoint unions of cycles"
    );
    let (labels, stats) = pointer_doubling_connectivity(graph, machines);
    let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
    let answer = match distinct.len() {
        1 => TwoCycleAnswer::OneCycle,
        2 => TwoCycleAnswer::TwoCycles,
        k => panic!("2-Cycle instance had {k} components"),
    };
    (answer, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::generators;

    #[test]
    fn distinguishes_one_cycle_from_two() {
        for seed in 0..3 {
            let one = generators::two_cycle_instance(256, false, seed);
            let two = generators::two_cycle_instance(256, true, seed);
            assert_eq!(two_cycle_mpc(&one, 8).0, TwoCycleAnswer::OneCycle);
            assert_eq!(two_cycle_mpc(&two, 8).0, TwoCycleAnswer::TwoCycles);
        }
    }

    #[test]
    fn needs_logarithmically_many_rounds() {
        let small = generators::two_cycle_instance(64, false, 1);
        let large = generators::two_cycle_instance(4096, false, 1);
        let (_, small_stats) = two_cycle_mpc(&small, 8);
        let (_, large_stats) = two_cycle_mpc(&large, 8);
        // Rounds grow with log n: the large instance needs strictly more.
        assert!(large_stats.num_rounds() > small_stats.num_rounds());
        assert!(
            large_stats.num_rounds() >= 5,
            "rounds = {}",
            large_stats.num_rounds()
        );
    }

    #[test]
    #[should_panic(expected = "disjoint unions of cycles")]
    fn rejects_non_cycle_inputs() {
        let g = generators::path(10);
        let _ = two_cycle_mpc(&g, 4);
    }
}

//! Statistics of an MPC (non-adaptive) execution.
//!
//! The MPC baselines are compared against the AMPC algorithms on *round
//! counts* — the paper's Figure 1 — so the statistics mirror the AMPC
//! [`ampc_runtime::RunStats`] shape: supersteps (rounds), total messages
//! and the largest per-machine message load.

use serde::{Deserialize, Serialize};

/// Statistics of one MPC superstep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperstepStats {
    /// Superstep index (0-based).
    pub superstep: usize,
    /// Vertices that executed in this superstep.
    pub active_vertices: usize,
    /// Messages produced in this superstep.
    pub messages: u64,
    /// Maximum messages received by any single machine in the *next*
    /// superstep (machine = `vertex % P`).
    pub max_messages_per_machine: u64,
}

/// Statistics of a whole MPC execution.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MpcRunStats {
    /// Per-superstep statistics.
    pub supersteps: Vec<SuperstepStats>,
}

impl MpcRunStats {
    /// Record a superstep.
    pub fn push(&mut self, stats: SuperstepStats) {
        self.supersteps.push(stats);
    }

    /// Number of supersteps (MPC rounds).
    pub fn num_rounds(&self) -> usize {
        self.supersteps.len()
    }

    /// Total messages over the run.
    pub fn total_messages(&self) -> u64 {
        self.supersteps.iter().map(|s| s.messages).sum()
    }

    /// Largest per-machine message load seen in any superstep.
    pub fn max_machine_load(&self) -> u64 {
        self.supersteps
            .iter()
            .map(|s| s.max_messages_per_machine)
            .max()
            .unwrap_or(0)
    }

    /// Append the rounds of another run (for algorithms with phases).
    pub fn absorb(&mut self, other: MpcRunStats) {
        let offset = self.supersteps.len();
        for (i, mut s) in other.supersteps.into_iter().enumerate() {
            s.superstep = offset + i;
            self.supersteps.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(messages: u64, max: u64) -> SuperstepStats {
        SuperstepStats {
            superstep: 0,
            active_vertices: 10,
            messages,
            max_messages_per_machine: max,
        }
    }

    #[test]
    fn aggregation() {
        let mut run = MpcRunStats::default();
        run.push(step(100, 10));
        run.push(step(50, 25));
        assert_eq!(run.num_rounds(), 2);
        assert_eq!(run.total_messages(), 150);
        assert_eq!(run.max_machine_load(), 25);
    }

    #[test]
    fn absorb_renumbers() {
        let mut a = MpcRunStats::default();
        a.push(step(1, 1));
        let mut b = MpcRunStats::default();
        b.push(step(2, 2));
        a.absorb(b);
        assert_eq!(a.num_rounds(), 2);
        assert_eq!(a.supersteps[1].superstep, 1);
    }

    #[test]
    fn empty_run() {
        let run = MpcRunStats::default();
        assert_eq!(run.num_rounds(), 0);
        assert_eq!(run.total_messages(), 0);
        assert_eq!(run.max_machine_load(), 0);
    }
}

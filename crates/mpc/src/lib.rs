//! # ampc-mpc — MPC model runtime and baseline algorithms
//!
//! The comparison column of the paper's Figure 1: a vertex-centric MPC
//! (Pregel-style) superstep executor ([`MpcRuntime`]) plus the standard MPC
//! graph algorithms the AMPC algorithms are measured against —
//! label-propagation connectivity (`O(D)` rounds), pointer-doubling
//! connectivity and list ranking (`O(log n)`), Luby's MIS (`O(log n)`),
//! Borůvka's MSF (`O(log n)`) and the pointer-doubling 2-Cycle solver
//! (`O(log n)`).
//!
//! The defining restriction of MPC relative to AMPC is that a machine's
//! communication within a round is fixed up front: it receives its inbox at
//! the start of the round and cannot issue further reads that depend on
//! what it finds there.  Every baseline here respects that restriction; the
//! round counts it forces are exactly what the benchmarks compare.

#![warn(missing_docs)]

pub mod algorithms;
pub mod runtime;
pub mod stats;

pub use algorithms::two_cycle::TwoCycleAnswer;
pub use algorithms::{
    boruvka_msf, label_propagation_connectivity, luby_mis, pointer_doubling_connectivity,
    two_cycle_mpc, wyllie_list_ranking,
};
pub use runtime::{MpcRuntime, VertexProgram};
pub use stats::{MpcRunStats, SuperstepStats};

//! The four lint passes.  Each exposes `NAME` and `run(&Workspace)`; the
//! registry lives in [`crate::run_pass`].

pub mod blocking;
pub mod const_consistency;
pub mod panic_path;
pub mod proto_conformance;

//! **blocking-discipline** — the serve path must never stall on a timer or
//! an unbounded read.
//!
//! The owner dispatch and serve loops are the latency floor of every
//! backend: a `thread::sleep` there turns into per-request tail latency,
//! and an unbounded `read_to_end` lets a peer pin a thread forever.  Both
//! are forbidden in the transport/serve files except in *annotated backoff
//! regions*:
//!
//! ```text
//! // lint: allow(blocking) — <why this wait is bounded and off the hot path>
//! ```

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::workspace::Workspace;

pub const NAME: &str = "blocking-discipline";
const KEY: &str = "blocking";

/// The owner dispatch/serve loops.  `remote.rs` spawns owners but never
/// loops on a socket; the client session and the server serve path do.
const SCANNED: [&str; 3] = [
    "crates/dds/src/transport/dispatch.rs",
    "crates/dds/src/transport/session.rs",
    "crates/dds/src/serve.rs",
];

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for rel in SCANNED {
        if let Some(sf) = ws.file(rel) {
            scan_file(sf, &mut diags);
        }
    }
    diags
}

fn scan_file(sf: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for line in 1..=sf.line_count() {
        if sf.is_test_line(line) {
            continue;
        }
        let text = sf.code_line(line);
        let Some(what) = blocking_site(text) else {
            continue;
        };
        match sf.allow_for(line, KEY) {
            Some(allow) if allow.justified => {}
            Some(allow) => diags.push(Diagnostic::new(
                NAME,
                &sf.rel,
                allow.at,
                format!("`lint: allow(blocking)` for `{what}` is missing its justification — write `// lint: allow(blocking) — <reason>`"),
            )),
            None => diags.push(Diagnostic::new(
                NAME,
                &sf.rel,
                line,
                format!("`{what}` inside the dispatch/serve path — restructure, or justify the bounded wait with `// lint: allow(blocking) — <reason>`"),
            )),
        }
    }
}

fn blocking_site(line: &str) -> Option<&'static str> {
    if line.contains("thread::sleep") {
        return Some("thread::sleep");
    }
    if line.contains(".read_to_end") {
        return Some("read_to_end");
    }
    if line.contains(".read_to_string") {
        return Some("read_to_string");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_blocking_sites() {
        assert_eq!(
            blocking_site("std::thread::sleep(d);"),
            Some("thread::sleep")
        );
        assert_eq!(
            blocking_site("thread::sleep(backoff);"),
            Some("thread::sleep")
        );
        assert_eq!(
            blocking_site("stream.read_to_end(&mut buf)?;"),
            Some("read_to_end")
        );
        assert_eq!(blocking_site("reader.read_exact(&mut buf)?;"), None);
        assert_eq!(blocking_site("let sleepy = 3;"), None);
    }
}

//! **proto-conformance** — the wire protocol's cross-file closure property.
//!
//! A protocol message is only *done* when four files agree: the variant in
//! `proto.rs`, a wire tag paired across encode and decode, a dispatch arm
//! in `transport/dispatch.rs`, and a replay classification in the
//! `REPLAY_POLICY` table (the PR 5/6 idempotent-replay guarantee says every
//! request must be safe to replay — so every request must *declare* why).
//! This pass fails the build when any leg is missing:
//!
//! * a `Request` variant with no `Request::X` match arm in `Worker::handle`;
//! * a wire tag duplicated within the request or reply codec, or declared
//!   but not used by both the encoder and the decoder of its direction;
//! * a `Request` variant without exactly one `REPLAY_POLICY` entry, or an
//!   entry naming an unknown variant or policy;
//! * `RequestKind` drifting from `Request` (the fault-injection keyspace).

use crate::diag::Diagnostic;
use crate::parse;
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet};

pub const NAME: &str = "proto-conformance";

const PROTO: &str = "crates/dds/src/proto.rs";
const DISPATCH: &str = "crates/dds/src/transport/dispatch.rs";

const POLICIES: [&str; 3] = ["Idempotent", "Deduped", "Pure"];

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Some(proto) = ws.file(PROTO) else {
        diags.push(Diagnostic::new(
            NAME,
            PROTO,
            0,
            "file not found — the protocol definition moved without updating ampc-lint",
        ));
        return diags;
    };

    let Some(req_variants) = parse::enum_variants(proto, "Request") else {
        diags.push(Diagnostic::new(NAME, PROTO, 0, "no `enum Request` found"));
        return diags;
    };
    let reply_variants = parse::enum_variants(proto, "Reply").unwrap_or_else(|| {
        diags.push(Diagnostic::new(NAME, PROTO, 0, "no `enum Reply` found"));
        Vec::new()
    });
    let kind_variants = parse::enum_variants(proto, "RequestKind").unwrap_or_default();

    check_tags(proto, &req_variants, &mut diags);
    check_dispatch(ws, &req_variants, &mut diags);
    check_replay_policy(proto, &req_variants, &mut diags);
    check_kind_mirror(&req_variants, &kind_variants, &mut diags);
    let _ = reply_variants; // reply-side coverage is the tag pairing above

    diags
}

/// Wire-tag discipline: every `TAG_*` const must belong to exactly one
/// direction (request or reply), be used by both that direction's encoder
/// and decoder, and carry a value unique within its direction.  Request
/// variants additionally map to their tag by naming convention
/// (`FreezeEpoch` → `TAG_FREEZE_EPOCH`), so a new variant cannot ship
/// without declaring a tag.
fn check_tags(
    proto: &crate::source::SourceFile,
    req_variants: &[(String, usize)],
    diags: &mut Vec<Diagnostic>,
) {
    let tags: Vec<parse::ConstDecl> = parse::const_decls(proto)
        .into_iter()
        .filter(|c| c.name.starts_with("TAG_"))
        .collect();

    let spans = [
        (
            "encode_request_into",
            parse::fn_body_span(proto, "encode_request_into"),
        ),
        (
            "decode_request",
            parse::fn_body_span(proto, "decode_request"),
        ),
        (
            "encode_reply_into",
            parse::fn_body_span(proto, "encode_reply_into"),
        ),
        ("decode_reply", parse::fn_body_span(proto, "decode_reply")),
    ];
    let mut used: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for (fn_name, span) in &spans {
        let Some(span) = span else {
            diags.push(Diagnostic::new(
                NAME,
                PROTO,
                0,
                format!("codec function `{fn_name}` not found"),
            ));
            continue;
        };
        let slice = &proto.code[span.0..span.1];
        let set = tags
            .iter()
            .filter(|t| crate::source::contains_word(slice, &t.name))
            .map(|t| t.name.clone())
            .collect();
        used.insert(*fn_name, set);
    }
    let empty = BTreeSet::new();
    let enc_req = used.get("encode_request_into").unwrap_or(&empty);
    let dec_req = used.get("decode_request").unwrap_or(&empty);
    let enc_rep = used.get("encode_reply_into").unwrap_or(&empty);
    let dec_rep = used.get("decode_reply").unwrap_or(&empty);

    let mut req_values: BTreeMap<u128, &str> = BTreeMap::new();
    let mut reply_values: BTreeMap<u128, &str> = BTreeMap::new();
    for tag in &tags {
        let in_req = enc_req.contains(&tag.name) || dec_req.contains(&tag.name);
        let in_rep = enc_rep.contains(&tag.name) || dec_rep.contains(&tag.name);
        match (in_req, in_rep) {
            (true, true) => diags.push(Diagnostic::new(
                NAME,
                PROTO,
                tag.line,
                format!(
                    "wire tag `{}` is used by both the request and reply codecs",
                    tag.name
                ),
            )),
            (false, false) => diags.push(Diagnostic::new(
                NAME,
                PROTO,
                tag.line,
                format!(
                    "unpaired wire tag `{}`: declared but used by no codec function",
                    tag.name
                ),
            )),
            (true, false) => {
                for (side, set) in [
                    ("encode_request_into", enc_req),
                    ("decode_request", dec_req),
                ] {
                    if !set.contains(&tag.name) {
                        diags.push(Diagnostic::new(
                            NAME,
                            PROTO,
                            tag.line,
                            format!("unpaired wire tag `{}`: missing from `{side}`", tag.name),
                        ));
                    }
                }
                record_value(&mut req_values, tag, "request", diags);
            }
            (false, true) => {
                for (side, set) in [("encode_reply_into", enc_rep), ("decode_reply", dec_rep)] {
                    if !set.contains(&tag.name) {
                        diags.push(Diagnostic::new(
                            NAME,
                            PROTO,
                            tag.line,
                            format!("unpaired wire tag `{}`: missing from `{side}`", tag.name),
                        ));
                    }
                }
                record_value(&mut reply_values, tag, "reply", diags);
            }
        }
    }

    // Variant → tag naming convention (request direction only; reply tags
    // disambiguate with a `_REPLY` suffix and are covered by pairing).
    for (variant, line) in req_variants {
        let expected = format!("TAG_{}", parse::camel_to_upper_snake(variant));
        if !tags.iter().any(|t| t.name == expected) {
            diags.push(Diagnostic::new(
                NAME,
                PROTO,
                *line,
                format!("Request::{variant} has no wire tag const `{expected}`"),
            ));
        }
    }
}

fn record_value<'a>(
    seen: &mut BTreeMap<u128, &'a str>,
    tag: &'a parse::ConstDecl,
    direction: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(value) = tag.value else {
        diags.push(Diagnostic::new(
            NAME,
            PROTO,
            tag.line,
            format!(
                "wire tag `{}` has a non-literal value ampc-lint cannot check",
                tag.name
            ),
        ));
        return;
    };
    if let Some(previous) = seen.insert(value, &tag.name) {
        diags.push(Diagnostic::new(
            NAME,
            PROTO,
            tag.line,
            format!(
                "duplicate {direction} wire tag value {value}: `{}` collides with `{previous}`",
                tag.name
            ),
        ));
    }
}

/// Every `Request` variant must have a `Request::X` match arm in the owner
/// dispatch (`Worker::handle`).  Lifecycle variants consumed by the session
/// layer still appear there — in the arm that rejects them loudly.
fn check_dispatch(ws: &Workspace, req_variants: &[(String, usize)], diags: &mut Vec<Diagnostic>) {
    let Some(dispatch) = ws.file(DISPATCH) else {
        diags.push(Diagnostic::new(
            NAME,
            DISPATCH,
            0,
            "file not found — the dispatch layer moved without updating ampc-lint",
        ));
        return;
    };
    let Some(span) = parse::fn_body_span(dispatch, "handle") else {
        diags.push(Diagnostic::new(
            NAME,
            DISPATCH,
            0,
            "no `fn handle` found in the dispatch worker",
        ));
        return;
    };
    let handled: BTreeSet<String> = parse::path_refs(dispatch, span, "Request")
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    for (variant, line) in req_variants {
        if !handled.contains(variant) {
            diags.push(Diagnostic::new(
                NAME,
                DISPATCH,
                0,
                format!(
                    "Request::{variant} (declared at {PROTO}:{line}) has no match arm in `Worker::handle`"
                ),
            ));
        }
    }
}

/// Every `Request` variant needs exactly one `REPLAY_POLICY` entry naming a
/// valid policy; entries must not name unknown variants.
fn check_replay_policy(
    proto: &crate::source::SourceFile,
    req_variants: &[(String, usize)],
    diags: &mut Vec<Diagnostic>,
) {
    let Some(entries) = parse::replay_policy(proto) else {
        diags.push(Diagnostic::new(
            NAME,
            PROTO,
            0,
            "no REPLAY_POLICY table found — every request must declare its replay classification",
        ));
        return;
    };
    let variants: BTreeSet<&str> = req_variants.iter().map(|(n, _)| n.as_str()).collect();
    let mut classified: BTreeMap<&str, usize> = BTreeMap::new();
    for (variant, policy, line) in &entries {
        if !variants.contains(variant.as_str()) {
            diags.push(Diagnostic::new(
                NAME,
                PROTO,
                *line,
                format!("REPLAY_POLICY entry names unknown request variant `{variant}`"),
            ));
            continue;
        }
        if !POLICIES.contains(&policy.as_str()) {
            diags.push(Diagnostic::new(
                NAME,
                PROTO,
                *line,
                format!(
                    "REPLAY_POLICY entry for `{variant}` has malformed policy `{policy}` (expected one of {POLICIES:?})"
                ),
            ));
        }
        if let Some(first) = classified.insert(variant.as_str(), *line) {
            diags.push(Diagnostic::new(
                NAME,
                PROTO,
                *line,
                format!("duplicate REPLAY_POLICY entry for `{variant}` (first at line {first})"),
            ));
        }
    }
    for (variant, line) in req_variants {
        if !classified.contains_key(variant.as_str()) {
            diags.push(Diagnostic::new(
                NAME,
                PROTO,
                *line,
                format!(
                    "Request::{variant} missing from REPLAY_POLICY — classify it (idempotent | deduped | pure)"
                ),
            ));
        }
    }
}

/// `RequestKind` (the fault-injection keyspace) must mirror `Request`.
fn check_kind_mirror(
    req_variants: &[(String, usize)],
    kind_variants: &[(String, usize)],
    diags: &mut Vec<Diagnostic>,
) {
    if kind_variants.is_empty() {
        return; // fixtures without RequestKind exercise other checks
    }
    let kinds: BTreeSet<&str> = kind_variants.iter().map(|(n, _)| n.as_str()).collect();
    let reqs: BTreeSet<&str> = req_variants.iter().map(|(n, _)| n.as_str()).collect();
    for (variant, line) in req_variants {
        if !kinds.contains(variant.as_str()) {
            diags.push(Diagnostic::new(
                NAME,
                PROTO,
                *line,
                format!("Request::{variant} has no RequestKind mirror variant"),
            ));
        }
    }
    for (variant, line) in kind_variants {
        if !reqs.contains(variant.as_str()) {
            diags.push(Diagnostic::new(
                NAME,
                PROTO,
                *line,
                format!("RequestKind::{variant} names no Request variant"),
            ));
        }
    }
}

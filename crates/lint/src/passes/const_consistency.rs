//! **const-consistency** — numeric invariants that span files.
//!
//! Three relationships hold the transport together and nothing but
//! convention kept them aligned:
//!
//! * `COMMIT_REPLAY_WINDOW` (dispatch) must be ≥ 2 × `PIPELINE_DEPTH` and
//!   ≥ `MAX_PIPELINE` (session): a reconnect replays up to a full pipeline
//!   of outstanding commits, and the dedup window must still recognize all
//!   of them *plus* the new traffic pipelined behind the replay.
//! * the frame-size cap must be the same number in `proto.rs`
//!   (`MAX_FRAME_BYTES`, rejects oversized frames) and
//!   `transport/codec.rs` (`MAX_RETAINED_FRAME_BYTES`, stops the frame
//!   pool from pinning buffers no legal frame can need).
//! * `MAX_CLUSTER_OWNERS` (ampc config) must equal the monomorphized
//!   `cluster_backend_arm!` arm count in `runtime.rs` — the arms are
//!   written out by hand, so a bumped constant without new arms would
//!   panic at run time on a count the config layer accepts.

use crate::diag::Diagnostic;
use crate::parse;
use crate::source::SourceFile;
use crate::workspace::Workspace;

pub const NAME: &str = "const-consistency";

const DISPATCH: &str = "crates/dds/src/transport/dispatch.rs";
const SESSION: &str = "crates/dds/src/transport/session.rs";
const PROTO: &str = "crates/dds/src/proto.rs";
const TCODEC: &str = "crates/dds/src/transport/codec.rs";
const CONFIG: &str = "crates/ampc/src/config.rs";
const RUNTIME: &str = "crates/ampc/src/runtime.rs";

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    let window = anchor(ws, DISPATCH, "COMMIT_REPLAY_WINDOW", &mut diags);
    let depth = anchor(ws, SESSION, "PIPELINE_DEPTH", &mut diags);
    let max_pipeline = anchor(ws, SESSION, "MAX_PIPELINE", &mut diags);
    if let (Some((window, line)), Some((depth, _))) = (window, depth) {
        if window < 2 * depth {
            diags.push(Diagnostic::new(
                NAME,
                DISPATCH,
                line,
                format!(
                    "COMMIT_REPLAY_WINDOW ({window}) < 2 × PIPELINE_DEPTH ({depth}): a reconnect replaying a full pipeline could fall outside the dedup window and double-apply commits"
                ),
            ));
        }
    }
    if let (Some((window, _)), Some((max_pipeline, line))) = (window, max_pipeline) {
        if max_pipeline > window {
            diags.push(Diagnostic::new(
                NAME,
                SESSION,
                line,
                format!(
                    "MAX_PIPELINE ({max_pipeline}) > COMMIT_REPLAY_WINDOW ({window}): the deepest legal pipeline outruns commit deduplication"
                ),
            ));
        }
    }

    let frame_cap = anchor(ws, PROTO, "MAX_FRAME_BYTES", &mut diags);
    let retain_cap = anchor(ws, TCODEC, "MAX_RETAINED_FRAME_BYTES", &mut diags);
    if let (Some((frame, _)), Some((retain, line))) = (frame_cap, retain_cap) {
        if frame != retain {
            diags.push(Diagnostic::new(
                NAME,
                TCODEC,
                line,
                format!(
                    "MAX_RETAINED_FRAME_BYTES ({retain}) != proto::MAX_FRAME_BYTES ({frame}): the frame pool's retention cap must equal the legal frame cap"
                ),
            ));
        }
    }

    check_cluster_arms(ws, &mut diags);
    diags
}

fn anchor(
    ws: &Workspace,
    file: &'static str,
    name: &str,
    diags: &mut Vec<Diagnostic>,
) -> Option<(u128, usize)> {
    let Some(sf) = ws.file(file) else {
        diags.push(Diagnostic::new(
            NAME,
            file,
            0,
            format!("file not found — anchor const `{name}` unreachable"),
        ));
        return None;
    };
    let found = parse::const_value(sf, name);
    if found.is_none() {
        diags.push(Diagnostic::new(
            NAME,
            file,
            0,
            format!("anchor const `{name}` not found or not a literal expression"),
        ));
    }
    found
}

/// `MAX_CLUSTER_OWNERS` vs. the hand-written `N => cluster_backend_arm!(N, …)`
/// arms: contiguous from 1, self-consistent, and exactly as many as the
/// config layer admits.
fn check_cluster_arms(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    let max_owners = anchor(ws, CONFIG, "MAX_CLUSTER_OWNERS", diags);
    let Some(runtime) = ws.file(RUNTIME) else {
        diags.push(Diagnostic::new(
            NAME,
            RUNTIME,
            0,
            "file not found — cluster_backend_arm! arms unreachable",
        ));
        return;
    };
    let arms = cluster_arms(runtime);
    for arm in &arms {
        if arm.pattern != arm.argument {
            diags.push(Diagnostic::new(
                NAME,
                RUNTIME,
                arm.line,
                format!(
                    "cluster arm pattern {} instantiates cluster_backend_arm!({}) — owner counts disagree",
                    arm.pattern, arm.argument
                ),
            ));
        }
    }
    let Some((max_owners, max_line)) = max_owners else {
        return;
    };
    let mut patterns: Vec<u128> = arms.iter().map(|a| a.pattern).collect();
    patterns.sort_unstable();
    patterns.dedup();
    let expected: Vec<u128> = (1..=max_owners).collect();
    if patterns != expected {
        let line = arms.first().map_or(0, |a| a.line);
        diags.push(Diagnostic::new(
            NAME,
            RUNTIME,
            line,
            format!(
                "cluster_backend_arm! arms cover owner counts {patterns:?} but MAX_CLUSTER_OWNERS at {CONFIG}:{max_line} is {max_owners} (need exactly 1..={max_owners})"
            ),
        ));
    }
}

struct ClusterArm {
    pattern: u128,
    argument: u128,
    line: usize,
}

/// Match-arm lines of the form `N => …cluster_backend_arm!(M, …)`.  The
/// macro definition itself has no integer-literal pattern prefix, so only
/// the dispatch arms match.
fn cluster_arms(sf: &SourceFile) -> Vec<ClusterArm> {
    let mut arms = Vec::new();
    for line in 1..=sf.line_count() {
        let text = sf.code_line(line);
        let Some(mac) = text.find("cluster_backend_arm!") else {
            continue;
        };
        let trimmed = text.trim_start();
        let digits: String = trimmed.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() || !trimmed[digits.len()..].trim_start().starts_with("=>") {
            continue;
        }
        let Ok(pattern) = digits.parse::<u128>() else {
            continue;
        };
        let after = &text[mac + "cluster_backend_arm!".len()..];
        let Some(open) = after.find('(') else {
            continue;
        };
        let arg_digits: String = after[open + 1..]
            .trim_start()
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        let Ok(argument) = arg_digits.parse::<u128>() else {
            continue;
        };
        arms.push(ClusterArm {
            pattern,
            argument,
            line,
        });
    }
    arms
}

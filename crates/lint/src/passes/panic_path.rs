//! **panic-path** — no unexplained aborts on production paths.
//!
//! `crates/dds` and `crates/ampc` promise typed errors at every boundary a
//! caller can reach ([`TransportError`]/`AmpcError`); a stray `unwrap()` in
//! a serve loop converts a malformed frame into a dead owner.  This pass
//! forbids `unwrap()` / `expect(` / `panic!` / `unimplemented!` / `todo!`
//! outside `#[cfg(test)]` items unless the line carries a justification:
//!
//! ```text
//! // lint: allow(panic) — <why this cannot fire / why dying is correct>
//! ```
//!
//! An annotation without a reason is itself a finding: the justification is
//! the point.

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::workspace::Workspace;

pub const NAME: &str = "panic-path";
const KEY: &str = "panic";

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for sf in ws.files() {
        scan_file(sf, &mut diags);
    }
    diags
}

fn scan_file(sf: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for line in 1..=sf.line_count() {
        if sf.is_test_line(line) {
            continue;
        }
        let text = sf.code_line(line);
        let Some(what) = panic_site(text) else {
            continue;
        };
        match sf.allow_for(line, KEY) {
            Some(allow) if allow.justified => {}
            Some(allow) => diags.push(Diagnostic::new(
                NAME,
                &sf.rel,
                allow.at,
                format!("`lint: allow(panic)` for `{what}` is missing its justification — write `// lint: allow(panic) — <reason>`"),
            )),
            None => diags.push(Diagnostic::new(
                NAME,
                &sf.rel,
                line,
                format!("production path calls `{what}` — return a typed error, gate the item `#[cfg(test)]`, or justify with `// lint: allow(panic) — <reason>`"),
            )),
        }
    }
}

/// The first forbidden panic site on a blanked code line, if any.
fn panic_site(line: &str) -> Option<&'static str> {
    if method_call(line, "unwrap") {
        return Some("unwrap()");
    }
    if method_call(line, "expect") {
        return Some("expect()");
    }
    for mac in ["panic", "unimplemented", "todo"] {
        if macro_call(line, mac) {
            return Some(match mac {
                "panic" => "panic!",
                "unimplemented" => "unimplemented!",
                _ => "todo!",
            });
        }
    }
    None
}

/// `.name(` with nothing identifier-like after `name` (so `unwrap_or`,
/// `expect_err` never match).
fn method_call(line: &str, name: &str) -> bool {
    let b = line.as_bytes();
    let mut at = 0usize;
    while let Some(pos) = line.get(at..).and_then(|s| s.find(name)) {
        let start = at + pos;
        let end = start + name.len();
        at = start + 1;
        if start == 0 || b[start - 1] != b'.' {
            continue;
        }
        if b.get(end).is_some_and(|&c| crate::source::is_ident_byte(c)) {
            continue;
        }
        let mut k = end;
        while k < b.len() && (b[k] as char).is_whitespace() {
            k += 1;
        }
        if b.get(k) == Some(&b'(') {
            return true;
        }
    }
    false
}

/// Word-boundary `name` followed by `!` (then not `=`, so `panic != x`
/// never matches — not that it parses anyway).
fn macro_call(line: &str, name: &str) -> bool {
    let b = line.as_bytes();
    let mut at = 0usize;
    while let Some(start) = crate::source::find_word(line, name, at) {
        let end = start + name.len();
        at = end;
        let mut k = end;
        while k < b.len() && (b[k] as char).is_whitespace() {
            k += 1;
        }
        if b.get(k) == Some(&b'!') && b.get(k + 1) != Some(&b'=') {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_panic_sites_precisely() {
        assert_eq!(panic_site("let x = y.unwrap();"), Some("unwrap()"));
        assert_eq!(panic_site("let x = y.expect(  );"), Some("expect()"));
        assert_eq!(panic_site("panic!(\"\")"), Some("panic!"));
        assert_eq!(panic_site("todo!()"), Some("todo!"));
        assert_eq!(panic_site("y.unwrap_or(0)"), None);
        assert_eq!(panic_site("y.unwrap_or_else(f)"), None);
        assert_eq!(panic_site("y.expect_err(\"\")"), None);
        assert_eq!(panic_site("let unwrap = 3;"), None);
        assert_eq!(panic_site("fn expect(x: u8) {}"), None);
        assert_eq!(panic_site("if panic != mode {}"), None);
    }
}

//! # ampc-lint — workspace-native static analysis
//!
//! The correctness story of this workspace rests on invariants no compiler
//! checks: every `proto::Request` variant needs a dispatch handler *and* a
//! declared replay policy (the idempotent-replay guarantee), wire tags must
//! stay bijective per direction, cluster constants must agree across
//! crates, and production paths must not panic.  With no registry
//! available, the analyzer is built in-tree — a hand-rolled lexer and
//! item-parser (no `syn`), the same philosophy as `crates/compat/` — and
//! run as `cargo run -p ampc-lint` locally and in CI.
//!
//! Four passes:
//!
//! | pass | invariant |
//! |---|---|
//! | [`passes::proto_conformance`] | protocol closure: variant ⇄ tag ⇄ dispatch arm ⇄ `REPLAY_POLICY` entry |
//! | [`passes::panic_path`] | no `unwrap`/`expect`/`panic!`/`unimplemented!`/`todo!` outside `#[cfg(test)]`, allowlist requires a reason |
//! | [`passes::const_consistency`] | dedup window ≥ 2×pipeline depth, frame caps identical across files, cluster arms = `MAX_CLUSTER_OWNERS` |
//! | [`passes::blocking`] | no sleeps/unbounded reads in dispatch/serve loops outside annotated backoff |
//!
//! Findings print as `file:line: [pass] message`; any finding is a nonzero
//! exit, which is the CI gate.

pub mod diag;
pub mod parse;
pub mod passes;
pub mod source;
pub mod workspace;

pub use diag::Diagnostic;
pub use workspace::Workspace;

use std::path::Path;

/// Names of all passes, in execution order.
pub const PASS_NAMES: [&str; 4] = [
    passes::proto_conformance::NAME,
    passes::panic_path::NAME,
    passes::const_consistency::NAME,
    passes::blocking::NAME,
];

/// Run the pass called `name` over a loaded workspace.  `None` for an
/// unknown name.
pub fn run_pass(name: &str, ws: &Workspace) -> Option<Vec<Diagnostic>> {
    let mut diags = match name {
        passes::proto_conformance::NAME => passes::proto_conformance::run(ws),
        passes::panic_path::NAME => passes::panic_path::run(ws),
        passes::const_consistency::NAME => passes::const_consistency::run(ws),
        passes::blocking::NAME => passes::blocking::run(ws),
        _ => return None,
    };
    diags.sort();
    Some(diags)
}

/// Run every pass over the workspace rooted at `root`.
pub fn run_all(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let ws = Workspace::load(root)?;
    let mut diags = Vec::new();
    for name in PASS_NAMES {
        diags.extend(run_pass(name, &ws).into_iter().flatten());
    }
    Ok(diags)
}

//! `ampc-lint` — run the workspace static-analysis passes.
//!
//! ```text
//! cargo run -p ampc-lint                  # all passes, auto-detected root
//! cargo run -p ampc-lint -- --pass panic-path
//! cargo run -p ampc-lint -- --root /path/to/checkout
//! ```
//!
//! Exit status: 0 when clean, 1 on any finding, 2 on usage/setup errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage("--root needs a path"),
            },
            "--pass" => match args.next() {
                Some(name) => selected.push(name),
                None => return usage("--pass needs a pass name"),
            },
            "--list" => {
                for name in ampc_lint::PASS_NAMES {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(detect_root) {
        Some(root) => root,
        None => {
            eprintln!(
                "ampc-lint: no workspace root found (run from inside the checkout or pass --root)"
            );
            return ExitCode::from(2);
        }
    };
    let ws = match ampc_lint::Workspace::load(&root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!("ampc-lint: failed to load {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    let passes: Vec<String> = if selected.is_empty() {
        ampc_lint::PASS_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        selected
    };

    let mut findings = 0usize;
    for name in &passes {
        let Some(diags) = ampc_lint::run_pass(name, &ws) else {
            return usage(&format!(
                "unknown pass `{name}` (one of: {})",
                ampc_lint::PASS_NAMES.join(", ")
            ));
        };
        findings += diags.len();
        for diag in diags {
            println!("{diag}");
        }
    }

    if findings == 0 {
        eprintln!(
            "ampc-lint: {} pass(es) clean on {}",
            passes.len(),
            root.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("ampc-lint: {findings} finding(s)");
        ExitCode::FAILURE
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("ampc-lint: {message}");
    eprintln!("usage: ampc-lint [--root PATH] [--pass NAME]... [--list]");
    ExitCode::from(2)
}

/// Walk up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]`.
fn detect_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|text| text.contains("[workspace]"))
        .unwrap_or(false)
}

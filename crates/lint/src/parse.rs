//! Item-level recovery on blanked source: enums and their variants, const
//! integer values (with a small const-expression evaluator), function body
//! spans, `Path::Variant` references, and the `REPLAY_POLICY` table.
//!
//! Everything here operates on [`SourceFile::code`] — comments and literal
//! contents are already spaces, so plain substring scans are token scans.

use crate::source::{find_word, is_ident_byte, match_delim, SourceFile};

/// Read the identifier starting at `b[at]`, if any.
fn ident_at(b: &[u8], at: usize) -> Option<&str> {
    if at >= b.len() || !(b[at].is_ascii_alphabetic() || b[at] == b'_') {
        return None;
    }
    let mut end = at;
    while end < b.len() && is_ident_byte(b[end]) {
        end += 1;
    }
    std::str::from_utf8(&b[at..end]).ok()
}

fn skip_ws(b: &[u8], mut at: usize) -> usize {
    while at < b.len() && (b[at] as char).is_whitespace() {
        at += 1;
    }
    at
}

/// Variants of `enum <name>`: `(variant, line)` in declaration order.
pub fn enum_variants(sf: &SourceFile, name: &str) -> Option<Vec<(String, usize)>> {
    let code = &sf.code;
    let b = code.as_bytes();
    let mut at = 0usize;
    let body_open = loop {
        let kw = find_word(code, "enum", at)?;
        let ident_start = skip_ws(b, kw + 4);
        if ident_at(b, ident_start) == Some(name) {
            let open = code[ident_start..].find('{')? + ident_start;
            break open;
        }
        at = kw + 4;
    };
    let close = match_delim(b, body_open, b'{', b'}')?;
    let mut variants = Vec::new();
    let mut i = body_open + 1;
    while i < close {
        i = skip_ws(b, i);
        if i >= close {
            break;
        }
        // Skip variant attributes.
        if b[i] == b'#' {
            let open = skip_ws(b, i + 1);
            if b.get(open) == Some(&b'[') {
                i = match_delim(b, open, b'[', b']')? + 1;
                continue;
            }
        }
        let Some(ident) = ident_at(b, i) else {
            i += 1;
            continue;
        };
        variants.push((ident.to_string(), sf.line_of(i)));
        i += ident.len();
        // Skip the variant payload/discriminant to the next top-level comma.
        let mut depth = 0isize;
        while i < close {
            match b[i] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b',' if depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Some(variants)
}

/// A `const <name>: <ty> = <expr>;` declaration.
pub struct ConstDecl {
    pub name: String,
    /// Evaluated value, when the initializer is a literal expression.
    pub value: Option<u128>,
    pub line: usize,
}

/// All const declarations in the file (any visibility, module level or
/// associated).
pub fn const_decls(sf: &SourceFile) -> Vec<ConstDecl> {
    let code = &sf.code;
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut at = 0usize;
    while let Some(kw) = find_word(code, "const", at) {
        at = kw + 5;
        let ident_start = skip_ws(b, at);
        let Some(name) = ident_at(b, ident_start) else {
            continue; // `*const T`, `const fn`, `const _` etc.
        };
        if name == "fn" {
            continue;
        }
        let Some(eq_rel) = code[ident_start..].find('=') else {
            continue;
        };
        let expr_start = ident_start + eq_rel + 1;
        let Some(semi_rel) = code[expr_start..].find(';') else {
            continue;
        };
        let expr = &code[expr_start..expr_start + semi_rel];
        out.push(ConstDecl {
            name: name.to_string(),
            value: eval_const(expr),
            line: sf.line_of(kw),
        });
    }
    out
}

/// The const named `name`, with an evaluated integer value.
pub fn const_value(sf: &SourceFile, name: &str) -> Option<(u128, usize)> {
    const_decls(sf)
        .into_iter()
        .find(|c| c.name == name)
        .and_then(|c| c.value.map(|v| (v, c.line)))
}

// ---------------------------------------------------------------------------
// Const-expression evaluation: integers, `_` separators, type suffixes,
// parens, `<< >> * / + -`.
// ---------------------------------------------------------------------------

/// Evaluate a literal integer expression; `None` when it references
/// identifiers or uses unsupported syntax.
pub fn eval_const(expr: &str) -> Option<u128> {
    let tokens = tokenize(expr)?;
    let mut pos = 0usize;
    let value = parse_shift(&tokens, &mut pos)?;
    if pos == tokens.len() {
        Some(value)
    } else {
        None
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Num(u128),
    Op(char),
    Shl,
    Shr,
    LParen,
    RParen,
}

fn tokenize(expr: &str) -> Option<Vec<Tok>> {
    let b = expr.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if (c as char).is_whitespace() {
            i += 1;
        } else if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            toks.push(Tok::Num(parse_int(&expr[start..i])?));
        } else if c == b'<' && b.get(i + 1) == Some(&b'<') {
            toks.push(Tok::Shl);
            i += 2;
        } else if c == b'>' && b.get(i + 1) == Some(&b'>') {
            toks.push(Tok::Shr);
            i += 2;
        } else if matches!(c, b'*' | b'/' | b'+' | b'-') {
            toks.push(Tok::Op(c as char));
            i += 1;
        } else if c == b'(' {
            toks.push(Tok::LParen);
            i += 1;
        } else if c == b')' {
            toks.push(Tok::RParen);
            i += 1;
        } else {
            return None;
        }
    }
    Some(toks)
}

fn parse_int(text: &str) -> Option<u128> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = if let Some(rest) = clean.strip_prefix("0x") {
        (16, rest)
    } else if let Some(rest) = clean.strip_prefix("0b") {
        (2, rest)
    } else if let Some(rest) = clean.strip_prefix("0o") {
        (8, rest)
    } else {
        (10, clean.as_str())
    };
    // A type suffix (`128usize`, `0xFFu8`) starts at the first non-digit.
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u128::from_str_radix(&digits[..end], radix).ok()
}

fn parse_shift(toks: &[Tok], pos: &mut usize) -> Option<u128> {
    let mut left = parse_add(toks, pos)?;
    while let Some(op) = toks.get(*pos) {
        match op {
            Tok::Shl => {
                *pos += 1;
                left = left.checked_shl(parse_add(toks, pos)?.try_into().ok()?)?;
            }
            Tok::Shr => {
                *pos += 1;
                left = left.checked_shr(parse_add(toks, pos)?.try_into().ok()?)?;
            }
            _ => break,
        }
    }
    Some(left)
}

fn parse_add(toks: &[Tok], pos: &mut usize) -> Option<u128> {
    let mut left = parse_mul(toks, pos)?;
    while let Some(&Tok::Op(op)) = toks.get(*pos) {
        if op != '+' && op != '-' {
            break;
        }
        *pos += 1;
        let right = parse_mul(toks, pos)?;
        left = if op == '+' {
            left.checked_add(right)?
        } else {
            left.checked_sub(right)?
        };
    }
    Some(left)
}

fn parse_mul(toks: &[Tok], pos: &mut usize) -> Option<u128> {
    let mut left = parse_atom(toks, pos)?;
    while let Some(&Tok::Op(op)) = toks.get(*pos) {
        if op != '*' && op != '/' {
            break;
        }
        *pos += 1;
        let right = parse_atom(toks, pos)?;
        left = if op == '*' {
            left.checked_mul(right)?
        } else {
            left.checked_div(right)?
        };
    }
    Some(left)
}

fn parse_atom(toks: &[Tok], pos: &mut usize) -> Option<u128> {
    match toks.get(*pos)? {
        Tok::Num(n) => {
            *pos += 1;
            Some(*n)
        }
        Tok::LParen => {
            *pos += 1;
            let v = parse_shift(toks, pos)?;
            if toks.get(*pos) == Some(&Tok::RParen) {
                *pos += 1;
                Some(v)
            } else {
                None
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Functions and path references
// ---------------------------------------------------------------------------

/// Byte span `(open, close)` of the body of `fn <name>` (braces included).
pub fn fn_body_span(sf: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let code = &sf.code;
    let b = code.as_bytes();
    let mut at = 0usize;
    loop {
        let kw = find_word(code, "fn", at)?;
        at = kw + 2;
        let ident_start = skip_ws(b, at);
        if ident_at(b, ident_start) != Some(name) {
            continue;
        }
        // First `{` at paren/bracket depth 0 after the signature.
        let mut i = ident_start + name.len();
        let mut depth = 0isize;
        while i < b.len() {
            match b[i] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    let close = match_delim(b, i, b'{', b'}')?;
                    return Some((i, close));
                }
                _ => {}
            }
            i += 1;
        }
        return None;
    }
}

/// `(variant, line)` for every `base::Variant` reference inside
/// `code[span]`.  `RequestKind::X` does not match base `Request` (word
/// boundaries are respected).
pub fn path_refs(sf: &SourceFile, span: (usize, usize), base: &str) -> Vec<(String, usize)> {
    let slice = &sf.code[span.0..span.1];
    let b = slice.as_bytes();
    let mut out = Vec::new();
    let mut at = 0usize;
    while let Some(pos) = find_word(slice, base, at) {
        at = pos + base.len();
        let sep = skip_ws(b, at);
        if !slice[sep..].starts_with("::") {
            continue;
        }
        let ident_start = skip_ws(b, sep + 2);
        if let Some(ident) = ident_at(b, ident_start) {
            out.push((ident.to_string(), sf.line_of(span.0 + pos)));
            at = ident_start + ident.len();
        }
    }
    out
}

/// Whole-file span, for [`path_refs`] over everything.
pub fn full_span(sf: &SourceFile) -> (usize, usize) {
    (0, sf.code.len())
}

/// The `REPLAY_POLICY` table: `(request_variant, policy_variant, line)` per
/// entry, or `None` when the table is absent.
pub fn replay_policy(sf: &SourceFile) -> Option<Vec<(String, String, usize)>> {
    let code = &sf.code;
    let start = find_word(code, "REPLAY_POLICY", 0)?;
    let semi = code[start..].find(';')? + start;
    let span = (start, semi);
    let kinds = path_refs(sf, span, "RequestKind");
    let policies = path_refs(sf, span, "ReplayPolicy");
    // Entries are `(RequestKind::X, ReplayPolicy::Y)` pairs in order; the
    // type annotation contributes one leading RequestKind/ReplayPolicy pair
    // only when written with paths, which it is not.
    if kinds.len() != policies.len() {
        return Some(
            kinds
                .into_iter()
                .map(|(k, line)| (k, String::new(), line))
                .collect(),
        );
    }
    Some(
        kinds
            .into_iter()
            .zip(policies)
            .map(|((k, line), (p, _))| (k, p, line))
            .collect(),
    )
}

/// CamelCase → UPPER_SNAKE, for variant → tag-const naming checks
/// (`FreezeEpoch` → `FREEZE_EPOCH`).
pub fn camel_to_upper_snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() && i > 0 {
            out.push('_');
        }
        out.push(c.to_ascii_uppercase());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse("x.rs", src)
    }

    #[test]
    fn parses_enum_variants() {
        let f = sf("pub enum Request {\n  Commit { epoch: usize },\n  Advance(usize),\n  #[allow(dead_code)]\n  Loads,\n}\n");
        let v = enum_variants(&f, "Request").unwrap();
        let names: Vec<&str> = v.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Commit", "Advance", "Loads"]);
        assert_eq!(v[1].1, 3);
    }

    #[test]
    fn distinguishes_enum_names() {
        let f = sf("enum RequestKind { A }\nenum Request { B }\n");
        let v = enum_variants(&f, "Request").unwrap();
        assert_eq!(v[0].0, "B");
    }

    #[test]
    fn evaluates_const_exprs() {
        assert_eq!(eval_const("256 << 20"), Some(256 << 20));
        assert_eq!(eval_const(" 64 "), Some(64));
        assert_eq!(eval_const("2 * (3 + 4)"), Some(14));
        assert_eq!(eval_const("0x1_0000"), Some(0x1_0000));
        assert_eq!(eval_const("SOME_IDENT"), None);
        assert_eq!(eval_const("128usize"), Some(128));
    }

    #[test]
    fn finds_const_decls() {
        let f = sf("pub const MAX_FRAME_BYTES: usize = 256 << 20;\nconst TAG_COMMIT: u8 = 0;\n");
        let (v, line) = const_value(&f, "MAX_FRAME_BYTES").unwrap();
        assert_eq!(v, 256 << 20);
        assert_eq!(line, 1);
        assert_eq!(const_value(&f, "TAG_COMMIT").unwrap().0, 0);
    }

    #[test]
    fn finds_fn_body_and_path_refs() {
        let f = sf("fn other() { Request::Advance; }\nfn handle(r: Request) {\n  match r {\n    Request::Commit { .. } => {}\n    Request::Lease { .. } | Request::Goodbye => {}\n  }\n  RequestKind::Commit;\n}\n");
        let span = fn_body_span(&f, "handle").unwrap();
        let refs = path_refs(&f, span, "Request");
        let names: Vec<&str> = refs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Commit", "Lease", "Goodbye"]);
    }

    #[test]
    fn parses_replay_policy() {
        let f = sf("pub const REPLAY_POLICY: &[(RequestKind, ReplayPolicy)] = &[\n  (RequestKind::Commit, ReplayPolicy::Deduped),\n  (RequestKind::Loads, ReplayPolicy::Pure),\n];\n");
        let entries = replay_policy(&f).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "Commit");
        assert_eq!(entries[0].1, "Deduped");
        assert_eq!(entries[1].2, 3);
    }

    #[test]
    fn camel_conversion() {
        assert_eq!(camel_to_upper_snake("FreezeEpoch"), "FREEZE_EPOCH");
        assert_eq!(camel_to_upper_snake("Commit"), "COMMIT");
        assert_eq!(camel_to_upper_snake("TotalWrites"), "TOTAL_WRITES");
    }
}

//! Diagnostics: one finding per line, `file:line: [pass] message`, sortable
//! so output is stable across runs.

use std::fmt;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line (0 when the finding is file-level, e.g. a missing
    /// anchor).
    pub line: usize,
    /// Pass that produced the finding.
    pub pass: &'static str,
    /// Human-readable description, including the fix or allowlist syntax.
    pub message: String,
}

impl Diagnostic {
    pub fn new(pass: &'static str, file: &str, line: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            pass,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.message
        )
    }
}

//! Lexical source model for the lint passes.
//!
//! [`SourceFile::parse`] turns raw Rust source into a form the passes can
//! scan without tripping over prose:
//!
//! * `code` — the text with every comment body and string/char-literal
//!   *content* blanked to spaces (newlines and literal delimiters kept), so
//!   byte offsets and line numbers are identical to the original file and a
//!   search for `unwrap()` can never match inside a doc comment or an error
//!   message.
//! * a per-line **test mask** — lines belonging to a `#[cfg(test)]`-gated
//!   item (the attribute line through the item's closing brace or
//!   semicolon).  Gating is *attribute-scoped*: a `#[cfg(test)] fn helper`
//!   in the middle of a file masks exactly that item, not the rest of the
//!   file.
//! * the **allowlist** — `// lint: allow(<key>) — <reason>` annotations,
//!   attached to the line they govern (their own line for a trailing
//!   comment, the next code line for a comment on its own line).
//!
//! This is deliberately a lexer plus brace matching, not a Rust parser: the
//! grammar subset the passes need (enums, consts, fn bodies, match arms) is
//! recovered by [`crate::parse`] on top of `code`.

use std::collections::HashMap;

/// One `// lint: allow(<key>)` annotation.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The key inside `allow(...)`, e.g. `panic` or `blocking`.
    pub key: String,
    /// Whether a non-empty justification follows the closing parenthesis.
    pub justified: bool,
    /// Line of the comment itself (diagnostics point here when the
    /// annotation is malformed).
    pub at: usize,
}

/// A lexed source file.  Lines are 1-indexed throughout.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (display + lookup key).
    pub rel: String,
    /// Source text with comments and literal contents blanked (see module
    /// docs).  Same length and line structure as the input.
    pub code: String,
    /// Byte offset of the start of each line in `code` (index 0 = line 1).
    line_starts: Vec<usize>,
    /// `test_mask[line - 1]` is true when the line is `#[cfg(test)]`-gated.
    test_mask: Vec<bool>,
    /// Allow annotations keyed by the line they govern.
    allows: HashMap<usize, Vec<Allow>>,
}

impl SourceFile {
    /// Lex `text` into a source model.  `rel` is the workspace-relative
    /// path used in diagnostics.
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let (code, comments) = blank(text);
        let line_starts = line_starts(&code);
        let test_mask = test_mask(&code, &line_starts);
        let allows = collect_allows(&code, &line_starts, &comments);
        SourceFile {
            rel: rel.to_string(),
            code,
            line_starts,
            test_mask,
            allows,
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// 1-indexed line containing byte `offset` of `code`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        }
    }

    /// The blanked text of 1-indexed `line`.
    pub fn code_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.code.len(), |&next| next);
        self.code[start..end].trim_end_matches('\n')
    }

    /// Whether `line` belongs to a `#[cfg(test)]`-gated item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_mask.get(line - 1).copied().unwrap_or(false)
    }

    /// The allow annotation with `key` governing `line`, if any.
    pub fn allow_for(&self, line: usize, key: &str) -> Option<&Allow> {
        self.allows
            .get(&line)
            .and_then(|list| list.iter().find(|a| a.key == key))
    }
}

/// Whether `b` can appear in a Rust identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

// ---------------------------------------------------------------------------
// Blanking lexer
// ---------------------------------------------------------------------------

/// Blank comments and literal contents; return the blanked text plus every
/// line comment as `(line, text)` for annotation parsing.
fn blank(text: &str) -> (String, Vec<(usize, String)>) {
    let b = text.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                out.push(b'\n');
                line += 1;
                i += 1;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
                if let Ok(text) = std::str::from_utf8(&b[start..i]) {
                    comments.push((line, text.to_string()));
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        out.push(b'\n');
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = copy_string(b, i, &mut out, &mut line);
            }
            b'\'' => {
                // Char literal vs. lifetime: a literal either escapes
                // (`'\n'`) or closes two bytes later (`'x'`).  Multibyte
                // char literals fall through to the lifetime branch, which
                // merely leaves their contents unblanked — harmless.
                if b.get(i + 1) == Some(&b'\\') {
                    out.push(b'\'');
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\\' && i + 1 < b.len() {
                            out.extend_from_slice(b"  ");
                            i += 2;
                        } else {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                    if i < b.len() {
                        out.push(b'\'');
                        i += 1;
                    }
                } else if b.get(i + 2) == Some(&b'\'') && b.get(i + 1) != Some(&b'\'') {
                    out.extend_from_slice(b"' '");
                    i += 3;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                // Raw/byte string prefixes must be recognized before the
                // identifier they would otherwise lex as.
                if let Some(next) = raw_string_start(b, i) {
                    i = copy_raw_string(b, i, next, &mut out, &mut line);
                } else if c == b'b' && b.get(i + 1) == Some(&b'"') {
                    out.push(b' ');
                    i = copy_string(b, i + 1, &mut out, &mut line);
                } else {
                    while i < b.len() && is_ident_byte(b[i]) {
                        out.push(b[i]);
                        i += 1;
                    }
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    // Blanking only ever substitutes ASCII for ASCII, so the output is
    // valid UTF-8 whenever the input was.
    let code = String::from_utf8_lossy(&out).into_owned();
    (code, comments)
}

/// If a raw (byte) string literal starts at `i`, return the index of its
/// opening quote's content (first byte after `"`); the number of `#`s is
/// recoverable from the prefix.
fn raw_string_start(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    if b.get(j) == Some(&b'"') {
        Some(j + 1)
    } else {
        None
    }
}

/// Copy a raw string starting at `start` (the `r`/`b` prefix) whose content
/// begins at `content`: prefix and delimiters become spaces/quotes, content
/// is blanked, newlines kept.
fn copy_raw_string(
    b: &[u8],
    start: usize,
    content: usize,
    out: &mut Vec<u8>,
    line: &mut usize,
) -> usize {
    let hashes = content - start - 2 - usize::from(b[start] == b'b'); // bytes between r and "
    for _ in start..content - 1 {
        out.push(b' ');
    }
    out.push(b'"');
    let mut i = content;
    'scan: while i < b.len() {
        if b[i] == b'"' {
            // Close only when followed by the right number of hashes.
            let mut k = 0usize;
            while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                out.push(b'"');
                for _ in 0..hashes {
                    out.push(b' ');
                }
                i += 1 + hashes;
                break 'scan;
            }
        }
        if b[i] == b'\n' {
            out.push(b'\n');
            *line += 1;
        } else {
            out.push(b' ');
        }
        i += 1;
    }
    i
}

/// Copy a plain string literal starting at the opening quote `i`.
fn copy_string(b: &[u8], i: usize, out: &mut Vec<u8>, line: &mut usize) -> usize {
    debug_assert_eq!(b[i], b'"');
    out.push(b'"');
    let mut i = i + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                out.push(b' ');
                i += 1;
                if i < b.len() {
                    if b[i] == b'\n' {
                        out.push(b'\n');
                        *line += 1;
                    } else {
                        out.push(b' ');
                    }
                    i += 1;
                }
            }
            b'"' => {
                out.push(b'"');
                return i + 1;
            }
            b'\n' => {
                out.push(b'\n');
                *line += 1;
                i += 1;
            }
            _ => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    i
}

// ---------------------------------------------------------------------------
// Line table
// ---------------------------------------------------------------------------

fn line_starts(code: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in code.bytes().enumerate() {
        if b == b'\n' && i + 1 < code.len() {
            starts.push(i + 1);
        }
    }
    starts
}

// ---------------------------------------------------------------------------
// #[cfg(test)] masking
// ---------------------------------------------------------------------------

/// Whether attribute content (the text inside `#[...]`) gates on `test`.
fn is_test_attr(content: &str) -> bool {
    let content = content.trim();
    if content == "test" {
        return true;
    }
    let Some(rest) = content.strip_prefix("cfg") else {
        return false;
    };
    // `cfg(test)`, `cfg(all(test, ...))` gate on test; `cfg(not(test))`
    // does the opposite.  Nested `not(...)` around other predicates does
    // not occur in this workspace.
    rest.trim_start().starts_with('(')
        && contains_word(rest, "test")
        && !rest.replace(' ', "").contains("not(test)")
}

/// Word-boundary substring test.
pub fn contains_word(haystack: &str, word: &str) -> bool {
    find_word(haystack, word, 0).is_some()
}

/// Find `word` in `haystack` at a word boundary, starting at byte `from`.
pub fn find_word(haystack: &str, word: &str, from: usize) -> Option<usize> {
    let h = haystack.as_bytes();
    let mut at = from;
    while let Some(pos) = haystack.get(at..).and_then(|s| s.find(word)) {
        let start = at + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident_byte(h[start - 1]);
        let right_ok = end >= h.len() || !is_ident_byte(h[end]);
        if left_ok && right_ok {
            return Some(start);
        }
        at = start + 1;
    }
    None
}

/// Compute the per-line test mask by scanning for test-gating attributes
/// and brace-matching the item each one governs.
fn test_mask(code: &str, line_starts: &[usize]) -> Vec<bool> {
    let b = code.as_bytes();
    let mut mask = vec![false; line_starts.len()];
    let mut i = 0usize;
    while i < b.len() {
        if b[i] != b'#' {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        // `#![...]` is an inner attribute: it governs the enclosing module,
        // which for a file-level `#![cfg(test)]` never occurs here.  Skip.
        if b.get(j) == Some(&b'!') {
            i += 1;
            continue;
        }
        while j < b.len() && (b[j] as char).is_whitespace() {
            j += 1;
        }
        if b.get(j) != Some(&b'[') {
            i += 1;
            continue;
        }
        let Some(close) = match_delim(b, j, b'[', b']') else {
            break;
        };
        let content = &code[j + 1..close];
        if !is_test_attr(content) {
            i = close + 1;
            continue;
        }
        let end = item_end(b, close + 1);
        let first = line_of(line_starts, attr_start);
        let last = line_of(line_starts, end.min(b.len().saturating_sub(1)));
        for line in first..=last {
            mask[line - 1] = true;
        }
        i = end + 1;
    }
    mask
}

fn line_of(line_starts: &[usize], offset: usize) -> usize {
    match line_starts.binary_search(&offset) {
        Ok(idx) => idx + 1,
        Err(idx) => idx,
    }
}

/// Find the matching `close` for the `open` delimiter at `b[at]`.
pub fn match_delim(b: &[u8], at: usize, open: u8, close: u8) -> Option<usize> {
    debug_assert_eq!(b[at], open);
    let mut depth = 0usize;
    for (off, &c) in b[at..].iter().enumerate() {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return Some(at + off);
            }
        }
    }
    None
}

/// Byte offset of the end of the item starting at `from` (after its
/// attributes): the first top-level `;`, or the close of its top-level
/// brace block — continuing through blocks followed by `else` or `;` so
/// `const X: T = if c { a } else { b };` is spanned fully.
fn item_end(b: &[u8], from: usize) -> usize {
    let mut i = from;
    let mut paren = 0isize;
    let mut bracket = 0isize;
    while i < b.len() {
        match b[i] {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b';' if paren == 0 && bracket == 0 => return i,
            b'{' if paren == 0 && bracket == 0 => {
                let Some(close) = match_delim(b, i, b'{', b'}') else {
                    return b.len().saturating_sub(1);
                };
                // `} else {`, `};` continue the item; anything else ends it.
                let mut k = close + 1;
                while k < b.len() && (b[k] as char).is_whitespace() {
                    k += 1;
                }
                if b.get(k) == Some(&b';') {
                    return k;
                }
                if b[k..].starts_with(b"else") {
                    i = k + 4;
                    continue;
                }
                return close;
            }
            _ => {}
        }
        i += 1;
    }
    b.len().saturating_sub(1)
}

// ---------------------------------------------------------------------------
// Allow annotations
// ---------------------------------------------------------------------------

/// Parse `// lint: allow(<key>) — <reason>` comments and attach each to
/// the line it governs.
fn collect_allows(
    code: &str,
    line_starts: &[usize],
    comments: &[(usize, String)],
) -> HashMap<usize, Vec<Allow>> {
    let mut allows: HashMap<usize, Vec<Allow>> = HashMap::new();
    let line_count = line_starts.len();
    for (line, text) in comments {
        let Some(allow) = parse_allow(*line, text) else {
            continue;
        };
        let governed = governed_line(code, line_starts, *line, line_count);
        allows.entry(governed).or_default().push(allow);
    }
    allows
}

fn parse_allow(line: usize, comment: &str) -> Option<Allow> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let key = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
        .trim();
    Some(Allow {
        key,
        justified: !reason.is_empty(),
        at: line,
    })
}

/// The line an annotation governs: its own line when code precedes the
/// comment, otherwise the next line carrying code (within a short window,
/// so a stray annotation cannot silence half a file).
fn governed_line(code: &str, line_starts: &[usize], line: usize, line_count: usize) -> usize {
    let text_of = |l: usize| -> &str {
        let start = line_starts[l - 1];
        let end = line_starts.get(l).map_or(code.len(), |&n| n);
        &code[start..end]
    };
    if !text_of(line).trim().is_empty() {
        return line;
    }
    for next in line + 1..=(line + 5).min(line_count) {
        if !text_of(next).trim().is_empty() {
            return next;
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings() {
        let sf = SourceFile::parse(
            "x.rs",
            "let s = \"panic!\"; // unwrap()\nlet c = 'x';\n/* todo! */ let l: &'static str = r#\"expect(\"#;\n",
        );
        assert!(!sf.code.contains("panic!"));
        assert!(!sf.code.contains("unwrap"));
        assert!(!sf.code.contains("todo"));
        assert!(!sf.code.contains("expect"));
        assert!(sf.code.contains("'static"));
        assert_eq!(sf.line_count(), 3);
    }

    #[test]
    fn test_mask_scopes_single_item() {
        let src =
            "fn prod() { x(); }\n#[cfg(test)]\nfn helper() {\n  y();\n}\nfn prod2() { z(); }\n";
        let sf = SourceFile::parse("x.rs", src);
        assert!(!sf.is_test_line(1));
        assert!(sf.is_test_line(2));
        assert!(sf.is_test_line(3));
        assert!(sf.is_test_line(4));
        assert!(sf.is_test_line(5));
        assert!(!sf.is_test_line(6));
    }

    #[test]
    fn test_mask_covers_mod_tests() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n  use super::*;\n  #[test]\n  fn t() { prod(); }\n}\nfn after() {}\n";
        let sf = SourceFile::parse("x.rs", src);
        for line in 2..=7 {
            assert!(sf.is_test_line(line), "line {line} should be masked");
        }
        assert!(!sf.is_test_line(1));
        assert!(!sf.is_test_line(8));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn prod() {}\n";
        let sf = SourceFile::parse("x.rs", src);
        assert!(!sf.is_test_line(2));
    }

    #[test]
    fn allows_attach_to_governed_line() {
        let src = "// lint: allow(panic) — infallible by construction\nlet x = y.unwrap();\nlet z = w.unwrap(); // lint: allow(panic) — checked above\nlet naked = v.unwrap(); // lint: allow(panic)\n";
        let sf = SourceFile::parse("x.rs", src);
        assert!(sf.allow_for(2, "panic").is_some_and(|a| a.justified));
        assert!(sf.allow_for(3, "panic").is_some_and(|a| a.justified));
        assert!(sf.allow_for(4, "panic").is_some_and(|a| !a.justified));
        assert!(sf.allow_for(2, "blocking").is_none());
    }
}

//! Workspace loading: the set of source files the passes inspect, keyed by
//! workspace-relative path.
//!
//! Two constructors exist on purpose: [`Workspace::load`] reads a real
//! checkout (or a fixture tree mirroring its layout), while
//! [`Workspace::from_files`] builds one from in-memory texts so tests can
//! mutate real sources and assert the lint notices.

use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// The crates whose sources the passes walk.  Everything a pass anchors on
/// (proto enums, dispatch arms, the cluster constants) lives under these.
const SCANNED_CRATES: [&str; 2] = ["crates/dds/src", "crates/ampc/src"];

/// Loaded view of the workspace sources.
pub struct Workspace {
    files: BTreeMap<String, SourceFile>,
}

impl Workspace {
    /// Load every `.rs` file under the scanned crates of `root`.  Missing
    /// directories are skipped (fixture trees carry only the files their
    /// pass needs); unreadable files are errors.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = BTreeMap::new();
        for prefix in SCANNED_CRATES {
            let dir = root.join(prefix);
            if dir.is_dir() {
                collect(&dir, prefix, &mut files)?;
            }
        }
        Ok(Workspace { files })
    }

    /// Build a workspace from `(relative_path, text)` pairs.
    pub fn from_files<'a>(files: impl IntoIterator<Item = (&'a str, &'a str)>) -> Workspace {
        Workspace {
            files: files
                .into_iter()
                .map(|(rel, text)| (rel.to_string(), SourceFile::parse(rel, text)))
                .collect(),
        }
    }

    /// The file at workspace-relative `rel`, if loaded.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.get(rel)
    }

    /// All loaded files, in path order.
    pub fn files(&self) -> impl Iterator<Item = &SourceFile> {
        self.files.values()
    }
}

fn collect(dir: &Path, rel: &str, files: &mut BTreeMap<String, SourceFile>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let child_rel = format!("{rel}/{name}");
        if path.is_dir() {
            collect(&path, &child_rel, files)?;
        } else if name.ends_with(".rs") {
            let text = std::fs::read_to_string(&path)?;
            files.insert(child_rel.clone(), SourceFile::parse(&child_rel, &text));
        }
    }
    Ok(())
}

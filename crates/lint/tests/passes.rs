//! Fixture-based coverage of the four passes, plus the two properties CI
//! actually leans on: the real workspace lints clean, and removing a
//! dispatch arm or a `REPLAY_POLICY` entry for a *real* request variant is
//! detected.
//!
//! Each fixture under `tests/fixtures/` is a miniature workspace tree
//! (same relative layout as the real one) seeded with exactly one class of
//! violation; the test asserts the expected pass fails with the expected
//! diagnostic at the expected file.

use ampc_lint::{run_pass, Diagnostic, Workspace};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("lint crate lives two levels under the workspace root")
}

fn fixture(name: &str) -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    Workspace::load(&root).expect("fixture tree loads")
}

fn run(ws: &Workspace, pass: &str) -> Vec<Diagnostic> {
    run_pass(pass, ws).expect("known pass name")
}

/// A diagnostic in `diags` matches `file` and every `needles` substring.
fn assert_finding(diags: &[Diagnostic], pass: &str, file: &str, needles: &[&str]) {
    let found = diags.iter().any(|d| {
        d.pass == pass && d.file.ends_with(file) && needles.iter().all(|n| d.message.contains(n))
    });
    assert!(
        found,
        "expected a [{pass}] finding in {file} containing {needles:?}; got:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// ---------------------------------------------------------------------------
// proto-conformance
// ---------------------------------------------------------------------------

#[test]
fn unhandled_variant_fails_proto_conformance() {
    let ws = fixture("unhandled_variant");
    let diags = run(&ws, "proto-conformance");
    assert_finding(
        &diags,
        "proto-conformance",
        "transport/dispatch.rs",
        &["Request::Advance", "no match arm"],
    );
    assert_eq!(diags.len(), 1, "exactly the seeded violation: {diags:?}");
}

#[test]
fn duplicate_and_orphaned_tags_fail_proto_conformance() {
    let ws = fixture("bad_tags");
    let diags = run(&ws, "proto-conformance");
    assert_finding(
        &diags,
        "proto-conformance",
        "proto.rs",
        &["duplicate request wire tag value 0"],
    );
    assert_finding(
        &diags,
        "proto-conformance",
        "proto.rs",
        &["unpaired wire tag `TAG_ORPHAN`"],
    );
}

#[test]
fn unclassified_request_fails_proto_conformance() {
    let ws = fixture("unclassified_request");
    let diags = run(&ws, "proto-conformance");
    assert_finding(
        &diags,
        "proto-conformance",
        "proto.rs",
        &["Request::Advance", "missing from REPLAY_POLICY"],
    );
    assert_eq!(diags.len(), 1, "exactly the seeded violation: {diags:?}");
}

// ---------------------------------------------------------------------------
// panic-path
// ---------------------------------------------------------------------------

#[test]
fn naked_unwrap_fails_panic_path() {
    let ws = fixture("naked_unwrap");
    let diags = run(&ws, "panic-path");
    assert_finding(
        &diags,
        "panic-path",
        "store.rs",
        &["unwrap()", "production path"],
    );
    assert_finding(
        &diags,
        "panic-path",
        "store.rs",
        &["missing its justification"],
    );
    // The justified allow, the `unwrap_or`, and the `#[cfg(test)]` helper
    // must all stay silent.
    assert_eq!(diags.len(), 2, "exactly the seeded violations: {diags:?}");
    let naked = diags
        .iter()
        .find(|d| d.message.contains("production path"))
        .expect("asserted above");
    assert_eq!(naked.line, 2, "the naked unwrap is on line 2");
}

// ---------------------------------------------------------------------------
// const-consistency
// ---------------------------------------------------------------------------

#[test]
fn drifted_constants_fail_const_consistency() {
    let ws = fixture("const_drift");
    let diags = run(&ws, "const-consistency");
    assert_finding(
        &diags,
        "const-consistency",
        "transport/dispatch.rs",
        &["COMMIT_REPLAY_WINDOW (100)", "2 × PIPELINE_DEPTH (64)"],
    );
    assert_finding(
        &diags,
        "const-consistency",
        "transport/session.rs",
        &["MAX_PIPELINE (128)", "COMMIT_REPLAY_WINDOW (100)"],
    );
    assert_finding(
        &diags,
        "const-consistency",
        "transport/codec.rs",
        &["MAX_RETAINED_FRAME_BYTES", "MAX_FRAME_BYTES"],
    );
    assert_finding(
        &diags,
        "const-consistency",
        "runtime.rs",
        &["pattern 3", "cluster_backend_arm!(2)"],
    );
    assert_finding(
        &diags,
        "const-consistency",
        "runtime.rs",
        &["MAX_CLUSTER_OWNERS", "is 4"],
    );
}

// ---------------------------------------------------------------------------
// blocking-discipline
// ---------------------------------------------------------------------------

#[test]
fn sleep_in_dispatch_fails_blocking_discipline() {
    let ws = fixture("sleep_in_dispatch");
    let diags = run(&ws, "blocking-discipline");
    assert_finding(
        &diags,
        "blocking-discipline",
        "transport/dispatch.rs",
        &["thread::sleep"],
    );
    assert_eq!(diags.len(), 1, "exactly the seeded violation: {diags:?}");
}

// ---------------------------------------------------------------------------
// The real workspace
// ---------------------------------------------------------------------------

#[test]
fn real_workspace_is_clean() {
    let diags = ampc_lint::run_all(&repo_root()).expect("workspace loads");
    assert!(
        diags.is_empty(),
        "the checked-in workspace must lint clean:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn real_sources() -> (String, String) {
    let root = repo_root();
    let proto = std::fs::read_to_string(root.join("crates/dds/src/proto.rs")).expect("proto.rs");
    let dispatch = std::fs::read_to_string(root.join("crates/dds/src/transport/dispatch.rs"))
        .expect("dispatch.rs");
    (proto, dispatch)
}

/// Acceptance criterion: deleting a `REPLAY_POLICY` entry for an existing
/// variant from the *real* proto.rs makes proto-conformance fail.
#[test]
fn removing_a_real_replay_policy_entry_is_detected() {
    let (proto, dispatch) = real_sources();
    let entry = "(RequestKind::Dump, ReplayPolicy::Pure),";
    assert_eq!(proto.matches(entry).count(), 1, "entry present to delete");
    let mutated = proto.replace(entry, "");
    let ws = Workspace::from_files([
        ("crates/dds/src/proto.rs", mutated.as_str()),
        ("crates/dds/src/transport/dispatch.rs", dispatch.as_str()),
    ]);
    let diags = run(&ws, "proto-conformance");
    assert_finding(
        &diags,
        "proto-conformance",
        "proto.rs",
        &["Request::Dump", "missing from REPLAY_POLICY"],
    );
}

/// Acceptance criterion: deleting (here: renaming away) a dispatch match
/// arm for an existing variant from the *real* dispatch.rs makes
/// proto-conformance fail.
#[test]
fn removing_a_real_dispatch_arm_is_detected() {
    let (proto, dispatch) = real_sources();
    let arm = "Request::Loads { epoch }";
    assert!(dispatch.contains(arm), "arm present to remove");
    let mutated = dispatch.replace("Request::Loads", "Request::LoadsGone");
    let ws = Workspace::from_files([
        ("crates/dds/src/proto.rs", proto.as_str()),
        ("crates/dds/src/transport/dispatch.rs", mutated.as_str()),
    ]);
    let diags = run(&ws, "proto-conformance");
    assert_finding(
        &diags,
        "proto-conformance",
        "transport/dispatch.rs",
        &["Request::Loads", "no match arm"],
    );
}

/// The binary's contract: nonzero exit plus file:line diagnostics on a
/// seeded fixture, zero on the real tree.
#[test]
fn cli_exit_codes_match_findings() {
    let lint = env!("CARGO_BIN_EXE_ampc-lint");
    let fixture_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/naked_unwrap");

    let bad = std::process::Command::new(lint)
        .args(["--root", fixture_root.to_str().expect("utf-8 path")])
        .output()
        .expect("run ampc-lint");
    assert_eq!(bad.status.code(), Some(1), "findings exit 1");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(
        stdout.contains("store.rs:2: [panic-path]"),
        "file:line diagnostics on stdout, got:\n{stdout}"
    );

    let clean = std::process::Command::new(lint)
        .args(["--root", repo_root().to_str().expect("utf-8 path")])
        .output()
        .expect("run ampc-lint");
    assert_eq!(clean.status.code(), Some(0), "clean tree exits 0");
}

use std::time::Duration;

pub fn handle(busy: bool) {
    if busy {
        std::thread::sleep(Duration::from_millis(1));
    }
}

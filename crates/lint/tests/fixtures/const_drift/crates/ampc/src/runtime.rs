macro_rules! with_dds_backend {
    () => {{
        match owners {
            1 => cluster_backend_arm!(1, config, body),
            2 => cluster_backend_arm!(2, config, body),
            3 => cluster_backend_arm!(2, config, body),
            n => panic!("unsupported owner count {n}"),
        }
    }};
}

pub const MAX_CLUSTER_OWNERS: usize = 4;

pub const MAX_FRAME_BYTES: usize = 256 << 20;

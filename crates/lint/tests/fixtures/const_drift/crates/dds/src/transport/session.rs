pub const PIPELINE_DEPTH: usize = 64;
const MAX_PIPELINE: usize = 128;

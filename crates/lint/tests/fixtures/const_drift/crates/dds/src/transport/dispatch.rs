pub const COMMIT_REPLAY_WINDOW: usize = 100;

pub fn produce(values: &[u64]) -> u64 {
    let first = values.first().unwrap();

    let second = values.get(1).copied().unwrap_or(0);
    // lint: allow(panic)
    let third = values.get(2).unwrap();
    // lint: allow(panic) — slice length validated by the caller's contract
    let fourth = values.get(3).unwrap();
    first + second + third + fourth
}

#[cfg(test)]
fn helper(values: &[u64]) -> u64 {
    *values.first().unwrap()
}

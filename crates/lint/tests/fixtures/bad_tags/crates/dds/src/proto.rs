pub enum RequestKind {
    Commit,
    Advance,
}

pub enum Request {
    Commit { seq: u64 },
    Advance { epoch: usize },
}

pub enum Reply {
    Done,
}

pub enum ReplayPolicy {
    Deduped,
    Idempotent,
    Pure,
}

pub const REPLAY_POLICY: &[(RequestKind, ReplayPolicy)] = &[
    (RequestKind::Commit, ReplayPolicy::Deduped),
    (RequestKind::Advance, ReplayPolicy::Idempotent),
];

const TAG_COMMIT: u8 = 0;
const TAG_ADVANCE: u8 = 0;
const TAG_ORPHAN: u8 = 9;

pub fn encode_request_into(buf: &mut Vec<u8>, request: &Request) {
    match request {
        Request::Commit { .. } => buf.push(TAG_COMMIT),
        Request::Advance { .. } => buf.push(TAG_ADVANCE),
    }
}

pub fn decode_request(bytes: &[u8]) -> Option<Request> {
    match bytes.first()? {
        &TAG_COMMIT => Some(Request::Commit { seq: 0 }),
        &TAG_ADVANCE => Some(Request::Advance { epoch: 0 }),
        _ => None,
    }
}

pub fn encode_reply_into(_buf: &mut Vec<u8>, _reply: &Reply) {}

pub fn decode_reply(_bytes: &[u8]) -> Option<Reply> {
    None
}

use crate::proto::{Reply, Request};

pub fn handle(request: Request) -> Reply {
    match request {
        Request::Commit { .. } => Reply::Done,
    }
}

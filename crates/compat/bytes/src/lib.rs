//! In-tree shim for the `bytes` crate.
//!
//! Provides the little-endian get/put API the DDS wire codec uses, backed by
//! plain `Vec<u8>`.  No refcounted buffer sharing — `freeze` simply moves the
//! vector — which is all the workspace needs.

#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer (shim: an owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer (shim: an owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with space reserved for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if no byte has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Read access to a byte cursor, little-endian integer helpers included.
///
/// Implemented for `&[u8]`, advancing the slice as values are consumed.
pub trait Buf {
    /// Consume and return one little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Consume and return one little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("4-byte split"))
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().expect("8-byte split"))
    }
}

/// Write access to a growable byte buffer, little-endian helpers included.
pub trait BufMut {
    /// Append one little-endian `u32`.
    fn put_u32_le(&mut self, value: u32);
    /// Append one little-endian `u64`.
    fn put_u64_le(&mut self, value: u64);
    /// Append a slice of raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u32_le(&mut self, value: u32) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u64_le(&mut self, value: u64) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut buf = BytesMut::with_capacity(12);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0102_0304_0506_0708);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 12);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0102_0304_0506_0708);
        assert!(cursor.is_empty());
    }

    #[test]
    fn put_slice_appends() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_slice(&[1, 2]);
        buf.put_slice(&[3]);
        assert_eq!(&*buf.freeze(), &[1, 2, 3]);
    }
}

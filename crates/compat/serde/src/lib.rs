//! In-tree shim for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on stats/config types to
//! keep them serialization-ready, but nothing actually serializes through
//! serde (the bench JSON output is hand-rolled).  This shim therefore
//! defines the two traits as markers and re-exports no-op derive macros, so
//! the annotations compile unchanged and the real crate can be swapped back
//! in once a registry is reachable.

#![warn(missing_docs)]

pub use serde_derive_shim::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

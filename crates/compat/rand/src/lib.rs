//! In-tree shim for the `rand` crate (0.8-era API surface).
//!
//! The workspace only needs seeded, reproducible pseudo-randomness: every
//! algorithm and test derives its RNG from an explicit `u64` seed.  This shim
//! provides [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64), the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits with the `gen`,
//! `gen_range` and `gen_bool` methods, and [`seq::SliceRandom::shuffle`].
//!
//! The streams differ from the real `rand::rngs::StdRng` (ChaCha12), which
//! is fine: nothing in the workspace depends on specific stream values, only
//! on determinism given a seed.

#![warn(missing_docs)]
#![allow(clippy::should_implement_trait)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be sampled uniformly from an [`RngCore`]
/// (the shim's stand-in for `Standard: Distribution<T>`).
pub trait UniformSample {
    /// Draw one value uniformly at random.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts, producing values of type `T`.
///
/// Mirrors the real crate's `SampleRange<T>` shape so the produced type is
/// driven by inference at the call site.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The user-facing sampling interface, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly at random.
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must lie in [0, 1], got {p}"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** with SplitMix64 seeding.
    ///
    /// Deterministic given the seed, `Clone`-able, and statistically strong
    /// enough for the balls-into-bins and sampling experiments in this
    /// workspace.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`shuffle`).
pub mod seq {
    use super::RngCore;

    /// Extension trait for slices: random shuffling.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
            let x = rng.gen_range(5u32..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn range_sampling_is_reasonably_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        assert!(
            counts.iter().all(|&c| (9_000..11_000).contains(&c)),
            "{counts:?}"
        );
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }
}

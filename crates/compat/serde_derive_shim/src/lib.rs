//! In-tree shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its stats and config
//! types but never serializes through serde (JSON output is hand-rolled), so
//! these derives only need to produce marker-trait impls.  The macros parse
//! just the type name from the item — none of the deriving types are
//! generic — and emit empty `impl` blocks for the marker traits defined by
//! the in-tree `serde` shim.

use proc_macro::{TokenStream, TokenTree};

/// Extract the identifier following the `struct`/`enum`/`union` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for token in input {
        if let TokenTree::Ident(ident) = token {
            let text = ident.to_string();
            if saw_keyword {
                return text;
            }
            if text == "struct" || text == "enum" || text == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive_shim: could not find a type name in the derive input");
}

/// No-op `#[derive(Serialize)]`: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated Serialize impl parses")
}

/// No-op `#[derive(Deserialize)]`: emits `impl serde::Deserialize for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}

//! In-tree shim for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of the `parking_lot` API the workspace uses — a [`Mutex`] whose
//! `lock()` returns a guard directly (no poisoning) — backed by
//! `std::sync::Mutex`.  Swap this for the real crate by editing the
//! workspace `Cargo.toml` once a registry is reachable.

#![warn(missing_docs)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion lock with the `parking_lot` calling convention:
/// `lock()` returns the guard directly and a poisoned lock (a panic while
/// held) is treated as still usable, matching `parking_lot`'s behaviour of
/// not poisoning.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}

//! In-tree shim for the `proptest` crate.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`any`], [`Just`], [`collection::vec`], the
//! [`proptest!`] macro and the `prop_assert*` macros.
//!
//! Differences from the real crate, acceptable for this workspace:
//!
//! * cases are generated from a deterministic per-test RNG (seeded from the
//!   test's name), so failures always reproduce;
//! * there is **no shrinking** — a failing case panics with the assertion
//!   message and its case index instead of a minimized input;
//! * `prop_assert*` panic immediately rather than returning `Err`.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::ops::Range;

/// Deterministic RNG driving case generation for one test.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for the named test, seeded from the name so runs reproduce.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for byte in name.bytes() {
            seed ^= byte as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Runtime configuration of a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility with the real crate; the shim never
    /// shrinks, so this is ignored.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A recipe for generating random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (stand-in for `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs, in one import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Boolean property assertion; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality property assertion; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Inequality property assertion; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)` runs
/// `config.cases` random cases drawn from the listed strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) $( $(#[$meta:meta])+ fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut proptest_rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for proptest_case in 0..config.cases {
                    let ( $($pat,)+ ) = ( $($crate::Strategy::generate(&($strategy), &mut proptest_rng),)+ );
                    let run = || { $body };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest shim: case {}/{} of {} failed (no shrinking available)",
                            proptest_case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

//! In-tree shim for the `criterion` crate.
//!
//! Implements the benchmark-definition API the bench files use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`criterion_group!`], [`criterion_main!`]) with a
//! simple mean-of-samples timer instead of criterion's statistical engine.
//! Results are printed one line per benchmark:
//!
//! ```text
//! group/function/param ... mean 12.345 ms (10 samples)
//! ```

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Top-level benchmark driver (shim: holds the default sample count).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Run a benchmark that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            runs: 0,
        };
        routine(&mut bencher, input);
        bencher.report(&self.name, &id.text);
        self
    }

    /// Run a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            runs: 0,
        };
        routine(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Finish the group (shim: no-op, timings were reported eagerly).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    runs: usize,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up run.
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total += started.elapsed();
        self.runs += self.samples;
    }

    fn report(&self, group: &str, id: &str) {
        if self.runs == 0 {
            println!("{group}/{id} ... no samples recorded");
            return;
        }
        let mean = self.total / self.runs as u32;
        println!("{group}/{id} ... mean {mean:?} ({} samples)", self.runs);
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Entry point running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs_routines() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 1), &5usize, |b, &five| {
            b.iter(|| {
                calls += 1;
                five * 2
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}

//! Section 8: forest connectivity in `O(1/ε)` AMPC rounds (Theorem 5).
//!
//! The classic reduction: the Euler tour of every tree is a cycle over its
//! arcs, so connectivity of a forest reduces to connectivity of a union of
//! cycles, which `Shrink` + the minimum-priority election (Algorithm 10,
//! [`crate::shrink::cycle_connectivity_from_neighbors`]) solves in `O(1/ε)`
//! rounds.  Arc labels are then mapped back to the vertices incident to the
//! arcs; vertices with no incident tree edge are their own components.

use crate::common::AlgorithmResult;
use crate::euler::euler_tour;
use crate::shrink::{cycle_connectivity_from_neighbors_with, CycleNeighbors};
use ampc_graph::{canonicalize_labels, Graph};
use ampc_runtime::AmpcConfig;

/// Theorem 5: connected components of a forest.
///
/// Returns canonical component labels (`labels[v]` = smallest vertex id of
/// `v`'s tree).
///
/// # Panics
/// If the input contains a cycle (it must be a forest).
pub fn forest_connectivity(forest: &Graph, epsilon: f64, seed: u64) -> AlgorithmResult<Vec<u32>> {
    let n = forest.num_vertices();
    let arcs = 2 * forest.num_edges();
    forest_connectivity_with(
        forest,
        &AmpcConfig::for_graph(n.max(arcs).max(1), arcs, epsilon).with_seed(seed),
    )
}

/// [`forest_connectivity`] with an explicit [`AmpcConfig`]: ε and seed come
/// from the config, which also selects the DDS backend for the cycle
/// connectivity underneath.
pub fn forest_connectivity_with(forest: &Graph, config: &AmpcConfig) -> AlgorithmResult<Vec<u32>> {
    let n = forest.num_vertices();
    let tour = euler_tour(forest);
    let num_arcs = tour.num_arcs();

    if num_arcs == 0 {
        // No edges at all: every vertex is its own component, zero rounds.
        return AlgorithmResult::new((0..n as u32).collect(), ampc_runtime::RunStats::default());
    }

    // The Euler tour is a successor permutation over arcs whose orbits are
    // exactly the trees; as an undirected cycle graph each arc's neighbours
    // are its predecessor and successor in the tour.
    let mut nbrs = CycleNeighbors::default();
    for a in 0..num_arcs as u32 {
        nbrs.insert(a, (tour.prev[a as usize], tour.next[a as usize]));
    }
    let arc_labels = cycle_connectivity_from_neighbors_with(nbrs, num_arcs, config);

    // Map arc components back to vertex components: a vertex takes the label
    // of any incident arc (all incident arcs share the label: they belong to
    // the same tree's tour).  Isolated vertices get fresh labels.
    let mut labels = vec![u32::MAX; n];
    for a in 0..num_arcs {
        let tail = tour.arc_tail[a] as usize;
        let head = tour.arc_head[a] as usize;
        let label = arc_labels.output[a];
        labels[tail] = labels[tail].min(label);
        labels[head] = labels[head].min(label);
    }
    for (v, label) in labels.iter_mut().enumerate() {
        if *label == u32::MAX {
            *label = num_arcs as u32 + v as u32;
        }
    }
    AlgorithmResult::new(canonicalize_labels(&labels), arc_labels.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::{generators, sequential};

    #[test]
    fn matches_sequential_on_random_forests() {
        for &(n, trees) in &[(200usize, 5usize), (500, 20), (100, 1), (64, 64)] {
            let g = generators::random_forest(n, trees, 3);
            let result = forest_connectivity(&g, 0.5, 3);
            assert_eq!(
                result.output,
                sequential::connected_components(&g),
                "n={n} trees={trees}"
            );
        }
    }

    #[test]
    fn single_path_and_binary_tree() {
        let p = generators::path(300);
        assert_eq!(forest_connectivity(&p, 0.5, 1).output, vec![0; 300]);
        let b = generators::binary_tree(127);
        assert_eq!(forest_connectivity(&b, 0.5, 1).output, vec![0; 127]);
    }

    #[test]
    fn isolated_vertices_are_own_components() {
        let g = Graph::from_edges(6, &[ampc_graph::Edge::new(2, 4)]);
        let result = forest_connectivity(&g, 0.5, 0);
        assert_eq!(result.output, vec![0, 1, 2, 3, 2, 5]);
    }

    #[test]
    fn edgeless_forest_takes_zero_rounds() {
        let g = Graph::from_edges(10, &[]);
        let result = forest_connectivity(&g, 0.5, 0);
        assert_eq!(result.output, (0..10u32).collect::<Vec<_>>());
        assert_eq!(result.rounds(), 0);
    }

    #[test]
    fn round_count_is_constant_in_forest_size() {
        let small = generators::random_forest(200, 4, 2);
        let large = generators::random_forest(4000, 4, 2);
        let small_rounds = forest_connectivity(&small, 0.5, 2).rounds();
        let large_rounds = forest_connectivity(&large, 0.5, 2).rounds();
        let cap = 2 * ((4.0 / 0.5) as usize + 6);
        assert!(small_rounds <= cap, "small rounds {small_rounds}");
        assert!(large_rounds <= cap, "large rounds {large_rounds}");
    }

    #[test]
    #[should_panic(expected = "forest")]
    fn cyclic_input_rejected() {
        let g = generators::cycle(10);
        let _ = forest_connectivity(&g, 0.5, 0);
    }
}

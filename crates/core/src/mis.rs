//! Section 5: maximal independent set in `O(1/ε)` AMPC rounds.
//!
//! The algorithm computes the *lexicographically first* MIS with respect to
//! a uniformly random priority assignment ρ (Theorem 2).  Whether a vertex
//! belongs to LFMIS(G, ρ) is decided by the Yoshida–Nguyen–Onak query
//! process (Algorithm 3): recursively ask the lower-priority neighbours, in
//! priority order, whether *they* are in the MIS.  In AMPC a machine can run
//! that recursion inside one round because every probe is an adaptive DDS
//! read; the per-vertex recursion is truncated at `n^ε` queries
//! (Algorithm 5, `TruncatedQuery`) so no machine exceeds its space, and
//! vertices whose status could not be decided are retried in the next
//! iteration on the shrunken graph.  Lemma 5.2 bounds the number of
//! iterations by `O(1/ε)`.
//!
//! Because the output is exactly `LFMIS(G, ρ)` for the fixed priorities, the
//! tests compare against the *sequential* greedy MIS under the same
//! priorities — equality, not just "some valid MIS".

use crate::common::{adjacency_key, degree_key, round_robin_assign, AlgorithmResult};
use ampc_dds::{FxHashMap, Key, KeyTag, Value};
use ampc_graph::{permutation, Graph};
use ampc_runtime::{
    with_dds_backend, AmpcConfig, AmpcRuntime, DdsBackend, MachineContext, SnapshotView,
};

fn priority_key(v: u32) -> Key {
    Key::of(KeyTag::Priority, v as u64)
}

/// Outcome of one truncated query for a vertex in the current iteration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Probe {
    InMis,
    NotInMis,
    Unknown,
}

/// Adjacency entries prefetched per batched adaptive read while polling a
/// vertex's neighbours.
///
/// The neighbour list is sorted by priority and the poll stops at the first
/// neighbour with a larger priority, so a large batch would mostly fetch
/// entries the probe never looks at.  A small batch keeps the expected waste
/// below a constant handful of queries per probe, preserving the
/// `O(m + n)` total-communication bound of Proposition 5.1.
const MIS_READ_BATCH: usize = 4;

/// Algorithm 5 (`TruncatedQuery`): decide membership of `v` in
/// LFMIS(remaining graph, ρ) using at most `budget` recursive probes.
///
/// `memo` caches per-machine results within the round (assumption 4 of
/// Section 2.1 — machines may cache what they already queried).  Neighbour
/// slots are polled in batches of [`MIS_READ_BATCH`] via
/// [`MachineContext::read_many_slice`]; the probe budget is debited only for
/// entries the probe actually examines, so the decision sequence (and the
/// truncation points) are identical to the slot-by-slot loop.  Prefetched
/// slots the probe never reaches still count in the *machine-level* query
/// statistics — that bounded over-read (< [`MIS_READ_BATCH`] per probe) is
/// the price of the batch and is why the batch is small.
fn truncated_query<V: SnapshotView>(
    ctx: &mut MachineContext<V>,
    v: u32,
    budget: &mut i64,
    memo: &mut FxHashMap<u32, Probe>,
    depth: usize,
) -> Probe {
    if let Some(&cached) = memo.get(&v) {
        if cached != Probe::Unknown {
            return cached;
        }
    }
    if *budget <= 0 || depth > 10_000 {
        return Probe::Unknown;
    }
    *budget -= 1;

    let Some(priority_v) = ctx.read(priority_key(v)).map(|p| p.x) else {
        // Vertex no longer in the remaining graph: it was settled earlier.
        // (Settled vertices are removed before publishing, so this should
        // not be reachable, but be conservative.)
        return Probe::Unknown;
    };
    let degree = ctx.read(degree_key(v)).map(|d| d.x as usize).unwrap_or(0);

    // Neighbours were published sorted by increasing priority, so we can
    // stop as soon as we reach one with a larger priority than ours.
    // Fixed-size stack buffers keep the (deeply recursive) probe path free
    // of per-call heap allocations.
    let mut next_slot = 0usize;
    while next_slot < degree {
        if *budget <= 0 {
            return Probe::Unknown;
        }
        let batch_end = degree.min(next_slot + MIS_READ_BATCH.min(*budget as usize));
        let keys: [Key; MIS_READ_BATCH] = std::array::from_fn(|j| adjacency_key(v, next_slot + j));
        let mut entries: [Option<Value>; MIS_READ_BATCH] = [None; MIS_READ_BATCH];
        let batch = batch_end - next_slot;
        ctx.read_many_slice(&keys[..batch], &mut entries[..batch]);
        next_slot = batch_end;
        for entry in &entries[..batch] {
            // Debit per examined entry (not per fetched entry) so budget
            // exhaustion truncates the probe at exactly the same slot as
            // the unbatched loop did.
            if *budget <= 0 {
                return Probe::Unknown;
            }
            let Some(entry) = *entry else { continue };
            *budget -= 1;
            let u = entry.x as u32;
            let priority_u = entry.y;
            if priority_u > priority_v {
                memo.insert(v, Probe::InMis);
                return Probe::InMis;
            }
            match truncated_query(ctx, u, budget, memo, depth + 1) {
                Probe::InMis => {
                    memo.insert(v, Probe::NotInMis);
                    return Probe::NotInMis;
                }
                Probe::NotInMis => continue,
                Probe::Unknown => return Probe::Unknown,
            }
        }
    }
    memo.insert(v, Probe::InMis);
    Probe::InMis
}

/// Theorem 2: maximal independent set in `O(1/ε)` rounds.
///
/// Returns the membership bitmap of `LFMIS(G, ρ)` for the random priorities
/// derived from `seed`.
pub fn maximal_independent_set(
    graph: &Graph,
    epsilon: f64,
    seed: u64,
) -> AlgorithmResult<Vec<bool>> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    maximal_independent_set_with(
        graph,
        &AmpcConfig::for_graph(n.max(1), m, epsilon).with_seed(seed),
    )
}

/// [`maximal_independent_set`] with an explicit [`AmpcConfig`]: ε and seed
/// are taken from the config, which also selects the DDS backend.
pub fn maximal_independent_set_with(
    graph: &Graph,
    config: &AmpcConfig,
) -> AlgorithmResult<Vec<bool>> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let config = config.derive(n.max(1), n.max(1) + m);
    with_dds_backend!(config, |runtime| mis_impl(graph, runtime))
}

fn mis_impl<B: DdsBackend>(
    graph: &Graph,
    mut runtime: AmpcRuntime<B>,
) -> AlgorithmResult<Vec<bool>> {
    let n = graph.num_vertices();
    let epsilon = runtime.config().epsilon;
    let seed = runtime.config().seed;

    if n == 0 {
        return AlgorithmResult::new(Vec::new(), runtime.into_stats());
    }

    let priorities = permutation::random_priorities(n, seed ^ 0x4d_49_53);
    let mut in_mis = vec![false; n];
    let mut settled = vec![false; n];
    let mut remaining: Vec<u32> = (0..n as u32).collect();

    // Per-vertex query cap: the machine's space, n^ε.
    let per_vertex_budget = runtime.config().space_per_machine() as i64;
    let max_iterations = (6.0 / epsilon).ceil() as usize + 4;

    for _iteration in 0..max_iterations {
        if remaining.is_empty() {
            break;
        }

        // Publish the remaining graph: per-vertex priority, degree, and the
        // remaining neighbours sorted by priority (Algorithm 3, step 1).
        // Settled vertices and their incident edges are removed, matching
        // "remove u from the graph" in Algorithm 4.
        let mut pairs: Vec<(Key, Value)> = Vec::new();
        for &v in &remaining {
            let mut nbrs: Vec<u32> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| !settled[u as usize])
                .collect();
            nbrs.sort_unstable_by_key(|&u| (priorities[u as usize], u));
            pairs.push((priority_key(v), Value::scalar(priorities[v as usize])));
            pairs.push((degree_key(v), Value::scalar(nbrs.len() as u64)));
            for (i, &u) in nbrs.iter().enumerate() {
                pairs.push((
                    adjacency_key(v, i),
                    Value::pair(u as u64, priorities[u as usize]),
                ));
            }
        }
        runtime.scatter(pairs);

        // Adaptive round: every machine runs the truncated query process for
        // its assigned unknown vertices.
        let machines = runtime.config().num_machines();
        let assignments = round_robin_assign(&remaining, machines);
        let outcomes: Vec<Vec<(u32, Probe)>> = runtime
            .run_round(machines, |ctx| {
                let mut memo: FxHashMap<u32, Probe> = FxHashMap::default();
                let mut results = Vec::new();
                for &v in &assignments[ctx.machine_id()] {
                    let mut budget = per_vertex_budget;
                    let probe = truncated_query(ctx, v, &mut budget, &mut memo, 0);
                    results.push((v, probe));
                }
                results
            })
            .expect("MIS round failed");

        // Driver: apply the settled statuses (Algorithm 4, step 4a).
        let mut progressed = false;
        for (v, probe) in outcomes.into_iter().flatten() {
            match probe {
                Probe::InMis => {
                    if !settled[v as usize] {
                        in_mis[v as usize] = true;
                        settled[v as usize] = true;
                        progressed = true;
                    }
                    for &u in graph.neighbors(v) {
                        if !settled[u as usize] {
                            settled[u as usize] = true;
                            progressed = true;
                        }
                    }
                }
                Probe::NotInMis => {
                    // The probe proved some lower-priority neighbour is in the
                    // MIS; that neighbour's own probe (or a later iteration)
                    // will mark it.  Mark v as out now.
                    if !settled[v as usize] {
                        settled[v as usize] = true;
                        progressed = true;
                    }
                }
                Probe::Unknown => {}
            }
        }

        remaining.retain(|&v| !settled[v as usize]);

        if !progressed && !remaining.is_empty() {
            // Defensive fallback (never expected): finish the remainder with
            // the sequential greedy process on the driver so the result is
            // still exactly LFMIS(G, ρ).
            let mut order: Vec<u32> = remaining.clone();
            order.sort_unstable_by_key(|&v| (priorities[v as usize], v));
            for v in order {
                if settled[v as usize] {
                    continue;
                }
                in_mis[v as usize] = true;
                settled[v as usize] = true;
                for &u in graph.neighbors(v) {
                    settled[u as usize] = true;
                }
            }
            remaining.clear();
        }
    }

    AlgorithmResult::new(in_mis, runtime.into_stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::{generators, sequential};

    fn check_equals_lfmis(graph: &Graph, epsilon: f64, seed: u64) {
        let result = maximal_independent_set(graph, epsilon, seed);
        let priorities = permutation::random_priorities(graph.num_vertices(), seed ^ 0x4d_49_53);
        let expected = sequential::lexicographically_first_mis(graph, &priorities);
        assert_eq!(result.output, expected);
        assert!(sequential::is_maximal_independent_set(
            graph,
            &result.output
        ));
    }

    #[test]
    fn equals_sequential_lfmis_on_random_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi_gnm(300, 1200, seed);
            check_equals_lfmis(&g, 0.5, seed);
        }
    }

    #[test]
    fn equals_sequential_lfmis_on_sparse_graphs() {
        let g = generators::random_forest(400, 10, 5);
        check_equals_lfmis(&g, 0.5, 5);
        let p = generators::path(200);
        check_equals_lfmis(&p, 0.5, 7);
    }

    #[test]
    fn works_on_dense_and_star_graphs() {
        let star = generators::star(300);
        check_equals_lfmis(&star, 0.5, 2);
        let clique = generators::complete(40);
        let result = maximal_independent_set(&clique, 0.5, 2);
        assert_eq!(result.output.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn edgeless_graph_takes_everything() {
        let g = Graph::from_edges(50, &[]);
        let result = maximal_independent_set(&g, 0.5, 0);
        assert!(result.output.iter().all(|&b| b));
    }

    #[test]
    fn round_count_is_constant_not_logarithmic() {
        let small = generators::erdos_renyi_gnm(200, 600, 1);
        let large = generators::erdos_renyi_gnm(3000, 9000, 1);
        let small_rounds = maximal_independent_set(&small, 0.5, 1).rounds();
        let large_rounds = maximal_independent_set(&large, 0.5, 1).rounds();
        // O(1/ε) iterations, 2 rounds each — independent of n.
        assert!(small_rounds <= 2 * ((6.0 / 0.5) as usize + 5));
        assert!(large_rounds <= 2 * ((6.0 / 0.5) as usize + 5));
        assert!(large_rounds <= small_rounds + 6);
    }

    #[test]
    fn different_seeds_give_different_but_valid_sets() {
        let g = generators::erdos_renyi_gnm(200, 800, 9);
        let a = maximal_independent_set(&g, 0.5, 1).output;
        let b = maximal_independent_set(&g, 0.5, 2).output;
        assert!(sequential::is_maximal_independent_set(&g, &a));
        assert!(sequential::is_maximal_independent_set(&g, &b));
        // Two random priority orders on a graph of this size almost surely
        // produce different sets.
        assert_ne!(a, b);
    }

    #[test]
    fn total_communication_is_near_linear() {
        // Proposition 5.1: expected total query cost is O(m + n).
        let g = generators::erdos_renyi_gnm(1000, 4000, 4);
        let result = maximal_independent_set(&g, 0.5, 4);
        let budget = 40 * (g.num_edges() + g.num_vertices()) as u64;
        assert!(
            result.stats.total_queries() < budget,
            "total queries = {} exceeds {budget}",
            result.stats.total_queries()
        );
    }
}

//! Section 9: 2-edge connectivity in `O(log log_{m/n} n)` AMPC rounds.
//!
//! The BC-labeling pipeline of Algorithm 12 (after Tarjan–Vishkin and
//! Ben-David et al.):
//!
//! 1. compute a spanning forest (Corollary 7.2) and root it (Theorem 7);
//! 2. compute preorder numbers and subtree sizes (Lemmas 8.7–8.8);
//! 3. for every vertex compute `Low` / `High` — the minimum / maximum
//!    preorder number reachable from its subtree through a *non-tree* edge —
//!    by aggregating per-vertex values over preorder intervals with the RMQ
//!    structure of Lemma 8.9;
//! 4. a tree edge `(v, p(v))` is *critical* when no non-tree edge escapes
//!    `v`'s subtree, i.e. `Low(v) ≥ PN(v)` and `High(v) ≤ PN(v) + Size(v) − 1`
//!    — these are exactly the bridges of the graph;
//! 5. removing the bridges and running connectivity (Theorem 3) once more
//!    yields the 2-edge-connected components.
//!
//! The bridge criterion here is stated on the child's own preorder interval,
//! which is the form that is correct for an arbitrary (non-DFS) spanning
//! tree; the tests verify it against a sequential Hopcroft–Tarjan DFS.

use crate::common::AlgorithmResult;
use crate::connectivity::connectivity_with;
use crate::euler::{root_forest_with, SparseTableRmq};
use crate::msf::spanning_forest_with;
use ampc_dds::FxHashSet;
use ampc_graph::{Edge, Graph};
use ampc_runtime::{AmpcConfig, RunStats};

/// The BC-labeling of a graph: everything Algorithm 12 produces.
#[derive(Clone, Debug)]
pub struct BcLabeling {
    /// Bridges of the graph (normalised so `u < v`), sorted.
    pub bridges: Vec<Edge>,
    /// Labels of the 2-edge-connected components (smallest vertex id per
    /// component; bridges separate components).
    pub two_edge_components: Vec<u32>,
    /// Connected-component labels of the whole graph (from the spanning
    /// forest phase).
    pub connectivity: Vec<u32>,
    /// Parent pointers of the rooted spanning forest `F`.
    pub parent: Vec<u32>,
    /// Preorder numbers of the rooted spanning forest.
    pub preorder: Vec<u64>,
    /// Subtree sizes of the rooted spanning forest.
    pub subtree_size: Vec<u64>,
}

impl BcLabeling {
    /// `true` if `{u, v}` is a bridge.
    pub fn is_bridge(&self, u: u32, v: u32) -> bool {
        let e = Edge::new(u, v).normalized();
        self.bridges.binary_search(&e).is_ok()
    }

    /// `true` if `u` and `v` lie in the same 2-edge-connected component.
    pub fn same_two_edge_component(&self, u: u32, v: u32) -> bool {
        self.two_edge_components[u as usize] == self.two_edge_components[v as usize]
    }
}

/// Theorem 8: compute the BC-labeling (bridges + 2-edge-connected
/// components) of an undirected graph.
pub fn two_edge_connectivity(
    graph: &Graph,
    epsilon: f64,
    seed: u64,
) -> AlgorithmResult<BcLabeling> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    two_edge_connectivity_with(
        graph,
        &AmpcConfig::for_graph(n.max(1), m, epsilon).with_seed(seed),
    )
}

/// [`two_edge_connectivity`] with an explicit [`AmpcConfig`]: ε and seed
/// come from the config, which also selects the DDS backend for every stage
/// of the pipeline (spanning forest, forest rooting, final connectivity).
pub fn two_edge_connectivity_with(
    graph: &Graph,
    config: &AmpcConfig,
) -> AlgorithmResult<BcLabeling> {
    let n = graph.num_vertices();
    let seed = config.seed;
    let mut stats = RunStats::default();

    if n == 0 {
        let empty = BcLabeling {
            bridges: Vec::new(),
            two_edge_components: Vec::new(),
            connectivity: Vec::new(),
            parent: Vec::new(),
            preorder: Vec::new(),
            subtree_size: Vec::new(),
        };
        return AlgorithmResult::new(empty, stats);
    }

    // Step 1: spanning forest (Corollary 7.2).
    let sf = spanning_forest_with(graph, config);
    stats.absorb(sf.stats.clone());
    let forest_edge_ids: FxHashSet<u32> = sf.output.edges.iter().map(|e| e.id).collect();
    let forest_edges: Vec<Edge> = sf
        .output
        .edges
        .iter()
        .map(|e| Edge::new(e.u, e.v))
        .collect();
    let forest = Graph::from_edges(n, &forest_edges);

    // Step 2: root the forest and get preorder numbers / subtree sizes.
    let rooted = root_forest_with(&forest, None, &config.clone().with_seed(seed ^ 0x2e2e));
    stats.absorb(rooted.stats.clone());
    let rooted = rooted.output;

    // Step 3: per-vertex lo/hi over incident *non-tree* edges, then
    // subtree aggregation via RMQ over the preorder-indexed arrays.
    let mut lo = vec![0u64; n];
    let mut hi = vec![0u64; n];
    for v in 0..n as u32 {
        let pv = rooted.preorder[v as usize];
        let mut vlo = pv;
        let mut vhi = pv;
        for (u, edge_id) in graph.neighbors_with_ids(v) {
            if forest_edge_ids.contains(&edge_id) {
                continue;
            }
            let pu = rooted.preorder[u as usize];
            vlo = vlo.min(pu);
            vhi = vhi.max(pu);
        }
        lo[v as usize] = vlo;
        hi[v as usize] = vhi;
    }
    // Arrange lo/hi by preorder position and build the RMQ (Lemma 8.9).
    let mut lo_by_pre = vec![0u64; n];
    let mut hi_by_pre = vec![0u64; n];
    for v in 0..n {
        lo_by_pre[rooted.preorder[v] as usize] = lo[v];
        hi_by_pre[rooted.preorder[v] as usize] = hi[v];
    }
    let rmq_lo = SparseTableRmq::new(&lo_by_pre);
    let rmq_hi = SparseTableRmq::new(&hi_by_pre);

    // Step 4: critical tree edges = bridges.
    let mut bridges: Vec<Edge> = Vec::new();
    for v in 0..n as u32 {
        let p = rooted.parent[v as usize];
        if p == v {
            continue; // roots have no parent edge
        }
        let (lo_bound, hi_bound) = rooted.subtree_interval(v);
        let low = rmq_lo.query_min(lo_bound as usize, hi_bound as usize);
        let high = rmq_hi.query_max(lo_bound as usize, hi_bound as usize);
        if low >= lo_bound && high <= hi_bound {
            bridges.push(Edge::new(v, p).normalized());
        }
    }
    bridges.sort_unstable();

    // Step 5: remove the bridges and rerun connectivity for the
    // 2-edge-connected components.
    let bridge_set: FxHashSet<Edge> = bridges.iter().copied().collect();
    let remaining: Vec<Edge> = graph
        .edges()
        .iter()
        .filter(|e| !bridge_set.contains(&e.normalized()))
        .copied()
        .collect();
    let stripped = Graph::from_edges(n, &remaining);
    let tecc = connectivity_with(&stripped, &config.clone().with_seed(seed ^ 0x7ecc));
    stats.absorb(tecc.stats.clone());

    let labeling = BcLabeling {
        bridges,
        two_edge_components: tecc.output,
        connectivity: sf.output.labels.clone(),
        parent: rooted.parent,
        preorder: rooted.preorder,
        subtree_size: rooted.subtree_size,
    };
    AlgorithmResult::new(labeling, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::{generators, sequential};

    fn check(graph: &Graph, epsilon: f64, seed: u64) {
        let result = two_edge_connectivity(graph, epsilon, seed);
        let expected_bridges = sequential::bridges(graph);
        assert_eq!(result.output.bridges, expected_bridges);
        assert_eq!(
            result.output.two_edge_components,
            sequential::two_edge_connected_components(graph)
        );
        assert_eq!(
            result.output.connectivity,
            sequential::connected_components(graph)
        );
    }

    #[test]
    fn bridged_block_chains() {
        for seed in 0..3 {
            let g = generators::bridged_blocks(6, 4, 3, seed);
            check(&g, 0.5, seed);
        }
    }

    #[test]
    fn pure_trees_have_all_edges_as_bridges() {
        let g = generators::random_tree(150, 2);
        let result = two_edge_connectivity(&g, 0.5, 2);
        assert_eq!(result.output.bridges.len(), 149);
        // Every vertex is its own 2-edge-connected component.
        let distinct: std::collections::HashSet<u32> =
            result.output.two_edge_components.iter().copied().collect();
        assert_eq!(distinct.len(), 150);
    }

    #[test]
    fn cycles_have_no_bridges() {
        let g = generators::cycle(60);
        let result = two_edge_connectivity(&g, 0.5, 1);
        assert!(result.output.bridges.is_empty());
        assert!(result.output.two_edge_components.iter().all(|&l| l == 0));
    }

    #[test]
    fn random_sparse_graphs_match_sequential() {
        for seed in 0..3 {
            let g = generators::erdos_renyi_gnm(200, 260, seed);
            check(&g, 0.5, seed);
        }
    }

    #[test]
    fn random_denser_graphs_match_sequential() {
        let g = generators::connected_gnm(300, 900, 5);
        check(&g, 0.5, 5);
    }

    #[test]
    fn disconnected_graphs_are_handled() {
        let g = generators::planted_components(150, 5, 2, 7);
        check(&g, 0.5, 7);
    }

    #[test]
    fn helper_queries_work() {
        let g = generators::bridged_blocks(5, 3, 1, 4);
        let result = two_edge_connectivity(&g, 0.5, 4);
        for e in &result.output.bridges {
            assert!(result.output.is_bridge(e.u, e.v));
            assert!(result.output.is_bridge(e.v, e.u));
            assert!(!result.output.same_two_edge_component(e.u, e.v));
        }
        assert!(
            !result.output.is_bridge(0, 1) || sequential::bridges(&g).contains(&Edge::new(0, 1))
        );
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        let result = two_edge_connectivity(&g, 0.5, 0);
        assert!(result.output.bridges.is_empty());
        assert!(result.output.two_edge_components.is_empty());
    }
}

//! Section 6: undirected connectivity in `O(log log_{m/n} n)` AMPC rounds.
//!
//! The algorithm follows Andoni et al. [FOCS 2018] phase structure —
//! repeatedly raise every vertex's degree to the current budget `d`, sample
//! leaders, contract non-leaders onto leaders, and grow the budget to
//! `d^{1.4}` — with the key AMPC improvement of the paper: the degree-raising
//! step (`IncreaseDegrees`, Algorithm 6) runs a *bounded BFS from every
//! vertex inside a single round*, using adaptive reads, instead of the
//! `O(log D)` rounds of squaring MPC needs.
//!
//! Driver-side steps (leader sampling, contraction bookkeeping with a
//! union-find, rebuilding the contracted edge list) correspond to the parts
//! the paper implements "using standard MPC primitives".  Two documented
//! substitutions (see DESIGN.md):
//!
//! * the sparse-graph preprocessing of Lemma 6.2 (an external manuscript) is
//!   replaced by capping the leader probability at 1/2 and hooking every
//!   vertex onto the minimum id in its BFS ball when leaders are too dense
//!   to help;
//! * the budget cap is `n^{ε/2}` so a vertex's `d²` BFS queries never exceed
//!   its machine's `O(n^ε)` space, as prescribed in Section 6.

use crate::common::{adjacency_key, degree_key, round_robin_assign, AlgorithmResult};
use ampc_dds::{FxHashMap, FxHashSet, Key, Value};
use ampc_graph::{canonicalize_labels, Graph, UnionFind};
use ampc_runtime::{
    with_dds_backend, AmpcConfig, AmpcRuntime, DdsBackend, MachineContext, SnapshotView,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A contracted graph kept by the driver between phases: live vertex ids
/// (a subset of the original ids) and the edges between them.
struct ContractedGraph {
    vertices: Vec<u32>,
    edges: Vec<(u32, u32)>,
}

impl ContractedGraph {
    fn adjacency(&self) -> FxHashMap<u32, Vec<u32>> {
        let mut adj: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for &v in &self.vertices {
            adj.entry(v).or_default();
        }
        for &(u, v) in &self.edges {
            adj.entry(u).or_default().push(v);
            adj.entry(v).or_default().push(u);
        }
        adj
    }
}

/// Publish the adjacency of a contracted graph to the DDS (one scatter round).
fn publish_adjacency<B: DdsBackend>(
    runtime: &mut AmpcRuntime<B>,
    adjacency: &FxHashMap<u32, Vec<u32>>,
) {
    let mut pairs: Vec<(Key, Value)> = Vec::new();
    for (&v, nbrs) in adjacency {
        pairs.push((degree_key(v), Value::scalar(nbrs.len() as u64)));
        for (i, &u) in nbrs.iter().enumerate() {
            pairs.push((adjacency_key(v, i), Value::scalar(u as u64)));
        }
    }
    runtime.scatter(pairs);
}

/// Adjacency entries fetched per batched adaptive read during the BFS.
///
/// Large enough to amortize per-read accounting over a whole cache line of
/// neighbour slots, small enough that an early exit (budget `d` reached
/// mid-list) wastes at most a handful of prefetched entries.
const BFS_READ_BATCH: usize = 32;

/// Algorithm 6 (`IncreaseDegrees`) for a single vertex: a BFS from `v` by
/// adaptive reads that stops after visiting `d` vertices (or the whole
/// component) and at most `query_cap` reads.
///
/// The frontier expansion reads each vertex's adjacency list in batches of
/// up to [`BFS_READ_BATCH`] slots via [`MachineContext::read_many_into`] —
/// the slot keys are independent once the degree is known, so a real
/// deployment pipelines them in one network flight.  Visiting order (and
/// therefore the result) is identical to the slot-by-slot loop.  Query
/// accounting is not quite identical: when the ball fills mid-batch, the
/// remaining prefetched slots of that batch are still counted — a bounded
/// over-read (each batch is clamped to the `d - order.len()` discoveries
/// still acceptable, so the waste per BFS is less than one batch).
fn bounded_bfs<V: SnapshotView>(
    ctx: &mut MachineContext<V>,
    v: u32,
    d: usize,
    query_cap: u64,
) -> Vec<u32> {
    let mut visited: FxHashSet<u32> = FxHashSet::default();
    let mut order: Vec<u32> = Vec::with_capacity(d);
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut keys: Vec<Key> = Vec::with_capacity(BFS_READ_BATCH);
    let mut entries: Vec<Option<Value>> = Vec::with_capacity(BFS_READ_BATCH);
    visited.insert(v);
    order.push(v);
    queue.push_back(v);
    let start_queries = ctx.queries_issued();
    'outer: while let Some(x) = queue.pop_front() {
        if order.len() >= d {
            break;
        }
        if ctx.queries_issued() - start_queries >= query_cap {
            break;
        }
        let deg = match ctx.read(degree_key(x)) {
            Some(value) => value.x as usize,
            None => continue,
        };
        let mut next_slot = 0usize;
        while next_slot < deg {
            let remaining_budget = query_cap.saturating_sub(ctx.queries_issued() - start_queries);
            if remaining_budget == 0 {
                break 'outer;
            }
            // Clamp the batch to the query cap and to the discoveries the
            // ball can still accept, so an early exit wastes at most the
            // tail of one small batch.
            let remaining_ball = d.saturating_sub(order.len()).max(1);
            let batch_cap = BFS_READ_BATCH
                .min(remaining_budget as usize)
                .min(remaining_ball);
            let batch_end = deg.min(next_slot + batch_cap);
            keys.clear();
            keys.extend((next_slot..batch_end).map(|i| adjacency_key(x, i)));
            ctx.read_many_into(&keys, &mut entries);
            for entry in &entries {
                let Some(entry) = entry else { continue };
                let u = entry.x as u32;
                if visited.insert(u) {
                    order.push(u);
                    queue.push_back(u);
                    if order.len() >= d {
                        break 'outer;
                    }
                }
            }
            next_slot = batch_end;
        }
    }
    order
}

/// Connected components in the AMPC model (Algorithm 7 / Theorem 3).
///
/// Returns canonical component labels (`labels[v]` = smallest original
/// vertex id in `v`'s component) together with the run statistics.
pub fn connectivity(graph: &Graph, epsilon: f64, seed: u64) -> AlgorithmResult<Vec<u32>> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    connectivity_with(
        graph,
        &AmpcConfig::for_graph(n.max(1), m, epsilon).with_seed(seed),
    )
}

/// [`connectivity`] with an explicit [`AmpcConfig`]: ε and seed are taken
/// from the config, which also selects the DDS backend, thread cap and
/// budget handling for every round the algorithm runs.
pub fn connectivity_with(graph: &Graph, config: &AmpcConfig) -> AlgorithmResult<Vec<u32>> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let config = config.derive(n.max(1), n.max(1) + m);
    with_dds_backend!(config, |runtime| connectivity_impl(graph, runtime))
}

fn connectivity_impl<B: DdsBackend>(
    graph: &Graph,
    mut runtime: AmpcRuntime<B>,
) -> AlgorithmResult<Vec<u32>> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let epsilon = runtime.config().epsilon;
    let seed = runtime.config().seed;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1234_5678);

    if n == 0 {
        return AlgorithmResult::new(Vec::new(), runtime.into_stats());
    }

    // Current contracted graph and the original-vertex labelling.
    let mut current = ContractedGraph {
        vertices: (0..n as u32).collect(),
        edges: graph.edges().iter().map(|e| (e.u, e.v)).collect(),
    };
    let mut labels: Vec<u32> = (0..n as u32).collect();

    // Initial budget d = sqrt(T / n) = sqrt((n + m) / n), capped so that the
    // d² BFS queries of one vertex fit inside one machine's space.
    let space = runtime.config().space_per_machine();
    let d_cap = ((n.max(2) as f64).powf(epsilon / 2.0).ceil() as usize).max(2);
    let mut d = (((n + m) as f64 / n as f64).sqrt().ceil() as usize).clamp(2, d_cap);

    let max_phases =
        4 * ((n.max(4) as f64).ln().ln().ceil() as usize + 2) + (4.0 / epsilon).ceil() as usize;
    for _phase in 0..max_phases {
        if current.edges.is_empty() {
            break;
        }
        let adjacency = current.adjacency();

        // Round 1 of the phase: publish the current graph.
        publish_adjacency(&mut runtime, &adjacency);

        // Round 2: IncreaseDegrees — bounded BFS from every live vertex.
        let machines = runtime.config().num_machines();
        let assignments = round_robin_assign(&current.vertices, machines);
        let query_cap = (space as u64).max((d * d) as u64);
        let balls: Vec<Vec<(u32, Vec<u32>)>> = runtime
            .run_round(machines, |ctx| {
                let mut out = Vec::new();
                for &v in &assignments[ctx.machine_id()] {
                    out.push((v, bounded_bfs(ctx, v, d, query_cap)));
                }
                out
            })
            .expect("IncreaseDegrees round failed");

        // Driver: leader sampling and contraction (standard MPC primitives).
        let live_count = current.vertices.len();
        let leader_probability = (2.0 * (n.max(2) as f64).ln() / d as f64).min(1.0);
        let use_leaders = leader_probability <= 0.5;
        let mut is_leader: FxHashSet<u32> = FxHashSet::default();
        if use_leaders {
            for &v in &current.vertices {
                if rng.gen_bool(leader_probability) {
                    is_leader.insert(v);
                }
            }
        }

        let mut uf_index: FxHashMap<u32, u32> = FxHashMap::default();
        for (i, &v) in current.vertices.iter().enumerate() {
            uf_index.insert(v, i as u32);
        }
        let mut uf = UnionFind::new(live_count);

        for ball in balls.iter().flatten() {
            let (v, visited) = (ball.0, &ball.1);
            if visited.len() <= 1 {
                continue; // isolated vertex
            }
            let target = if use_leaders {
                if is_leader.contains(&v) {
                    continue; // leaders stay put
                }
                match visited
                    .iter()
                    .copied()
                    .filter(|u| is_leader.contains(u))
                    .min()
                {
                    Some(leader) => Some(leader),
                    // No leader in the ball: if the whole component was
                    // explored (|ball| < d) hook onto its minimum, otherwise
                    // stay put for this phase (w.h.p. rare).
                    None if visited.len() < d => visited.iter().copied().min(),
                    None => None,
                }
            } else {
                // Dense-leader regime (small d): hook everything onto the
                // minimum of its ball; vertex count at least halves.
                visited.iter().copied().min()
            };
            if let Some(t) = target {
                if t != v {
                    uf.union(uf_index[&v], uf_index[&t]);
                }
            }
        }

        // New super-vertex of every live vertex = minimum original id in its
        // union-find group.
        let mut group_min: FxHashMap<u32, u32> = FxHashMap::default();
        for &v in &current.vertices {
            let root = uf.find(uf_index[&v]);
            let entry = group_min.entry(root).or_insert(v);
            if v < *entry {
                *entry = v;
            }
        }
        let mut super_of: FxHashMap<u32, u32> = FxHashMap::default();
        for &v in &current.vertices {
            super_of.insert(v, group_min[&uf.find(uf_index[&v])]);
        }

        // Contract the edge list (including the edges discovered by the BFS,
        // as the paper's step (a) adds them to G).
        let mut new_edges: FxHashSet<(u32, u32)> = FxHashSet::default();
        for &(u, v) in &current.edges {
            let (su, sv) = (super_of[&u], super_of[&v]);
            if su != sv {
                new_edges.insert((su.min(sv), su.max(sv)));
            }
        }
        for ball in balls.iter().flatten() {
            let sv = super_of[&ball.0];
            for &u in &ball.1 {
                let su = super_of[&u];
                if su != sv {
                    new_edges.insert((su.min(sv), su.max(sv)));
                }
            }
        }

        let mut new_vertices: Vec<u32> = super_of
            .values()
            .copied()
            .collect::<FxHashSet<_>>()
            .into_iter()
            .collect();
        new_vertices.sort_unstable();

        // Update the original-vertex labels through this contraction.
        for label in labels.iter_mut() {
            if let Some(&s) = super_of.get(label) {
                *label = s;
            }
        }

        current = ContractedGraph {
            vertices: new_vertices,
            edges: new_edges.into_iter().collect(),
        };

        // Grow the budget double-exponentially, capped at n^{ε/2}.
        d = ((d as f64).powf(1.4).ceil() as usize).clamp(2, d_cap);
    }

    // Anything still carrying edges at this point (only possible if the
    // phase cap was hit) is finished off on the driver, mirroring the final
    // "fits in one machine" step of the paper.
    if !current.edges.is_empty() {
        let mut uf_index: FxHashMap<u32, u32> = FxHashMap::default();
        for (i, &v) in current.vertices.iter().enumerate() {
            uf_index.insert(v, i as u32);
        }
        let mut uf = UnionFind::new(current.vertices.len());
        for &(u, v) in &current.edges {
            uf.union(uf_index[&u], uf_index[&v]);
        }
        let mut group_min: FxHashMap<u32, u32> = FxHashMap::default();
        for &v in &current.vertices {
            let root = uf.find(uf_index[&v]);
            let entry = group_min.entry(root).or_insert(v);
            if v < *entry {
                *entry = v;
            }
        }
        for label in labels.iter_mut() {
            if let Some(&idx) = uf_index.get(label) {
                let root = uf.find(idx);
                *label = group_min[&root];
            }
        }
    }

    AlgorithmResult::new(canonicalize_labels(&labels), runtime.into_stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::{generators, sequential};

    #[test]
    fn matches_sequential_on_planted_components() {
        for seed in 0..3 {
            let g = generators::planted_components(400, 7, 3, seed);
            let result = connectivity(&g, 0.5, seed);
            assert_eq!(
                result.output,
                sequential::connected_components(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_sequential_on_dense_connected_graph() {
        let g = generators::connected_gnm(500, 3000, 2);
        let result = connectivity(&g, 0.5, 2);
        assert_eq!(result.output, sequential::connected_components(&g));
        let distinct: std::collections::HashSet<u32> = result.output.iter().copied().collect();
        assert_eq!(distinct.len(), 1);
    }

    #[test]
    fn matches_sequential_on_sparse_forest() {
        let g = generators::random_forest(300, 12, 4);
        let result = connectivity(&g, 0.5, 4);
        assert_eq!(result.output, sequential::connected_components(&g));
    }

    #[test]
    fn handles_isolated_vertices_and_empty_graph() {
        let empty = Graph::from_edges(0, &[]);
        assert!(connectivity(&empty, 0.5, 0).output.is_empty());

        let isolated = Graph::from_edges(5, &[ampc_graph::Edge::new(1, 3)]);
        let result = connectivity(&isolated, 0.5, 0);
        assert_eq!(result.output, vec![0, 1, 2, 1, 4]);
    }

    #[test]
    fn round_count_is_doubly_logarithmic_not_diameter_bound() {
        // High-diameter dense graph: path of cliques.  MPC label propagation
        // needs Θ(D) rounds; the AMPC algorithm should stay in single digits
        // of phases regardless of D.
        let g = generators::path_of_cliques(16, 64); // D ≈ 128
        let result = connectivity(&g, 0.5, 3);
        assert_eq!(result.output, sequential::connected_components(&g));
        assert!(result.rounds() <= 30, "rounds = {}", result.rounds());
    }

    #[test]
    fn works_on_cycles_too() {
        let g = generators::two_cycles(600);
        let result = connectivity(&g, 0.5, 9);
        assert_eq!(result.output, sequential::connected_components(&g));
    }

    #[test]
    fn larger_epsilon_means_fewer_rounds() {
        let g = generators::connected_gnm(2000, 6000, 5);
        let coarse = connectivity(&g, 0.7, 5);
        let fine = connectivity(&g, 0.3, 5);
        assert_eq!(coarse.output, fine.output);
        assert!(
            coarse.rounds() <= fine.rounds() + 2,
            "coarse {} fine {}",
            coarse.rounds(),
            fine.rounds()
        );
    }
}

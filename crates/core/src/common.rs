//! Shared plumbing for the AMPC algorithms.
//!
//! Every algorithm in this crate follows the same pattern the paper uses:
//! the parts that *need* adaptivity (pointer chasing, truncated query
//! processes, bounded BFS) run inside AMPC rounds through
//! [`ampc_runtime::AmpcRuntime`], while the glue the paper describes as
//! "implementable with standard MPC primitives, such as sorting, duplicate
//! removal, etc." (Section 3) runs on the driver between rounds.  This
//! module holds the result wrapper and the small helpers every algorithm
//! shares: work assignment of items to machines and DDS key construction
//! for adjacency lists.

use ampc_dds::{Key, KeyTag, Value};
use ampc_graph::Graph;
use ampc_runtime::RunStats;

/// An algorithm's answer together with the execution statistics the paper's
/// theorems bound (rounds, queries, writes).
#[derive(Clone, Debug)]
pub struct AlgorithmResult<T> {
    /// The algorithm's output.
    pub output: T,
    /// Round-by-round execution statistics.
    pub stats: RunStats,
}

impl<T> AlgorithmResult<T> {
    /// Bundle an output with its statistics.
    pub fn new(output: T, stats: RunStats) -> Self {
        AlgorithmResult { output, stats }
    }

    /// Number of AMPC rounds the algorithm used.
    pub fn rounds(&self) -> usize {
        self.stats.num_rounds()
    }
}

/// Assign `items` to `machines` in round-robin order.
///
/// Matches the model's "vertices are randomly assigned to machines": the
/// items handed in are already in randomised order (vertex ids are shuffled
/// by the generators, samples are random subsets), so round-robin gives the
/// same balanced, input-independent distribution while staying reproducible.
pub fn round_robin_assign<T: Clone>(items: &[T], machines: usize) -> Vec<Vec<T>> {
    let machines = machines.max(1);
    let mut buckets: Vec<Vec<T>> = vec![Vec::with_capacity(items.len() / machines + 1); machines];
    for (i, item) in items.iter().enumerate() {
        buckets[i % machines].push(item.clone());
    }
    buckets
}

/// Number of machines that gives each machine roughly `per_machine` items.
pub fn machines_for(items: usize, per_machine: usize) -> usize {
    items.div_ceil(per_machine.max(1)).max(1)
}

/// DDS key for the degree of vertex `v` in the currently published graph.
pub fn degree_key(v: u32) -> Key {
    Key::of(KeyTag::Degree, v as u64)
}

/// DDS key for the `i`-th adjacency entry of vertex `v`.
pub fn adjacency_key(v: u32, i: usize) -> Key {
    Key::with_index(KeyTag::Adjacency, v as u64, i as u64)
}

/// DDS key for the `i`-th *weighted* adjacency entry of vertex `v`.
pub fn weighted_adjacency_key(v: u32, i: usize) -> Key {
    Key::with_index(KeyTag::WeightedAdjacency, v as u64, i as u64)
}

/// Encode a weighted adjacency entry: neighbour + originating edge id in
/// `x`, weight in `y`.
pub fn encode_weighted_neighbor(neighbor: u32, edge_id: u32, weight: u64) -> Value {
    Value::pair(((edge_id as u64) << 32) | neighbor as u64, weight)
}

/// Decode a weighted adjacency entry into `(neighbor, edge_id, weight)`.
pub fn decode_weighted_neighbor(value: Value) -> (u32, u32, u64) {
    let neighbor = (value.x & 0xFFFF_FFFF) as u32;
    let edge_id = (value.x >> 32) as u32;
    (neighbor, edge_id, value.y)
}

/// Key-value pairs publishing the adjacency structure of `graph` (degrees
/// plus per-slot neighbours), the layout used by MIS and connectivity.
pub fn adjacency_pairs(graph: &Graph) -> Vec<(Key, Value)> {
    let n = graph.num_vertices();
    let mut pairs = Vec::with_capacity(n + 2 * graph.num_edges());
    for v in 0..n as u32 {
        pairs.push((degree_key(v), Value::scalar(graph.degree(v) as u64)));
        for (i, &u) in graph.neighbors(v).iter().enumerate() {
            pairs.push((adjacency_key(v, i), Value::scalar(u as u64)));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::generators;

    #[test]
    fn round_robin_balances_within_one() {
        let items: Vec<u32> = (0..103).collect();
        let buckets = round_robin_assign(&items, 10);
        assert_eq!(buckets.len(), 10);
        let sizes: Vec<usize> = buckets.iter().map(|b| b.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // Every item appears exactly once.
        let mut all: Vec<u32> = buckets.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, items);
    }

    #[test]
    fn round_robin_with_zero_machines_clamps() {
        let buckets = round_robin_assign(&[1, 2, 3], 0);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0], vec![1, 2, 3]);
    }

    #[test]
    fn machines_for_rounds_up() {
        assert_eq!(machines_for(100, 10), 10);
        assert_eq!(machines_for(101, 10), 11);
        assert_eq!(machines_for(0, 10), 1);
        assert_eq!(machines_for(5, 0), 5);
    }

    #[test]
    fn weighted_neighbor_encoding_round_trips() {
        let value = encode_weighted_neighbor(123_456, 789, 42_000_000_000);
        assert_eq!(
            decode_weighted_neighbor(value),
            (123_456, 789, 42_000_000_000)
        );
        let value = encode_weighted_neighbor(u32::MAX, u32::MAX, u64::MAX);
        assert_eq!(
            decode_weighted_neighbor(value),
            (u32::MAX, u32::MAX, u64::MAX)
        );
    }

    #[test]
    fn adjacency_pairs_cover_every_slot() {
        let g = generators::cycle(10);
        let pairs = adjacency_pairs(&g);
        // 10 degrees + 20 adjacency slots.
        assert_eq!(pairs.len(), 30);
        assert!(pairs.iter().any(|(k, v)| *k == degree_key(3) && v.x == 2));
    }

    #[test]
    fn algorithm_result_reports_rounds() {
        let result = AlgorithmResult::new(42, RunStats::default());
        assert_eq!(result.output, 42);
        assert_eq!(result.rounds(), 0);
    }
}

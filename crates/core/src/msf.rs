//! Section 7: minimum spanning forest in `O(log log_{m/n} n)` AMPC rounds.
//!
//! The structure mirrors the connectivity algorithm (Section 6): in every
//! phase each vertex runs a *local, truncated Prim's algorithm*
//! (`MSFIncreaseDegree`, Algorithm 8) through adaptive reads — growing a
//! local tree until it spans `d` vertices — and every edge that local Prim
//! selects is a genuine MSF edge by the cut property (weights are distinct).
//! The committed edges are then contracted, the per-vertex budget grows to
//! `d^{1.4}`, and the phase repeats until no edges remain.
//!
//! Documented deviation (DESIGN.md): contraction is performed along the MSF
//! edges committed in the phase (their connected components become the new
//! super-vertices) rather than by a separate leader-sampling pass.  This is
//! always a contraction along MSF edges — exactly what the paper's
//! leader-based contraction produces — and shrinks at least as fast.

use crate::common::{
    decode_weighted_neighbor, degree_key, encode_weighted_neighbor, round_robin_assign,
    weighted_adjacency_key, AlgorithmResult,
};
use ampc_dds::{FxHashMap, FxHashSet, Key, Value};
use ampc_graph::{canonicalize_labels, Graph, UnionFind, WeightedEdge};
use ampc_runtime::{
    with_dds_backend, AmpcConfig, AmpcRuntime, DdsBackend, MachineContext, SnapshotView,
};
use std::collections::BinaryHeap;

/// Output of the minimum spanning forest algorithm.
#[derive(Clone, Debug)]
pub struct MsfOutput {
    /// The MSF edges, identified by their ids in the input graph.
    pub edges: Vec<WeightedEdge>,
    /// Total weight of the forest.
    pub total_weight: u64,
    /// Component labels induced by the forest (smallest vertex id per
    /// component) — a spanning-forest connectivity labelling for free.
    pub labels: Vec<u32>,
}

/// One edge of the contracted graph kept by the driver between phases.
#[derive(Clone, Copy, Debug)]
struct ContractedEdge {
    u: u32,
    v: u32,
    weight: u64,
    /// Id of the originating edge in the input graph.
    original: u32,
}

/// Publish the weighted adjacency of the contracted graph (one scatter).
fn publish_weighted_adjacency<B: DdsBackend>(
    runtime: &mut AmpcRuntime<B>,
    vertices: &[u32],
    edges: &[ContractedEdge],
) {
    let mut adjacency: FxHashMap<u32, Vec<(u32, u32, u64)>> = FxHashMap::default();
    for &v in vertices {
        adjacency.entry(v).or_default();
    }
    for e in edges {
        adjacency
            .entry(e.u)
            .or_default()
            .push((e.v, e.original, e.weight));
        adjacency
            .entry(e.v)
            .or_default()
            .push((e.u, e.original, e.weight));
    }
    let mut pairs: Vec<(Key, Value)> = Vec::new();
    for (&v, nbrs) in &adjacency {
        pairs.push((degree_key(v), Value::scalar(nbrs.len() as u64)));
        for (i, &(u, id, w)) in nbrs.iter().enumerate() {
            pairs.push((
                weighted_adjacency_key(v, i),
                encode_weighted_neighbor(u, id, w),
            ));
        }
    }
    runtime.scatter(pairs);
}

/// Weighted-adjacency slots fetched per batched adaptive read while the
/// local Prim expansion ingests a vertex's edge list.
///
/// Once the degree is known the slot keys are independent, so a real
/// deployment pipelines them in one flight.  Each batch is clamped to the
/// remaining query cap *before* it is issued, so the cap truncates the
/// expansion at exactly the same slot as the single-read loop did — the
/// query budget is debited identically (asserted by
/// `batched_local_prim_debits_budget_like_single_reads`).
const PRIM_READ_BATCH: usize = 16;

/// Algorithm 8 (`MSFIncreaseDegree`) for one vertex: run Prim's algorithm
/// from `v` through adaptive reads until the local tree `F_v` holds `d`
/// vertices, the component is exhausted, or the query cap is reached.
/// Returns the ids of the original edges selected (all of them MSF edges by
/// the cut property).
fn local_prim<V: SnapshotView>(
    ctx: &mut MachineContext<V>,
    v: u32,
    d: usize,
    query_cap: u64,
) -> Vec<(u32, u32, u32)> {
    // Min-heap of candidate edges leaving the local tree:
    // (Reverse(weight), inside, outside, original id).
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32, u32, u32)>> = BinaryHeap::new();
    let mut in_tree: FxHashSet<u32> = FxHashSet::default();
    let mut selected: Vec<(u32, u32, u32)> = Vec::new();
    let start_queries = ctx.queries_issued();

    let expand = |x: u32, ctx: &mut MachineContext<V>, heap: &mut BinaryHeap<_>| {
        let Some(deg) = ctx.read(degree_key(x)).map(|d| d.x as usize) else {
            return;
        };
        let mut keys: [Key; PRIM_READ_BATCH] = [degree_key(0); PRIM_READ_BATCH];
        let mut entries: [Option<Value>; PRIM_READ_BATCH] = [None; PRIM_READ_BATCH];
        let mut next_slot = 0usize;
        while next_slot < deg {
            let used = ctx.queries_issued() - start_queries;
            if used >= query_cap {
                return;
            }
            // Clamp the batch to the remaining cap so the truncation point
            // is identical to the slot-by-slot loop.
            let room = (query_cap - used) as usize;
            let batch_end = deg.min(next_slot + PRIM_READ_BATCH.min(room));
            let batch = batch_end - next_slot;
            for (j, key) in keys[..batch].iter_mut().enumerate() {
                *key = weighted_adjacency_key(x, next_slot + j);
            }
            ctx.read_many_slice(&keys[..batch], &mut entries[..batch]);
            for entry in &entries[..batch] {
                let Some(entry) = *entry else { continue };
                let (nbr, id, w) = decode_weighted_neighbor(entry);
                heap.push(std::cmp::Reverse((w, x, nbr, id)));
            }
            next_slot = batch_end;
        }
    };

    in_tree.insert(v);
    expand(v, ctx, &mut heap);

    while in_tree.len() < d {
        if ctx.queries_issued() - start_queries >= query_cap {
            break;
        }
        let Some(std::cmp::Reverse((_, from, to, id))) = heap.pop() else {
            break;
        };
        if in_tree.contains(&to) {
            continue;
        }
        in_tree.insert(to);
        selected.push((from, to, id));
        expand(to, ctx, &mut heap);
    }
    selected
}

/// Algorithm 9: compute the minimum spanning forest of a weighted graph.
///
/// # Panics
/// If the graph carries no edge weights.
pub fn minimum_spanning_forest(
    graph: &Graph,
    epsilon: f64,
    seed: u64,
) -> AlgorithmResult<MsfOutput> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    minimum_spanning_forest_with(
        graph,
        &AmpcConfig::for_graph(n.max(1), m, epsilon).with_seed(seed),
    )
}

/// [`minimum_spanning_forest`] with an explicit [`AmpcConfig`]: ε and seed
/// are taken from the config, which also selects the DDS backend.
pub fn minimum_spanning_forest_with(
    graph: &Graph,
    config: &AmpcConfig,
) -> AlgorithmResult<MsfOutput> {
    assert!(
        graph.is_weighted() || graph.num_edges() == 0,
        "minimum_spanning_forest needs a weighted graph"
    );
    let edges = if graph.num_edges() == 0 {
        Vec::new()
    } else {
        graph.weighted_edges()
    };
    msf_dispatch(graph, &edges, config)
}

/// Corollary 7.2: a spanning forest of an *unweighted* graph, obtained by
/// assigning each edge its id as a (distinct) weight.
pub fn spanning_forest(graph: &Graph, epsilon: f64, seed: u64) -> AlgorithmResult<MsfOutput> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    spanning_forest_with(
        graph,
        &AmpcConfig::for_graph(n.max(1), m, epsilon).with_seed(seed),
    )
}

/// [`spanning_forest`] with an explicit [`AmpcConfig`].
pub fn spanning_forest_with(graph: &Graph, config: &AmpcConfig) -> AlgorithmResult<MsfOutput> {
    let edges: Vec<WeightedEdge> = graph
        .edges()
        .iter()
        .enumerate()
        .map(|(id, e)| WeightedEdge {
            u: e.u,
            v: e.v,
            weight: id as u64 + 1,
            id: id as u32,
        })
        .collect();
    msf_dispatch(graph, &edges, config)
}

fn msf_dispatch(
    graph: &Graph,
    all_edges: &[WeightedEdge],
    config: &AmpcConfig,
) -> AlgorithmResult<MsfOutput> {
    let n = graph.num_vertices();
    let m = all_edges.len();
    let config = config.derive(n.max(1), n.max(1) + m);
    with_dds_backend!(config, |runtime| msf_impl(graph, all_edges, runtime))
}

fn msf_impl<B: DdsBackend>(
    graph: &Graph,
    all_edges: &[WeightedEdge],
    mut runtime: AmpcRuntime<B>,
) -> AlgorithmResult<MsfOutput> {
    let n = graph.num_vertices();
    let m = all_edges.len();
    let epsilon = runtime.config().epsilon;

    if n == 0 {
        let output = MsfOutput {
            edges: Vec::new(),
            total_weight: 0,
            labels: Vec::new(),
        };
        return AlgorithmResult::new(output, runtime.into_stats());
    }

    let mut vertices: Vec<u32> = (0..n as u32).collect();
    let mut edges: Vec<ContractedEdge> = all_edges
        .iter()
        .map(|e| ContractedEdge {
            u: e.u,
            v: e.v,
            weight: e.weight,
            original: e.id,
        })
        .collect();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut committed: FxHashSet<u32> = FxHashSet::default();

    let space = runtime.config().space_per_machine();
    let d_cap = ((n.max(2) as f64).powf(epsilon / 2.0).ceil() as usize).max(2);
    let mut d = (((n + m) as f64 / n as f64).sqrt().ceil() as usize).clamp(2, d_cap);

    let max_phases =
        4 * ((n.max(4) as f64).ln().ln().ceil() as usize + 2) + (4.0 / epsilon).ceil() as usize;
    for _phase in 0..max_phases {
        if edges.is_empty() {
            break;
        }

        // Round 1: publish the contracted weighted graph.
        publish_weighted_adjacency(&mut runtime, &vertices, &edges);

        // Round 2: local Prim from every live vertex.
        let machines = runtime.config().num_machines();
        let assignments = round_robin_assign(&vertices, machines);
        let query_cap = (space as u64).max((d * d) as u64);
        let found: Vec<Vec<(u32, u32, u32)>> = runtime
            .run_round(machines, |ctx| {
                let mut out = Vec::new();
                for &v in &assignments[ctx.machine_id()] {
                    out.extend(local_prim(ctx, v, d, query_cap));
                }
                out
            })
            .expect("MSFIncreaseDegree round failed");

        // Driver: commit the discovered MSF edges and contract along them.
        let mut uf_index: FxHashMap<u32, u32> = FxHashMap::default();
        for (i, &v) in vertices.iter().enumerate() {
            uf_index.insert(v, i as u32);
        }
        let mut uf = UnionFind::new(vertices.len());
        let mut progressed = false;
        for &(from, to, original) in found.iter().flatten() {
            committed.insert(original);
            if uf.union(uf_index[&from], uf_index[&to]) {
                progressed = true;
            }
        }
        if !progressed {
            // No vertex found an outgoing edge (only possible when every
            // remaining edge is a self-loop of the contraction) — done.
            break;
        }

        let mut group_min: FxHashMap<u32, u32> = FxHashMap::default();
        for &v in &vertices {
            let root = uf.find(uf_index[&v]);
            let entry = group_min.entry(root).or_insert(v);
            if v < *entry {
                *entry = v;
            }
        }
        let mut super_of: FxHashMap<u32, u32> = FxHashMap::default();
        for &v in &vertices {
            super_of.insert(v, group_min[&uf.find(uf_index[&v])]);
        }

        // Contract the edge list: drop self-loops and keep only the lightest
        // parallel edge between each super-vertex pair (cycle property).
        let mut best: FxHashMap<(u32, u32), ContractedEdge> = FxHashMap::default();
        for e in &edges {
            let (su, sv) = (super_of[&e.u], super_of[&e.v]);
            if su == sv {
                continue;
            }
            let key = (su.min(sv), su.max(sv));
            let candidate = ContractedEdge {
                u: key.0,
                v: key.1,
                weight: e.weight,
                original: e.original,
            };
            match best.get(&key) {
                Some(cur)
                    if (cur.weight, cur.original) <= (candidate.weight, candidate.original) => {}
                _ => {
                    best.insert(key, candidate);
                }
            }
        }
        edges = best.into_values().collect();
        let mut new_vertices: Vec<u32> = super_of
            .values()
            .copied()
            .collect::<FxHashSet<_>>()
            .into_iter()
            .collect();
        new_vertices.sort_unstable();
        vertices = new_vertices;

        for label in labels.iter_mut() {
            if let Some(&s) = super_of.get(label) {
                *label = s;
            }
        }

        d = ((d as f64).powf(1.4).ceil() as usize).clamp(2, d_cap);
    }

    // Phase-cap fallback (mirrors the final single-machine step): finish any
    // remaining contracted edges with Kruskal on the driver.
    if !edges.is_empty() {
        let mut uf_index: FxHashMap<u32, u32> = FxHashMap::default();
        for (i, &v) in vertices.iter().enumerate() {
            uf_index.insert(v, i as u32);
        }
        let mut uf = UnionFind::new(vertices.len());
        let mut remaining = edges.clone();
        remaining.sort_unstable_by_key(|e| (e.weight, e.original));
        for e in remaining {
            if uf.union(uf_index[&e.u], uf_index[&e.v]) {
                committed.insert(e.original);
            }
        }
        let mut group_min: FxHashMap<u32, u32> = FxHashMap::default();
        for &v in &vertices {
            let root = uf.find(uf_index[&v]);
            let entry = group_min.entry(root).or_insert(v);
            if v < *entry {
                *entry = v;
            }
        }
        for label in labels.iter_mut() {
            if let Some(&idx) = uf_index.get(label) {
                *label = group_min[&uf.find(idx)];
            }
        }
    }

    let by_id: FxHashMap<u32, &WeightedEdge> = all_edges.iter().map(|e| (e.id, e)).collect();
    let mut msf_edges: Vec<WeightedEdge> = committed.iter().map(|id| *by_id[id]).collect();
    msf_edges.sort_unstable_by_key(|e| e.id);
    let total_weight = msf_edges.iter().map(|e| e.weight).sum();
    let output = MsfOutput {
        edges: msf_edges,
        total_weight,
        labels: canonicalize_labels(&labels),
    };
    AlgorithmResult::new(output, runtime.into_stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::{generators, sequential};

    fn weighted(n: usize, extra: usize, seed: u64) -> Graph {
        let base = generators::connected_gnm(n, extra, seed);
        generators::with_random_weights(&base, seed + 1000)
    }

    #[test]
    fn matches_kruskal_weight_on_connected_graphs() {
        for seed in 0..3 {
            let g = weighted(300, 900, seed);
            let result = minimum_spanning_forest(&g, 0.5, seed);
            let (kruskal, kruskal_weight) = sequential::kruskal_msf(&g);
            assert_eq!(result.output.total_weight, kruskal_weight, "seed {seed}");
            assert_eq!(result.output.edges.len(), kruskal.len());
        }
    }

    #[test]
    fn msf_edges_form_a_forest_spanning_each_component() {
        let g = weighted(200, 400, 11);
        let result = minimum_spanning_forest(&g, 0.5, 11);
        // n - 1 edges for a connected graph, and the edge set is acyclic.
        assert_eq!(result.output.edges.len(), 199);
        let mut uf = ampc_graph::UnionFind::new(200);
        for e in &result.output.edges {
            assert!(uf.union(e.u, e.v), "MSF edges must be acyclic");
        }
    }

    #[test]
    fn works_on_disconnected_weighted_graphs() {
        let base = generators::random_forest(150, 5, 3);
        let g = generators::with_random_weights(&base, 4);
        let result = minimum_spanning_forest(&g, 0.5, 3);
        let (_, kruskal_weight) = sequential::kruskal_msf(&g);
        assert_eq!(result.output.total_weight, kruskal_weight);
        assert_eq!(result.output.edges.len(), 145);
        assert_eq!(result.output.labels, sequential::connected_components(&g));
    }

    #[test]
    fn spanning_forest_of_unweighted_graph_is_valid() {
        let g = generators::planted_components(250, 4, 5, 6);
        let result = spanning_forest(&g, 0.5, 6);
        assert_eq!(result.output.labels, sequential::connected_components(&g));
        assert_eq!(result.output.edges.len(), 250 - 4);
        let mut uf = ampc_graph::UnionFind::new(250);
        for e in &result.output.edges {
            assert!(uf.union(e.u, e.v));
        }
    }

    #[test]
    fn round_count_stays_small() {
        let g = weighted(2000, 8000, 8);
        let result = minimum_spanning_forest(&g, 0.5, 8);
        assert!(result.rounds() <= 30, "rounds = {}", result.rounds());
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let empty = Graph::from_edges(0, &[]);
        let result = spanning_forest(&empty, 0.5, 0);
        assert!(result.output.edges.is_empty());
        assert_eq!(result.output.total_weight, 0);

        let single = Graph::from_weighted_edges(2, &[(0, 1, 7)]);
        let result = minimum_spanning_forest(&single, 0.5, 0);
        assert_eq!(result.output.total_weight, 7);
        assert_eq!(result.output.edges.len(), 1);
    }

    #[test]
    #[should_panic(expected = "weighted")]
    fn unweighted_input_rejected_by_msf() {
        let g = generators::cycle(5);
        let _ = minimum_spanning_forest(&g, 0.5, 0);
    }

    /// The pre-migration slot-by-slot expansion, kept as the budget
    /// reference: one adaptive read per adjacency slot, cap checked before
    /// every read.
    fn reference_prim<V: ampc_runtime::SnapshotView>(
        ctx: &mut MachineContext<V>,
        v: u32,
        d: usize,
        query_cap: u64,
    ) -> Vec<(u32, u32, u32)> {
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32, u32, u32)>> = BinaryHeap::new();
        let mut in_tree: FxHashSet<u32> = FxHashSet::default();
        let mut selected: Vec<(u32, u32, u32)> = Vec::new();
        let start_queries = ctx.queries_issued();
        let expand = |x: u32, ctx: &mut MachineContext<V>, heap: &mut BinaryHeap<_>| {
            let Some(deg) = ctx.read(degree_key(x)).map(|d| d.x as usize) else {
                return;
            };
            for i in 0..deg {
                if ctx.queries_issued() - start_queries >= query_cap {
                    return;
                }
                if let Some(entry) = ctx.read(weighted_adjacency_key(x, i)) {
                    let (nbr, id, w) = decode_weighted_neighbor(entry);
                    heap.push(std::cmp::Reverse((w, x, nbr, id)));
                }
            }
        };
        in_tree.insert(v);
        expand(v, ctx, &mut heap);
        while in_tree.len() < d {
            if ctx.queries_issued() - start_queries >= query_cap {
                break;
            }
            let Some(std::cmp::Reverse((_, from, to, id))) = heap.pop() else {
                break;
            };
            if in_tree.contains(&to) {
                continue;
            }
            in_tree.insert(to);
            selected.push((from, to, id));
            expand(to, ctx, &mut heap);
        }
        selected
    }

    #[test]
    fn batched_local_prim_debits_budget_like_single_reads() {
        // ROADMAP read-path item: the batched expansion must select the same
        // edges AND debit the query budget identically to the single-read
        // loop, including at caps that truncate mid-list.
        let n = 120u32;
        let g = weighted(n as usize, 360, 17);
        let vertices: Vec<u32> = (0..n).collect();
        let edges: Vec<ContractedEdge> = g
            .weighted_edges()
            .iter()
            .map(|e| ContractedEdge {
                u: e.u,
                v: e.v,
                weight: e.weight,
                original: e.id,
            })
            .collect();
        for query_cap in [3u64, 7, 17, 64, 100_000] {
            let run = |batched: bool| {
                let config = AmpcConfig::for_graph(n as usize, 360, 0.5).with_seed(5);
                let mut runtime = AmpcRuntime::new(config);
                publish_weighted_adjacency(&mut runtime, &vertices, &edges);
                runtime
                    .run_round(1, |ctx| {
                        let mut out = Vec::new();
                        for v in 0..n {
                            let before = ctx.queries_issued();
                            let selected = if batched {
                                local_prim(ctx, v, 6, query_cap)
                            } else {
                                reference_prim(ctx, v, 6, query_cap)
                            };
                            out.push((v, selected, ctx.queries_issued() - before));
                        }
                        out
                    })
                    .unwrap()
            };
            assert_eq!(run(true), run(false), "query_cap {query_cap}");
        }
    }
}

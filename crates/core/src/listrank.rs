//! Section 8.1, Algorithm 11: list ranking in `O(1/ε)` AMPC rounds.
//!
//! Given successor pointers forming one or more linked lists (each list's
//! terminal element points at itself), compute for every element its
//! weighted distance to the terminal of its list.  The algorithm repeatedly
//! contracts the lists onto a random sample of elements — every sample walks
//! forward by adaptive reads, accumulating the weights of the elements it
//! skips, until the next sample — then solves the `O(N^ε)`-sized remainder
//! on one machine and finally *expands*: level by level, the skipped
//! elements recover their ranks from the sample that covered them, again by
//! a single adaptive walk per sample.
//!
//! Generalisations over the paper's presentation (both used by the Euler
//! tour machinery of Section 8): multiple lists are ranked simultaneously,
//! and every element may carry an arbitrary non-negative weight, which is
//! what turns list ranking into the prefix-sum engine behind preorder
//! numbering and subtree sizes.

use crate::common::{round_robin_assign, AlgorithmResult};
use ampc_dds::{FxHashMap, FxHashSet, Key, KeyTag, Value};
use ampc_runtime::{with_dds_backend, AmpcConfig, AmpcRuntime, DdsBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn successor_key(v: u32) -> Key {
    Key::of(KeyTag::Successor, v as u64)
}

fn weight_key(v: u32) -> Key {
    Key::of(KeyTag::Weight, v as u64)
}

fn sampled_key(v: u32) -> Key {
    Key::of(KeyTag::Sampled, v as u64)
}

fn rank_key(v: u32) -> Key {
    Key::of(KeyTag::Scalar, v as u64)
}

/// One contraction level retained by the driver for the expansion phase.
struct Level {
    /// Elements alive at this level.
    alive: Vec<u32>,
    /// Successor pointers at this level.
    succ: FxHashMap<u32, u32>,
    /// Element weights at this level.
    weight: FxHashMap<u32, u64>,
    /// The elements sampled at this level (= alive at the next level).
    samples: Vec<u32>,
}

/// Rank a collection of linked lists: `successor[v]` is the next element
/// (terminals point at themselves) and `weights[v]` is the weight of the
/// link leaving `v`.  Returns `ranks[v]` = sum of weights on the path from
/// `v` (inclusive) to its terminal (exclusive).
pub fn list_ranking_weighted(
    successor: &[u32],
    weights: &[u64],
    epsilon: f64,
    seed: u64,
) -> AlgorithmResult<Vec<u64>> {
    let n = successor.len();
    list_ranking_weighted_with(
        successor,
        weights,
        &AmpcConfig::for_graph(n.max(1), n, epsilon).with_seed(seed),
    )
}

/// [`list_ranking_weighted`] with an explicit [`AmpcConfig`]: ε and seed are
/// taken from the config, which also selects the DDS backend.
pub fn list_ranking_weighted_with(
    successor: &[u32],
    weights: &[u64],
    config: &AmpcConfig,
) -> AlgorithmResult<Vec<u64>> {
    let n = successor.len();
    assert_eq!(weights.len(), n, "one weight per element required");
    for (v, &s) in successor.iter().enumerate() {
        assert!((s as usize) < n, "successor of {v} out of range");
    }
    let config = config.derive(n.max(1), n.max(1) + n);
    with_dds_backend!(config, |runtime| list_ranking_impl(
        successor, weights, runtime
    ))
}

fn list_ranking_impl<B: DdsBackend>(
    successor: &[u32],
    weights: &[u64],
    mut runtime: AmpcRuntime<B>,
) -> AlgorithmResult<Vec<u64>> {
    let n = successor.len();
    let epsilon = runtime.config().epsilon;
    let seed = runtime.config().seed;
    if n == 0 {
        return AlgorithmResult::new(Vec::new(), runtime.into_stats());
    }

    // Heads (no predecessor) and terminals (self successor) are always kept
    // alive so that every skipped element is covered by some sample's walk.
    let mut indegree = vec![0u32; n];
    for (v, &s) in successor.iter().enumerate() {
        if s as usize != v {
            indegree[s as usize] += 1;
        }
    }
    let forced: FxHashSet<u32> = (0..n as u32)
        .filter(|&v| indegree[v as usize] == 0 || successor[v as usize] == v)
        .collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x11_57);
    let sample_probability = (n.max(2) as f64).powf(-epsilon / 2.0);
    let target = ((n.max(2) as f64).powf(epsilon).ceil() as usize).max(4);
    let max_levels = (4.0 / epsilon).ceil() as usize + 4;

    let mut alive: Vec<u32> = (0..n as u32).collect();
    let mut succ: FxHashMap<u32, u32> = (0..n as u32).map(|v| (v, successor[v as usize])).collect();
    let mut weight: FxHashMap<u32, u64> = (0..n as u32).map(|v| (v, weights[v as usize])).collect();
    let mut levels: Vec<Level> = Vec::new();

    // ---- Contraction phase -------------------------------------------------
    while alive.len() > target && levels.len() < max_levels {
        let samples: Vec<u32> = alive
            .iter()
            .copied()
            .filter(|v| forced.contains(v) || rng.gen_bool(sample_probability))
            .collect();
        if samples.len() == alive.len() {
            break; // contraction would be a no-op
        }

        // Publish the current level (scatter) and run the sampling walks.
        let mut pairs: Vec<(Key, Value)> = Vec::with_capacity(3 * alive.len());
        for &v in &alive {
            pairs.push((successor_key(v), Value::scalar(succ[&v] as u64)));
            pairs.push((weight_key(v), Value::scalar(weight[&v])));
        }
        for &v in &samples {
            pairs.push((sampled_key(v), Value::scalar(1)));
        }
        runtime.scatter(pairs);

        let machines = runtime.config().num_machines();
        let assignments = round_robin_assign(&samples, machines);
        let limit = alive.len() + 2;
        let walks: Vec<Vec<(u32, u32, u64)>> = runtime
            .run_round(machines, |ctx| {
                let mut out = Vec::new();
                let mut probe = [None; 3];
                for &v in &assignments[ctx.machine_id()] {
                    let own_succ = ctx.read(successor_key(v)).expect("successor missing").x as u32;
                    if own_succ == v {
                        out.push((v, v, 0)); // terminal
                        continue;
                    }
                    let mut acc = ctx.read(weight_key(v)).expect("weight missing").x;
                    let mut cur = own_succ;
                    for _ in 0..limit {
                        // One pipelined flight per hop: sample mark, weight
                        // and successor of `cur` are independent keys.  On
                        // the terminating hop (sample hit) the weight and
                        // successor reads are discarded — a bounded
                        // over-read of 2 queries per walk, the price of
                        // batching the hop into one flight.
                        ctx.read_many_slice(
                            &[sampled_key(cur), weight_key(cur), successor_key(cur)],
                            &mut probe,
                        );
                        if probe[0].is_some() {
                            break; // reached the next sample
                        }
                        acc += probe[1].expect("weight missing").x;
                        let next = probe[2].expect("successor missing").x as u32;
                        if next == cur {
                            break; // safety: ran into an unsampled terminal
                        }
                        cur = next;
                    }
                    out.push((v, cur, acc));
                }
                out
            })
            .expect("list-ranking contraction round failed");

        // Driver: build the next level.
        let mut new_succ: FxHashMap<u32, u32> = FxHashMap::default();
        let mut new_weight: FxHashMap<u32, u64> = FxHashMap::default();
        for (v, end, acc) in walks.into_iter().flatten() {
            new_succ.insert(v, end);
            new_weight.insert(v, acc);
        }
        levels.push(Level {
            alive: alive.clone(),
            succ: std::mem::take(&mut succ),
            weight: std::mem::take(&mut weight),
            samples: samples.clone(),
        });
        alive = samples;
        succ = new_succ;
        weight = new_weight;
    }

    // ---- Base solve on a single machine ------------------------------------
    let mut rank: FxHashMap<u32, u64> = FxHashMap::default();
    {
        fn solve(
            v: u32,
            succ: &FxHashMap<u32, u32>,
            weight: &FxHashMap<u32, u64>,
            rank: &mut FxHashMap<u32, u64>,
        ) -> u64 {
            if let Some(&r) = rank.get(&v) {
                return r;
            }
            let s = succ[&v];
            let r = if s == v {
                0
            } else {
                weight[&v] + solve(s, succ, weight, rank)
            };
            rank.insert(v, r);
            r
        }
        for &v in &alive {
            solve(v, &succ, &weight, &mut rank);
        }
    }

    // ---- Expansion phase ----------------------------------------------------
    for level in levels.iter().rev() {
        // Publish the level's pointers/weights plus the ranks known so far
        // (the ranks of this level's samples), then each sample walks its
        // segment once more, assigning ranks to the elements it covered.
        let mut pairs: Vec<(Key, Value)> = Vec::with_capacity(3 * level.alive.len());
        for &v in &level.alive {
            pairs.push((successor_key(v), Value::scalar(level.succ[&v] as u64)));
            pairs.push((weight_key(v), Value::scalar(level.weight[&v])));
        }
        for &v in &level.samples {
            pairs.push((sampled_key(v), Value::scalar(1)));
            pairs.push((rank_key(v), Value::scalar(rank[&v])));
        }
        runtime.scatter(pairs);

        let machines = runtime.config().num_machines();
        let assignments = round_robin_assign(&level.samples, machines);
        let limit = level.alive.len() + 2;
        let recovered: Vec<Vec<(u32, u64)>> = runtime
            .run_round(machines, |ctx| {
                let mut out = Vec::new();
                let mut probe = [None; 3];
                for &v in &assignments[ctx.machine_id()] {
                    let own_succ = ctx.read(successor_key(v)).expect("successor missing").x as u32;
                    if own_succ == v {
                        continue; // terminal covers nobody
                    }
                    // Collect the covered segment, one batched probe per hop
                    // (bounded over-read of 2 queries on the terminating
                    // hop, as in the contraction walk).
                    let mut segment: Vec<(u32, u64)> = Vec::new();
                    let mut cur = own_succ;
                    let mut end = own_succ;
                    for _ in 0..limit {
                        ctx.read_many_slice(
                            &[sampled_key(cur), weight_key(cur), successor_key(cur)],
                            &mut probe,
                        );
                        if probe[0].is_some() {
                            end = cur;
                            break;
                        }
                        let w = probe[1].expect("weight missing").x;
                        segment.push((cur, w));
                        let next = probe[2].expect("successor missing").x as u32;
                        if next == cur {
                            end = cur;
                            break;
                        }
                        cur = next;
                    }
                    let mut acc = ctx.read(rank_key(end)).map(|r| r.x).unwrap_or(0);
                    for &(u, w) in segment.iter().rev() {
                        acc += w;
                        out.push((u, acc));
                    }
                }
                out
            })
            .expect("list-ranking expansion round failed");
        for (v, r) in recovered.into_iter().flatten() {
            rank.insert(v, r);
        }
    }

    let ranks: Vec<u64> = (0..n as u32).map(|v| *rank.get(&v).unwrap_or(&0)).collect();
    AlgorithmResult::new(ranks, runtime.into_stats())
}

/// Unweighted list ranking (Theorem 6): every link has weight 1, so the rank
/// of an element is its distance to the terminal of its list.
pub fn list_ranking(successor: &[u32], epsilon: f64, seed: u64) -> AlgorithmResult<Vec<u64>> {
    let weights = unit_weights(successor);
    list_ranking_weighted(successor, &weights, epsilon, seed)
}

/// [`list_ranking`] with an explicit [`AmpcConfig`].
pub fn list_ranking_with(successor: &[u32], config: &AmpcConfig) -> AlgorithmResult<Vec<u64>> {
    let weights = unit_weights(successor);
    list_ranking_weighted_with(successor, &weights, config)
}

fn unit_weights(successor: &[u32]) -> Vec<u64> {
    successor
        .iter()
        .enumerate()
        .map(|(v, &s)| u64::from(s as usize != v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::sequential;
    use rand::seq::SliceRandom;

    fn shuffled_list(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(&mut rng);
        let mut successor = vec![0u32; n];
        for i in 0..n - 1 {
            successor[order[i] as usize] = order[i + 1];
        }
        successor[order[n - 1] as usize] = order[n - 1];
        successor
    }

    #[test]
    fn matches_sequential_ranks_on_identity_list() {
        let n = 500;
        let successor: Vec<u32> = (0..n as u32)
            .map(|v| if (v as usize) + 1 < n { v + 1 } else { v })
            .collect();
        let result = list_ranking(&successor, 0.5, 1);
        assert_eq!(result.output, sequential::sequential_list_ranks(&successor));
    }

    #[test]
    fn matches_sequential_ranks_on_shuffled_lists() {
        for seed in 0..3 {
            let successor = shuffled_list(800, seed);
            let result = list_ranking(&successor, 0.5, seed);
            assert_eq!(
                result.output,
                sequential::sequential_list_ranks(&successor),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn handles_multiple_lists_at_once() {
        // Two independent lists: 0→1→2→2 and 3→4→4, plus a singleton 5.
        let successor = vec![1, 2, 2, 4, 4, 5];
        let result = list_ranking(&successor, 0.5, 3);
        assert_eq!(result.output, vec![2, 1, 0, 1, 0, 0]);
    }

    #[test]
    fn weighted_ranking_computes_weighted_suffix_sums() {
        // 0 →(5) 1 →(3) 2 →(7) 3, terminal 3.
        let successor = vec![1, 2, 3, 3];
        let weights = vec![5, 3, 7, 0];
        let result = list_ranking_weighted(&successor, &weights, 0.5, 4);
        assert_eq!(result.output, vec![15, 10, 7, 0]);
    }

    #[test]
    fn zero_weights_are_allowed() {
        let successor = vec![1, 2, 3, 3];
        let weights = vec![0, 1, 0, 0];
        let result = list_ranking_weighted(&successor, &weights, 0.5, 4);
        assert_eq!(result.output, vec![1, 1, 0, 0]);
    }

    #[test]
    fn round_count_is_constant_in_list_length() {
        let small = shuffled_list(200, 1);
        let large = shuffled_list(5000, 1);
        let small_rounds = list_ranking(&small, 0.5, 1).rounds();
        let large_rounds = list_ranking(&large, 0.5, 1).rounds();
        let cap = 4 * ((4.0 / 0.5) as usize + 5);
        assert!(small_rounds <= cap, "small rounds {small_rounds}");
        assert!(large_rounds <= cap, "large rounds {large_rounds}");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(list_ranking(&[], 0.5, 0).output.is_empty());
        assert_eq!(list_ranking(&[0], 0.5, 0).output, vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_successor_rejected() {
        let _ = list_ranking(&[5], 0.5, 0);
    }
}

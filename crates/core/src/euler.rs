//! Section 8.1: Euler tours, tree rooting, subtree sizes, preorder numbers
//! and range-minimum structures.
//!
//! The classic Tarjan–Vishkin Euler tour technique turns every tree of a
//! forest into a cycle of directed arcs; breaking the cycle at the root and
//! *list ranking* the arcs (Algorithm 11, [`crate::listrank`]) yields the
//! position of every arc in the tour, from which parents, subtree sizes and
//! preorder numbers all follow with O(1) extra work per vertex.  The list
//! ranking is the only part that needs AMPC rounds — its walks issue one
//! batched adaptive read per hop (`read_many`) — everything else is the
//! per-key arithmetic the paper attributes to "standard MPC primitives",
//! with the tour stitched driver-side by sorted-out-list binary search
//! (no per-arc hash map).
//!
//! [`SparseTableRmq`] is the range-minimum/maximum structure of Lemma 8.9,
//! used by the 2-edge-connectivity algorithm to aggregate `Low`/`High`
//! values over subtree intervals of the preorder numbering.

use crate::common::AlgorithmResult;
use ampc_dds::FxHashMap;
use ampc_graph::{Graph, UnionFind};
use ampc_runtime::RunStats;

/// The Euler tour of a forest: two arcs per tree edge plus the successor
/// permutation linking them into one cycle per tree.
#[derive(Clone, Debug)]
pub struct EulerTour {
    /// Tail (source vertex) of each arc.
    pub arc_tail: Vec<u32>,
    /// Head (target vertex) of each arc.
    pub arc_head: Vec<u32>,
    /// Successor arc in the tour.
    pub next: Vec<u32>,
    /// Predecessor arc in the tour (inverse of `next`).
    pub prev: Vec<u32>,
}

impl EulerTour {
    /// Number of arcs (twice the number of tree edges).
    pub fn num_arcs(&self) -> usize {
        self.arc_tail.len()
    }

    /// The opposite arc of `a` (same edge, reversed direction).
    pub fn twin(&self, a: u32) -> u32 {
        a ^ 1
    }
}

/// Build the Euler tour of a forest (Lemma 8.6).
///
/// Edge `e = {u, v}` of the graph contributes arc `2e = u→v` and arc
/// `2e + 1 = v→u`; the successor of arc `(u, v)` is the arc `(v, w)` where
/// `w` follows `u` in `v`'s (cyclically ordered) adjacency list.
///
/// # Panics
/// If the graph contains a cycle (it must be a forest).
pub fn euler_tour(forest: &Graph) -> EulerTour {
    let n = forest.num_vertices();
    let m = forest.num_edges();
    // Forest check: every component with k vertices has k - 1 edges.
    {
        let mut uf = UnionFind::new(n);
        for e in forest.edges() {
            assert!(
                uf.union(e.u, e.v),
                "euler_tour expects a forest (found a cycle)"
            );
        }
    }

    let mut arc_tail = vec![0u32; 2 * m];
    let mut arc_head = vec![0u32; 2 * m];
    for (id, e) in forest.edges().iter().enumerate() {
        arc_tail[2 * id] = e.u;
        arc_head[2 * id] = e.v;
        arc_tail[2 * id + 1] = e.v;
        arc_head[2 * id + 1] = e.u;
    }

    // out[v] = arcs leaving v, sorted by head vertex.  The successor of arc
    // u→v is the arc leaving v towards the head that follows u in v's
    // sorted out-list; since the forest has no parallel edges the heads in
    // out[v] are distinct, so the position of v→u is found by binary search
    // instead of a per-arc (v, u) → index hash map — the tour stitching is
    // two cache-friendly passes over the arc arrays.
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    for a in 0..2 * m as u32 {
        out[arc_tail[a as usize] as usize].push(a);
    }
    for list in out.iter_mut() {
        list.sort_unstable_by_key(|&a| arc_head[a as usize]);
    }

    let mut next = vec![0u32; 2 * m];
    for a in 0..2 * m {
        let (u, v) = (arc_tail[a], arc_head[a]);
        let list = &out[v as usize];
        let idx = list
            .binary_search_by_key(&u, |&arc| arc_head[arc as usize])
            .expect("twin arc v->u must exist in v's out-list");
        next[a] = list[(idx + 1) % list.len()];
    }
    let mut prev = vec![0u32; 2 * m];
    for a in 0..2 * m as u32 {
        prev[next[a as usize] as usize] = a;
    }

    EulerTour {
        arc_tail,
        arc_head,
        next,
        prev,
    }
}

/// A rooted forest with the per-vertex quantities the Section 8 lemmas
/// compute: parent pointers, tree roots, globally unique preorder numbers
/// and subtree sizes.
#[derive(Clone, Debug)]
pub struct RootedForest {
    /// Parent of each vertex (roots point at themselves).
    pub parent: Vec<u32>,
    /// Root of each vertex's tree.
    pub root: Vec<u32>,
    /// Globally unique preorder number of each vertex (0-based; trees are
    /// laid out consecutively in increasing root order).
    pub preorder: Vec<u64>,
    /// Number of vertices in each vertex's subtree (inclusive).
    pub subtree_size: Vec<u64>,
}

impl RootedForest {
    /// The preorder interval `[lo, hi]` (inclusive) covered by `v`'s subtree.
    pub fn subtree_interval(&self, v: u32) -> (u64, u64) {
        let lo = self.preorder[v as usize];
        (lo, lo + self.subtree_size[v as usize] - 1)
    }

    /// `true` if `ancestor`'s subtree contains `v`.
    pub fn in_subtree(&self, ancestor: u32, v: u32) -> bool {
        let (lo, hi) = self.subtree_interval(ancestor);
        let p = self.preorder[v as usize];
        lo <= p && p <= hi
    }
}

/// Root every tree of a forest (Theorem 7) and compute preorder numbers
/// (Lemma 8.8) and subtree sizes (Lemma 8.7) via Euler tours + list ranking.
///
/// `roots` optionally fixes the root of each tree (one entry per vertex,
/// only the entries of chosen roots are consulted); by default the smallest
/// vertex id of each tree becomes its root.
pub fn root_forest(
    forest: &Graph,
    roots: Option<&[u32]>,
    epsilon: f64,
    seed: u64,
) -> AlgorithmResult<RootedForest> {
    let n = forest.num_vertices();
    let arcs = 2 * forest.num_edges();
    root_forest_with(
        forest,
        roots,
        &ampc_runtime::AmpcConfig::for_graph(n.max(arcs).max(1), arcs, epsilon).with_seed(seed),
    )
}

/// [`root_forest`] with an explicit [`ampc_runtime::AmpcConfig`]: ε and seed
/// come from the config, which also selects the DDS backend for the list
/// rankings underneath.
pub fn root_forest_with(
    forest: &Graph,
    roots: Option<&[u32]>,
    config: &ampc_runtime::AmpcConfig,
) -> AlgorithmResult<RootedForest> {
    let n = forest.num_vertices();
    let tour = euler_tour(forest);
    let num_arcs = tour.num_arcs();
    let mut stats = RunStats::default();

    // Component roots (driver-side union-find = standard MPC primitive).
    let mut uf = UnionFind::new(n);
    for e in forest.edges() {
        uf.union(e.u, e.v);
    }
    let component = uf.canonical_labels();
    let chosen_root: Vec<u32> = match roots {
        Some(r) => {
            let mut root_of_component: FxHashMap<u32, u32> = FxHashMap::default();
            for &candidate in r {
                root_of_component
                    .entry(component[candidate as usize])
                    .or_insert(candidate);
            }
            (0..n as u32)
                .map(|v| {
                    *root_of_component
                        .get(&component[v as usize])
                        .unwrap_or(&component[v as usize])
                })
                .collect()
        }
        None => component.clone(),
    };

    if n == 0 {
        let empty = RootedForest {
            parent: vec![],
            root: vec![],
            preorder: vec![],
            subtree_size: vec![],
        };
        return AlgorithmResult::new(empty, stats);
    }

    // Break each tree's tour at its root's first outgoing arc.
    let mut successor: Vec<u32> = tour.next.clone();
    let mut first_arc_of_root: FxHashMap<u32, u32> = FxHashMap::default();
    for a in 0..num_arcs as u32 {
        let tail = tour.arc_tail[a as usize];
        if tail == chosen_root[tail as usize] {
            let entry = first_arc_of_root.entry(tail).or_insert(a);
            if tour.arc_head[a as usize] < tour.arc_head[*entry as usize] {
                *entry = a;
            }
        }
    }
    for &start in first_arc_of_root.values() {
        let terminal = tour.prev[start as usize];
        successor[terminal as usize] = terminal;
    }

    // Unit-weight ranking gives arc positions; forward-weight ranking gives
    // preorder numbers.  Both are AMPC list rankings over the arcs, running
    // on whatever DDS backend the config selects.
    let unit = crate::listrank::list_ranking_with(&successor, config);
    stats.absorb(unit.stats.clone());
    let rank_unit = unit.output;

    // Parents: the arc of an edge that appears earlier in the tour (larger
    // distance to the terminal) is the forward arc.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut forward_arc: Vec<Option<u32>> = vec![None; n];
    let mut backward_arc: Vec<Option<u32>> = vec![None; n];
    for edge_id in 0..num_arcs / 2 {
        let a = (2 * edge_id) as u32;
        let b = a + 1;
        let (fw, bw) = if rank_unit[a as usize] > rank_unit[b as usize] {
            (a, b)
        } else {
            (b, a)
        };
        let child = tour.arc_head[fw as usize];
        let par = tour.arc_tail[fw as usize];
        parent[child as usize] = par;
        forward_arc[child as usize] = Some(fw);
        backward_arc[child as usize] = Some(bw);
    }

    // Subtree sizes from arc positions (Lemma 8.7).
    let mut subtree_size = vec![1u64; n];
    for v in 0..n as u32 {
        if let (Some(fw), Some(bw)) = (forward_arc[v as usize], backward_arc[v as usize]) {
            subtree_size[v as usize] =
                (rank_unit[fw as usize] - rank_unit[bw as usize]).div_ceil(2);
        }
    }
    // Roots span their whole component.
    let mut component_size: FxHashMap<u32, u64> = FxHashMap::default();
    for v in 0..n as u32 {
        *component_size.entry(component[v as usize]).or_insert(0) += 1;
    }
    for v in 0..n as u32 {
        if parent[v as usize] == v {
            subtree_size[v as usize] = component_size[&component[v as usize]];
        }
    }

    // Preorder numbers (Lemma 8.8): rank with weight 1 on forward arcs.
    let forward_weights: Vec<u64> = (0..num_arcs as u32)
        .map(|a| {
            let head = tour.arc_head[a as usize];
            u64::from(forward_arc[head as usize] == Some(a))
        })
        .collect();
    let weighted = crate::listrank::list_ranking_weighted_with(
        &successor,
        &forward_weights,
        &config.clone().with_seed(config.seed ^ 0x9e37),
    );
    stats.absorb(weighted.stats.clone());
    let rank_forward = weighted.output;

    // Per-tree preorder, then a global offset per tree (trees laid out in
    // increasing root-id order).
    let mut roots_sorted: Vec<u32> = component_size.keys().copied().collect();
    roots_sorted.sort_unstable();
    let mut offset_of: FxHashMap<u32, u64> = FxHashMap::default();
    let mut running = 0u64;
    for r in roots_sorted {
        offset_of.insert(r, running);
        running += component_size[&r];
    }

    let mut preorder = vec![0u64; n];
    for v in 0..n as u32 {
        let comp = component[v as usize];
        let offset = offset_of[&comp];
        preorder[v as usize] = if parent[v as usize] == v {
            offset
        } else {
            let fw = forward_arc[v as usize].expect("non-root must have a forward arc");
            offset + component_size[&comp] - rank_forward[fw as usize]
        };
    }

    let root: Vec<u32> = (0..n as u32).map(|v| chosen_root[v as usize]).collect();
    let forest_out = RootedForest {
        parent,
        root,
        preorder,
        subtree_size,
    };
    AlgorithmResult::new(forest_out, stats)
}

/// Lemma 8.7: subtree sizes of a rooted forest (roots chosen as the minimum
/// vertex id of each tree).
pub fn subtree_sizes(forest: &Graph, epsilon: f64, seed: u64) -> AlgorithmResult<Vec<u64>> {
    let result = root_forest(forest, None, epsilon, seed);
    AlgorithmResult::new(result.output.subtree_size, result.stats)
}

/// Lemma 8.8: preorder numbering of a rooted forest (roots chosen as the
/// minimum vertex id of each tree).
pub fn preorder_numbers(forest: &Graph, epsilon: f64, seed: u64) -> AlgorithmResult<Vec<u64>> {
    let result = root_forest(forest, None, epsilon, seed);
    AlgorithmResult::new(result.output.preorder, result.stats)
}

/// Lemma 8.9: a sparse-table range-minimum/maximum structure over an array,
/// answering queries in O(1) after O(n log n) preprocessing.
#[derive(Clone, Debug)]
pub struct SparseTableRmq {
    mins: Vec<Vec<u64>>,
    maxs: Vec<Vec<u64>>,
    len: usize,
}

impl SparseTableRmq {
    /// Build the structure over `values`.
    pub fn new(values: &[u64]) -> Self {
        let len = values.len();
        let levels = if len <= 1 {
            1
        } else {
            len.ilog2() as usize + 1
        };
        let mut mins: Vec<Vec<u64>> = Vec::with_capacity(levels);
        let mut maxs: Vec<Vec<u64>> = Vec::with_capacity(levels);
        mins.push(values.to_vec());
        maxs.push(values.to_vec());
        for k in 1..levels {
            let half = 1usize << (k - 1);
            let size = len.saturating_sub((1 << k) - 1);
            let mut min_row = Vec::with_capacity(size);
            let mut max_row = Vec::with_capacity(size);
            for i in 0..size {
                min_row.push(mins[k - 1][i].min(mins[k - 1][i + half]));
                max_row.push(maxs[k - 1][i].max(maxs[k - 1][i + half]));
            }
            mins.push(min_row);
            maxs.push(max_row);
        }
        SparseTableRmq { mins, maxs, len }
    }

    /// Minimum of `values[lo..=hi]`.
    ///
    /// # Panics
    /// If the range is empty or out of bounds.
    pub fn query_min(&self, lo: usize, hi: usize) -> u64 {
        assert!(lo <= hi && hi < self.len, "invalid RMQ range [{lo}, {hi}]");
        let k = (hi - lo + 1).ilog2() as usize;
        self.mins[k][lo].min(self.mins[k][hi + 1 - (1 << k)])
    }

    /// Maximum of `values[lo..=hi]`.
    ///
    /// # Panics
    /// If the range is empty or out of bounds.
    pub fn query_max(&self, lo: usize, hi: usize) -> u64 {
        assert!(lo <= hi && hi < self.len, "invalid RMQ range [{lo}, {hi}]");
        let k = (hi - lo + 1).ilog2() as usize;
        self.maxs[k][lo].max(self.maxs[k][hi + 1 - (1 << k)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::generators;

    /// Reference parents/depths by BFS from the chosen roots.
    fn bfs_parents(forest: &Graph, roots: &[u32]) -> Vec<u32> {
        let n = forest.num_vertices();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        let mut visited = vec![false; n];
        for &r in roots {
            if visited[r as usize] {
                continue;
            }
            visited[r as usize] = true;
            let mut queue = std::collections::VecDeque::from([r]);
            while let Some(v) = queue.pop_front() {
                for &u in forest.neighbors(v) {
                    if !visited[u as usize] {
                        visited[u as usize] = true;
                        parent[u as usize] = v;
                        queue.push_back(u);
                    }
                }
            }
        }
        parent
    }

    fn reference_subtree_sizes(parent: &[u32]) -> Vec<u64> {
        let n = parent.len();
        let mut size = vec![1u64; n];
        // Repeatedly push sizes upward (fine for test-sized trees).
        let mut order: Vec<u32> = (0..n as u32).collect();
        // Sort by depth descending.
        let depth = |mut v: u32| {
            let mut d = 0;
            while parent[v as usize] != v {
                v = parent[v as usize];
                d += 1;
            }
            d
        };
        order.sort_by_key(|&v| std::cmp::Reverse(depth(v)));
        for v in order {
            if parent[v as usize] != v {
                size[parent[v as usize] as usize] += size[v as usize];
            }
        }
        size
    }

    #[test]
    fn euler_tour_is_a_permutation_covering_all_arcs() {
        let g = generators::random_tree(50, 3);
        let tour = euler_tour(&g);
        assert_eq!(tour.num_arcs(), 98);
        // `next` must be a permutation (every arc has exactly one predecessor).
        let mut seen = vec![false; tour.num_arcs()];
        for &a in &tour.next {
            assert!(!seen[a as usize]);
            seen[a as usize] = true;
        }
        // Consecutive arcs share the intermediate vertex.
        for a in 0..tour.num_arcs() {
            let b = tour.next[a] as usize;
            assert_eq!(tour.arc_head[a], tour.arc_tail[b]);
        }
    }

    #[test]
    #[should_panic(expected = "forest")]
    fn euler_tour_rejects_cycles() {
        let g = generators::cycle(5);
        let _ = euler_tour(&g);
    }

    #[test]
    fn rooting_a_path_matches_bfs() {
        let g = generators::path(20);
        let rooted = root_forest(&g, None, 0.5, 1).output;
        assert_eq!(rooted.parent, bfs_parents(&g, &[0]));
        assert_eq!(rooted.preorder, (0..20u64).collect::<Vec<_>>());
        assert_eq!(rooted.subtree_size, (1..=20u64).rev().collect::<Vec<_>>());
    }

    #[test]
    fn rooting_random_trees_matches_reference() {
        for seed in 0..3 {
            let g = generators::random_tree(200, seed);
            let rooted = root_forest(&g, None, 0.5, seed).output;
            assert_eq!(rooted.parent, bfs_parents(&g, &[0]), "seed {seed}");
            assert_eq!(rooted.subtree_size, reference_subtree_sizes(&rooted.parent));
            // Preorder is a permutation of 0..n with root at 0.
            let mut sorted = rooted.preorder.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..200u64).collect::<Vec<_>>());
            assert_eq!(rooted.preorder[0], 0);
            // Every non-root vertex appears after its parent.
            for v in 1..200usize {
                assert!(rooted.preorder[v] > rooted.preorder[rooted.parent[v] as usize]);
            }
        }
    }

    #[test]
    fn rooting_a_forest_gives_disjoint_preorder_blocks() {
        let g = generators::random_forest(120, 4, 7);
        let rooted = root_forest(&g, None, 0.5, 7).output;
        // Preorder is a global permutation.
        let mut sorted = rooted.preorder.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..120u64).collect::<Vec<_>>());
        // Subtree intervals of roots partition the range.
        let mut roots: Vec<u32> = (0..120u32)
            .filter(|&v| rooted.parent[v as usize] == v)
            .collect();
        roots.sort_unstable();
        assert_eq!(roots.len(), 4);
        let mut intervals: Vec<(u64, u64)> =
            roots.iter().map(|&r| rooted.subtree_interval(r)).collect();
        intervals.sort_unstable();
        let mut expected_start = 0;
        for (lo, hi) in intervals {
            assert_eq!(lo, expected_start);
            expected_start = hi + 1;
        }
        assert_eq!(expected_start, 120);
    }

    #[test]
    fn subtree_interval_contains_exactly_the_subtree() {
        let g = generators::binary_tree(63);
        let rooted = root_forest(&g, None, 0.5, 5).output;
        // Vertex 1 is a child of the root covering half the tree.
        assert_eq!(rooted.subtree_size[1], 31);
        for v in 0..63u32 {
            // v is in the subtree of 1 iff following parents reaches 1.
            let mut x = v;
            let mut inside = false;
            loop {
                if x == 1 {
                    inside = true;
                    break;
                }
                if rooted.parent[x as usize] == x {
                    break;
                }
                x = rooted.parent[x as usize];
            }
            assert_eq!(rooted.in_subtree(1, v), inside, "vertex {v}");
        }
    }

    #[test]
    fn explicit_roots_are_respected() {
        let g = generators::path(10);
        let roots = vec![9u32; 10];
        let rooted = root_forest(&g, Some(&roots), 0.5, 2).output;
        assert_eq!(rooted.parent[9], 9);
        assert_eq!(rooted.parent[0], 1);
        assert_eq!(rooted.preorder[9], 0);
        assert_eq!(rooted.preorder[0], 9);
    }

    #[test]
    fn isolated_vertices_are_their_own_trees() {
        let g = Graph::from_edges(5, &[ampc_graph::Edge::new(1, 2)]);
        let rooted = root_forest(&g, None, 0.5, 0).output;
        assert_eq!(rooted.parent[0], 0);
        assert_eq!(rooted.subtree_size[0], 1);
        assert_eq!(rooted.subtree_size[1], 2);
        let mut sorted = rooted.preorder.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wrapper_lemmas_return_the_same_quantities() {
        let g = generators::random_tree(80, 9);
        let rooted = root_forest(&g, None, 0.5, 9).output;
        assert_eq!(subtree_sizes(&g, 0.5, 9).output, rooted.subtree_size);
        assert_eq!(preorder_numbers(&g, 0.5, 9).output, rooted.preorder);
    }

    #[test]
    fn sparse_table_matches_naive_min_max() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let values: Vec<u64> = (0..200).map(|_| rng.gen_range(0..1000)).collect();
        let rmq = SparseTableRmq::new(&values);
        for _ in 0..500 {
            let lo = rng.gen_range(0..values.len());
            let hi = rng.gen_range(lo..values.len());
            let naive_min = *values[lo..=hi].iter().min().unwrap();
            let naive_max = *values[lo..=hi].iter().max().unwrap();
            assert_eq!(rmq.query_min(lo, hi), naive_min);
            assert_eq!(rmq.query_max(lo, hi), naive_max);
        }
    }

    #[test]
    fn sparse_table_single_element() {
        let rmq = SparseTableRmq::new(&[42]);
        assert_eq!(rmq.query_min(0, 0), 42);
        assert_eq!(rmq.query_max(0, 0), 42);
    }

    #[test]
    #[should_panic(expected = "invalid RMQ range")]
    fn sparse_table_rejects_bad_ranges() {
        let rmq = SparseTableRmq::new(&[1, 2, 3]);
        let _ = rmq.query_min(2, 5);
    }
}

//! Section 4: the `Shrink` primitive and the 2-Cycle algorithm.
//!
//! `Shrink` (Algorithm 1) contracts a union of cycles onto a random sample
//! of its vertices: every sampled vertex walks the cycle in both directions
//! — an *adaptive* pointer chase that MPC cannot do inside one round — until
//! it meets another sampled vertex, and the path between consecutive samples
//! becomes a single edge.  With sampling probability `n^{-ε/2}` the cycle
//! lengths shrink by a factor `n^{ε/2}` per iteration w.h.p., so after
//! `O(1/ε)` iterations everything fits on one machine.
//!
//! The 2-Cycle algorithm (Algorithm 2) is `Shrink` followed by a single-
//! machine count of the surviving cycles; [`cycle_connectivity`]
//! (Algorithm 10, used by forest connectivity in Section 8) replaces the
//! final count with one more adaptive round that elects the minimum-priority
//! vertex of each surviving cycle as its representative.
//!
//! One practical deviation, documented in DESIGN.md: a cycle that receives
//! no sample in an iteration is passed through to the next iteration
//! unchanged instead of being lost.  The paper's analysis makes this a
//! w.h.p. non-event for the Θ(n)-length cycles of the 2-Cycle problem; the
//! pass-through keeps the algorithm *always* correct, also for the short
//! cycles that arise when forest connectivity feeds Euler tours in.

use crate::common::AlgorithmResult;
use ampc_dds::{FxHashMap, FxHashSet, Key, KeyTag, Value};
use ampc_graph::{canonicalize_labels, Graph};
use ampc_runtime::{AmpcConfig, AmpcRuntime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Answer to a 2-Cycle instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TwoCycleAnswer {
    /// The input is a single cycle.
    OneCycle,
    /// The input consists of two cycles.
    TwoCycles,
}

/// Adjacency of a union of cycles: every live vertex has exactly two
/// incident cycle edges (which may coincide after contraction, or point back
/// to the vertex itself once a whole cycle has collapsed onto it).
pub type CycleNeighbors = FxHashMap<u32, (u32, u32)>;

/// Extract the cycle adjacency of a graph whose every vertex has degree 2.
///
/// # Panics
/// If some vertex does not have degree exactly 2.
pub fn cycle_neighbors_of(graph: &Graph) -> CycleNeighbors {
    let mut nbrs = CycleNeighbors::default();
    for v in 0..graph.num_vertices() as u32 {
        let adjacent = graph.neighbors(v);
        assert_eq!(
            adjacent.len(),
            2,
            "vertex {v} has degree {} (cycle graphs need degree 2)",
            adjacent.len()
        );
        nbrs.insert(v, (adjacent[0], adjacent[1]));
    }
    nbrs
}

fn cycle_key(v: u32) -> Key {
    Key::of(KeyTag::CycleNeighbors, v as u64)
}

fn sampled_key(v: u32) -> Key {
    Key::of(KeyTag::Sampled, v as u64)
}

fn priority_key(v: u32) -> Key {
    Key::of(KeyTag::Priority, v as u64)
}

/// Result of one sampled vertex's bidirectional traversal.
struct Traversal {
    vertex: u32,
    left_end: u32,
    right_end: u32,
    covered: Vec<u32>,
}

/// Walk one direction of a cycle starting at `start`'s neighbour `first`,
/// stopping at a sampled vertex or when the walk returns to `start`.
///
/// Returns `(end, covered)` where `covered` lists the unsampled interior
/// vertices visited.  All reads are adaptive single-key lookups.
fn walk(
    ctx: &mut ampc_runtime::MachineContext,
    start: u32,
    first: u32,
    limit: usize,
) -> (u32, Vec<u32>) {
    let mut covered = Vec::new();
    let mut prev = start;
    let mut cur = first;
    for _ in 0..limit {
        if cur == start {
            return (start, covered);
        }
        let is_sampled = ctx.read(sampled_key(cur)).is_some();
        if is_sampled {
            return (cur, covered);
        }
        covered.push(cur);
        let nbrs = ctx
            .read(cycle_key(cur))
            .expect("cycle adjacency missing from DDS");
        let (a, b) = (nbrs.x as u32, nbrs.y as u32);
        let next = if a != prev {
            a
        } else if b != prev {
            b
        } else {
            // Both neighbours equal `prev`: a two-vertex cycle; wrap around.
            return (start, covered);
        };
        prev = cur;
        cur = next;
    }
    // Limit hit: treat as a full wrap (cannot happen for well-formed cycles).
    (start, covered)
}

/// Internal driver state shared by the 2-Cycle and cycle-connectivity
/// algorithms: the live cycle adjacency plus, for connectivity, the mapping
/// from original vertices to their current live representative.
pub(crate) struct ShrinkState {
    /// Adjacency of the live (contracted) cycle graph.
    pub nbrs: CycleNeighbors,
    /// `assign[v]` = live vertex currently representing original vertex `v`.
    pub assign: Vec<u32>,
}

/// Run `Shrink(G, ε/2, ·)` until at most `target` vertices remain (or the
/// iteration cap is reached).  Returns the contracted state.
pub(crate) fn shrink_cycles(
    runtime: &mut AmpcRuntime,
    mut state: ShrinkState,
    n_original: usize,
    epsilon: f64,
    target: usize,
    seed: u64,
) -> ShrinkState {
    let mut rng = StdRng::seed_from_u64(seed);
    let sample_probability = (n_original.max(2) as f64).powf(-epsilon / 2.0);
    let max_iterations = (4.0 / epsilon).ceil() as usize + 4;

    for _iteration in 0..max_iterations {
        let alive: Vec<u32> = state.nbrs.keys().copied().collect();
        if alive.len() <= target {
            break;
        }

        // Sample the contraction targets for this iteration.
        let sampled: FxHashSet<u32> = alive
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(sample_probability))
            .collect();
        if sampled.is_empty() {
            // Nothing to contract onto; retry with a fresh sample.
            continue;
        }

        // Publish the live cycle graph and the sample marks (one round of
        // MPC-style scatter), then run the adaptive traversal round.
        let mut pairs: Vec<(Key, Value)> = Vec::with_capacity(alive.len() + sampled.len());
        for (&v, &(a, b)) in &state.nbrs {
            pairs.push((cycle_key(v), Value::pair(a as u64, b as u64)));
        }
        for &v in &sampled {
            pairs.push((sampled_key(v), Value::scalar(1)));
        }
        runtime.scatter(pairs);

        let sampled_list: Vec<u32> = sampled.iter().copied().collect();
        let machines = runtime.config().num_machines();
        let assignments = crate::common::round_robin_assign(&sampled_list, machines);
        let limit = alive.len() + 2;
        let traversals: Vec<Vec<Traversal>> = runtime
            .run_round(machines, |ctx| {
                let mut results = Vec::new();
                for &v in &assignments[ctx.machine_id()] {
                    let nbrs = ctx
                        .read(cycle_key(v))
                        .expect("sampled vertex missing adjacency");
                    let (a, b) = (nbrs.x as u32, nbrs.y as u32);
                    let (left_end, mut covered) = walk(ctx, v, a, limit);
                    if left_end == v {
                        // The walk wrapped the whole cycle; no need to walk
                        // the other direction.
                        results.push(Traversal {
                            vertex: v,
                            left_end: v,
                            right_end: v,
                            covered,
                        });
                        continue;
                    }
                    let (right_end, covered_right) = walk(ctx, v, b, limit);
                    covered.extend(covered_right);
                    results.push(Traversal {
                        vertex: v,
                        left_end,
                        right_end,
                        covered,
                    });
                }
                results
            })
            .expect("shrink round failed");

        // Driver side: rebuild the contracted graph (standard MPC primitives).
        let mut redirect: FxHashMap<u32, u32> = FxHashMap::default();
        let mut new_nbrs = CycleNeighbors::default();
        let mut covered_any: FxHashSet<u32> = FxHashSet::default();
        for t in traversals.into_iter().flatten() {
            new_nbrs.insert(t.vertex, (t.left_end, t.right_end));
            covered_any.insert(t.vertex);
            for u in t.covered {
                covered_any.insert(u);
                redirect.insert(u, t.vertex);
            }
        }
        // Cycles without a single sampled vertex pass through unchanged.
        for (&v, &nbrs) in &state.nbrs {
            if !covered_any.contains(&v) {
                new_nbrs.insert(v, nbrs);
            }
        }

        if !redirect.is_empty() {
            for label in state.assign.iter_mut() {
                if let Some(&to) = redirect.get(label) {
                    *label = to;
                }
            }
        }
        let shrank = new_nbrs.len() < state.nbrs.len();
        state.nbrs = new_nbrs;
        if !shrank && state.nbrs.len() <= target.max(sampled.len()) {
            break;
        }
    }
    state
}

/// Count the cycles of a small cycle graph on a single machine.
fn count_cycles(nbrs: &CycleNeighbors) -> usize {
    let mut visited: FxHashSet<u32> = FxHashSet::default();
    let mut cycles = 0usize;
    for (&start, _) in nbrs.iter() {
        if visited.contains(&start) {
            continue;
        }
        cycles += 1;
        let mut prev = start;
        let mut cur = start;
        loop {
            visited.insert(cur);
            let &(a, b) = nbrs.get(&cur).expect("dangling cycle pointer");
            // First step from `start` picks an arbitrary direction (`a`);
            // afterwards keep moving away from `prev`.
            let next = if (cur == start && prev == start) || a != prev {
                a
            } else {
                b
            };
            if next == start || next == cur {
                break;
            }
            prev = cur;
            cur = next;
        }
    }
    cycles
}

/// Default runtime for a cycle problem on `n` vertices.
fn runtime_for(n: usize, m: usize, epsilon: f64, seed: u64) -> AmpcRuntime {
    AmpcRuntime::new(AmpcConfig::for_graph(n, m, epsilon).with_seed(seed))
}

/// Algorithm 2: solve the 2-Cycle problem in `O(1/ε)` AMPC rounds.
///
/// # Panics
/// If the input is not a disjoint union of one or two cycles.
pub fn two_cycle(graph: &Graph, epsilon: f64, seed: u64) -> AlgorithmResult<TwoCycleAnswer> {
    let n = graph.num_vertices();
    let nbrs = cycle_neighbors_of(graph);
    let mut runtime = runtime_for(n, graph.num_edges(), epsilon, seed);
    let target = (n as f64).powf(epsilon).ceil() as usize;
    let state = ShrinkState {
        nbrs,
        assign: (0..n as u32).collect(),
    };
    let state = shrink_cycles(
        &mut runtime,
        state,
        n,
        epsilon,
        target.max(4),
        seed ^ 0xc0ffee,
    );
    let answer = match count_cycles(&state.nbrs) {
        1 => TwoCycleAnswer::OneCycle,
        2 => TwoCycleAnswer::TwoCycles,
        k => panic!("2-Cycle instance resolved to {k} cycles"),
    };
    AlgorithmResult::new(answer, runtime.into_stats())
}

/// Algorithm 10: connected components of a union of cycles in `O(1/ε)`
/// AMPC rounds, given directly as a cycle adjacency over vertex ids
/// `0..n_original` (only live ids need entries).
pub fn cycle_connectivity_from_neighbors(
    nbrs: CycleNeighbors,
    n_original: usize,
    epsilon: f64,
    seed: u64,
) -> AlgorithmResult<Vec<u32>> {
    let m = nbrs.len();
    let mut runtime = runtime_for(n_original.max(1), m, epsilon, seed);
    let target = (n_original.max(2) as f64).powf(epsilon).ceil() as usize;
    let state = ShrinkState {
        nbrs,
        assign: (0..n_original as u32).collect(),
    };
    let state = shrink_cycles(
        &mut runtime,
        state,
        n_original.max(1),
        epsilon,
        target.max(4),
        seed ^ 0xbeef,
    );

    // Final phase (Algorithm 10, steps 2–3): a random priority per surviving
    // vertex; each vertex walks one direction until it meets a smaller
    // priority or wraps.  The minimum-priority vertex of every cycle becomes
    // its representative.
    let alive: Vec<u32> = state.nbrs.keys().copied().collect();
    let mut parent: FxHashMap<u32, u32> = FxHashMap::default();
    if !alive.is_empty() {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let mut priority: FxHashMap<u32, u64> = FxHashMap::default();
        for &v in &alive {
            priority.insert(v, rng.gen());
        }
        let mut pairs: Vec<(Key, Value)> = Vec::with_capacity(2 * alive.len());
        for (&v, &(a, b)) in &state.nbrs {
            pairs.push((cycle_key(v), Value::pair(a as u64, b as u64)));
            pairs.push((priority_key(v), Value::scalar(priority[&v])));
        }
        runtime.scatter(pairs);

        let machines = runtime.config().num_machines();
        let assignments = crate::common::round_robin_assign(&alive, machines);
        let limit = alive.len() + 2;
        let results: Vec<Vec<(u32, u32)>> = runtime
            .run_round(machines, |ctx| {
                let mut out = Vec::new();
                for &v in &assignments[ctx.machine_id()] {
                    let my_priority = ctx.read(priority_key(v)).expect("priority missing").x;
                    let nbrs = ctx.read(cycle_key(v)).expect("cycle adjacency missing");
                    let mut prev = v;
                    let mut cur = nbrs.x as u32;
                    let mut stop = v;
                    for _ in 0..limit {
                        if cur == v {
                            break; // wrapped: v is the minimum of its cycle
                        }
                        let p = ctx.read(priority_key(cur)).expect("priority missing").x;
                        if p < my_priority {
                            stop = cur;
                            break;
                        }
                        let next_nbrs = ctx.read(cycle_key(cur)).expect("cycle adjacency missing");
                        let (a, b) = (next_nbrs.x as u32, next_nbrs.y as u32);
                        let next = if a != prev { a } else { b };
                        if next == cur {
                            break;
                        }
                        prev = cur;
                        cur = next;
                    }
                    out.push((v, stop));
                }
                out
            })
            .expect("cycle connectivity round failed");
        for pair in results.into_iter().flatten() {
            parent.insert(pair.0, pair.1);
        }
    }

    // Resolve the parent chains (each hop strictly decreases the priority,
    // so chains terminate at the cycle minimum) — driver-side bookkeeping.
    fn resolve(v: u32, parent: &FxHashMap<u32, u32>, memo: &mut FxHashMap<u32, u32>) -> u32 {
        if let Some(&r) = memo.get(&v) {
            return r;
        }
        let p = *parent.get(&v).unwrap_or(&v);
        let root = if p == v { v } else { resolve(p, parent, memo) };
        memo.insert(v, root);
        root
    }
    let mut memo: FxHashMap<u32, u32> = FxHashMap::default();
    let labels: Vec<u32> = state
        .assign
        .iter()
        .map(|&live| resolve(live, &parent, &mut memo))
        .collect();
    AlgorithmResult::new(canonicalize_labels(&labels), runtime.into_stats())
}

/// Algorithm 10 applied to a [`Graph`] that is a disjoint union of cycles.
pub fn cycle_connectivity(graph: &Graph, epsilon: f64, seed: u64) -> AlgorithmResult<Vec<u32>> {
    let nbrs = cycle_neighbors_of(graph);
    cycle_connectivity_from_neighbors(nbrs, graph.num_vertices(), epsilon, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::{generators, sequential};

    #[test]
    fn two_cycle_distinguishes_instances() {
        for seed in 0..3 {
            let one = generators::two_cycle_instance(400, false, seed);
            let two = generators::two_cycle_instance(400, true, seed);
            assert_eq!(two_cycle(&one, 0.5, seed).output, TwoCycleAnswer::OneCycle);
            assert_eq!(two_cycle(&two, 0.5, seed).output, TwoCycleAnswer::TwoCycles);
        }
    }

    #[test]
    fn two_cycle_round_count_is_constant_in_n() {
        let small = generators::two_cycle_instance(200, false, 1);
        let large = generators::two_cycle_instance(5000, false, 1);
        let small_rounds = two_cycle(&small, 0.5, 1).rounds();
        let large_rounds = two_cycle(&large, 0.5, 1).rounds();
        // O(1/ε) rounds: a 25x larger instance may take at most a couple more
        // iterations, never Θ(log n) more.
        assert!(small_rounds <= 16, "small rounds = {small_rounds}");
        assert!(large_rounds <= 16, "large rounds = {large_rounds}");
    }

    #[test]
    fn two_cycle_with_small_epsilon_uses_more_rounds() {
        let g = generators::two_cycle_instance(2000, true, 7);
        let coarse = two_cycle(&g, 0.75, 7).rounds();
        let fine = two_cycle(&g, 0.25, 7).rounds();
        assert!(fine >= coarse, "fine = {fine}, coarse = {coarse}");
    }

    #[test]
    fn cycle_connectivity_matches_sequential_on_unions_of_cycles() {
        // Build a graph that is a union of cycles of different sizes.
        let mut edges = Vec::new();
        let mut offset = 0u32;
        for len in [3usize, 5, 17, 50, 120] {
            for i in 0..len as u32 {
                edges.push(ampc_graph::Edge::new(
                    offset + i,
                    offset + (i + 1) % len as u32,
                ));
            }
            offset += len as u32;
        }
        let g = Graph::from_edges(offset as usize, &edges);
        let result = cycle_connectivity(&g, 0.5, 3);
        assert_eq!(result.output, sequential::connected_components(&g));
    }

    #[test]
    fn cycle_connectivity_on_two_cycles() {
        let g = generators::two_cycles(300);
        let result = cycle_connectivity(&g, 0.5, 11);
        assert_eq!(result.output, sequential::connected_components(&g));
        let distinct: std::collections::HashSet<u32> = result.output.iter().copied().collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn shrink_reduces_vertex_count() {
        let g = generators::cycle(4000);
        let n = g.num_vertices();
        let mut runtime = runtime_for(n, n, 0.5, 9);
        let state = ShrinkState {
            nbrs: cycle_neighbors_of(&g),
            assign: (0..n as u32).collect(),
        };
        let shrunk = shrink_cycles(&mut runtime, state, n, 0.5, 64, 9);
        assert!(
            shrunk.nbrs.len() <= 200,
            "still {} vertices alive",
            shrunk.nbrs.len()
        );
        // Every original vertex maps to a live vertex.
        for &rep in &shrunk.assign {
            assert!(shrunk.nbrs.contains_key(&rep));
        }
    }

    #[test]
    fn count_cycles_handles_contracted_forms() {
        // Self-loop (fully contracted cycle) plus a 2-vertex contracted cycle.
        let mut nbrs = CycleNeighbors::default();
        nbrs.insert(7, (7, 7));
        nbrs.insert(1, (2, 2));
        nbrs.insert(2, (1, 1));
        assert_eq!(count_cycles(&nbrs), 2);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn non_cycle_input_rejected() {
        let g = generators::path(10);
        let _ = two_cycle(&g, 0.5, 0);
    }

    #[test]
    fn communication_per_machine_stays_bounded() {
        let g = generators::two_cycle_instance(4096, false, 5);
        let result = two_cycle(&g, 0.5, 5);
        let s = (4096f64).powf(0.5);
        // Lemma 4.3: O(n^ε) communication per machine per round.  Allow a
        // generous constant for the simulation.
        assert!(
            (result.stats.max_machine_communication() as f64) < 40.0 * s,
            "max machine communication = {}",
            result.stats.max_machine_communication()
        );
    }
}

//! Section 4: the `Shrink` primitive and the 2-Cycle algorithm.
//!
//! `Shrink` (Algorithm 1) contracts a union of cycles onto a random sample
//! of its vertices: every sampled vertex walks the cycle in both directions
//! — an *adaptive* pointer chase that MPC cannot do inside one round — until
//! it meets another sampled vertex, and the path between consecutive samples
//! becomes a single edge.  With sampling probability `n^{-ε/2}` the cycle
//! lengths shrink by a factor `n^{ε/2}` per iteration w.h.p., so after
//! `O(1/ε)` iterations everything fits on one machine.
//!
//! The 2-Cycle algorithm (Algorithm 2) is `Shrink` followed by a single-
//! machine count of the surviving cycles; [`cycle_connectivity`]
//! (Algorithm 10, used by forest connectivity in Section 8) replaces the
//! final count with one more adaptive round that elects the minimum-priority
//! vertex of each surviving cycle as its representative.
//!
//! One practical deviation, documented in DESIGN.md: a cycle that receives
//! no sample in an iteration is passed through to the next iteration
//! unchanged instead of being lost.  The paper's analysis makes this a
//! w.h.p. non-event for the Θ(n)-length cycles of the 2-Cycle problem; the
//! pass-through keeps the algorithm *always* correct, also for the short
//! cycles that arise when forest connectivity feeds Euler tours in.

use crate::common::AlgorithmResult;
use ampc_dds::{FxHashMap, FxHashSet, Key, KeyTag, Value};
use ampc_graph::{canonicalize_labels, Graph};
use ampc_runtime::{
    with_dds_backend, AmpcConfig, AmpcRuntime, DdsBackend, MachineContext, SnapshotView,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Answer to a 2-Cycle instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TwoCycleAnswer {
    /// The input is a single cycle.
    OneCycle,
    /// The input consists of two cycles.
    TwoCycles,
}

/// Adjacency of a union of cycles: every live vertex has exactly two
/// incident cycle edges (which may coincide after contraction, or point back
/// to the vertex itself once a whole cycle has collapsed onto it).
pub type CycleNeighbors = FxHashMap<u32, (u32, u32)>;

/// Extract the cycle adjacency of a graph whose every vertex has degree 2.
///
/// # Panics
/// If some vertex does not have degree exactly 2.
pub fn cycle_neighbors_of(graph: &Graph) -> CycleNeighbors {
    let mut nbrs = CycleNeighbors::default();
    for v in 0..graph.num_vertices() as u32 {
        let adjacent = graph.neighbors(v);
        assert_eq!(
            adjacent.len(),
            2,
            "vertex {v} has degree {} (cycle graphs need degree 2)",
            adjacent.len()
        );
        nbrs.insert(v, (adjacent[0], adjacent[1]));
    }
    nbrs
}

fn cycle_key(v: u32) -> Key {
    Key::of(KeyTag::CycleNeighbors, v as u64)
}

fn sampled_key(v: u32) -> Key {
    Key::of(KeyTag::Sampled, v as u64)
}

fn priority_key(v: u32) -> Key {
    Key::of(KeyTag::Priority, v as u64)
}

/// Result of one sampled vertex's bidirectional traversal.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Traversal {
    vertex: u32,
    left_end: u32,
    right_end: u32,
    covered: Vec<u32>,
}

/// Phase of one lockstep traversal: which key the walk needs next.
enum WalkPhase {
    /// Read `cycle_key(v)` to learn the two directions.
    NeedAdjacency,
    /// Read `sampled_key(cur)`.
    NeedSampled,
    /// Read `cycle_key(cur)` to take the next hop.
    NeedStep,
    /// Traversal finished.
    Done,
}

/// Lockstep state of one sampled vertex's bidirectional traversal.
///
/// The walk logic is *identical* to the old sequential single-read version
/// (same reads, same order per walk, same termination cases); only the
/// scheduling changed: every active traversal of a machine contributes its
/// one pending key to a shared `read_many` flight per tick, so a machine
/// covering `k` samples pipelines `k` independent reads per hop instead of
/// issuing them one at a time.
struct WalkTask {
    v: u32,
    phase: WalkPhase,
    /// 0 = walking the `a` direction, 1 = walking the `b` direction.
    direction: u8,
    /// First neighbour of the second direction (stored at init).
    second: u32,
    prev: u32,
    cur: u32,
    /// Remaining loop iterations of the current direction's walk.
    steps_left: usize,
    limit: usize,
    covered: Vec<u32>,
    left_end: u32,
}

impl WalkTask {
    fn new(v: u32, limit: usize) -> Self {
        WalkTask {
            v,
            phase: WalkPhase::NeedAdjacency,
            direction: 0,
            second: v,
            prev: v,
            cur: v,
            steps_left: 0,
            limit,
            covered: Vec::new(),
            left_end: v,
        }
    }

    /// Start walking from `first`, then run the read-free checks of the loop
    /// head (wrap detection, iteration limit) until the walk needs a read or
    /// the whole traversal completes.  Returns the finished traversal, if
    /// any.
    fn begin_direction(&mut self, first: u32) -> Option<Traversal> {
        self.prev = self.v;
        self.cur = first;
        self.steps_left = self.limit;
        self.enter_iteration()
    }

    fn enter_iteration(&mut self) -> Option<Traversal> {
        if self.cur == self.v || self.steps_left == 0 {
            // Wrapped (or limit hit, treated as a wrap — cannot happen for
            // well-formed cycles).
            return self.end_direction(self.v);
        }
        self.steps_left -= 1;
        self.phase = WalkPhase::NeedSampled;
        None
    }

    /// One direction ended at `end` (a sampled vertex, or `v` on a wrap).
    fn end_direction(&mut self, end: u32) -> Option<Traversal> {
        if self.direction == 0 {
            self.left_end = end;
            if end == self.v {
                // The walk wrapped the whole cycle; no need to walk the
                // other direction.
                self.phase = WalkPhase::Done;
                return Some(Traversal {
                    vertex: self.v,
                    left_end: self.v,
                    right_end: self.v,
                    covered: std::mem::take(&mut self.covered),
                });
            }
            self.direction = 1;
            let second = self.second;
            self.begin_direction(second)
        } else {
            self.phase = WalkPhase::Done;
            Some(Traversal {
                vertex: self.v,
                left_end: self.left_end,
                right_end: end,
                covered: std::mem::take(&mut self.covered),
            })
        }
    }

    /// Feed the reply for the key this task asked for; returns the finished
    /// traversal once the second direction ends.
    fn apply(&mut self, reply: Option<Value>) -> Option<Traversal> {
        match self.phase {
            WalkPhase::NeedAdjacency => {
                let nbrs = reply.expect("sampled vertex missing adjacency");
                let (a, b) = (nbrs.x as u32, nbrs.y as u32);
                self.second = b;
                self.begin_direction(a)
            }
            WalkPhase::NeedSampled => {
                if reply.is_some() {
                    return self.end_direction(self.cur);
                }
                self.covered.push(self.cur);
                self.phase = WalkPhase::NeedStep;
                None
            }
            WalkPhase::NeedStep => {
                let nbrs = reply.expect("cycle adjacency missing from DDS");
                let (a, b) = (nbrs.x as u32, nbrs.y as u32);
                let next = if a != self.prev {
                    a
                } else if b != self.prev {
                    b
                } else {
                    // Both neighbours equal `prev`: a two-vertex cycle; wrap.
                    return self.end_direction(self.v);
                };
                self.prev = self.cur;
                self.cur = next;
                self.enter_iteration()
            }
            WalkPhase::Done => unreachable!("finished task polled"),
        }
    }

    /// The key this task needs next, if it is still running.
    fn pending_key(&self) -> Option<Key> {
        match self.phase {
            WalkPhase::NeedAdjacency => Some(cycle_key(self.v)),
            WalkPhase::NeedSampled => Some(sampled_key(self.cur)),
            WalkPhase::NeedStep => Some(cycle_key(self.cur)),
            WalkPhase::Done => None,
        }
    }
}

/// Run the bidirectional traversals of all of a machine's sampled vertices
/// in lockstep: one `read_many` flight per tick carries every active walk's
/// pending key (ROADMAP read-path item).
///
/// Each traversal issues exactly the reads (in exactly the per-walk order)
/// the sequential single-read version issued, so per-machine query totals —
/// and therefore the `O(S)` budget debits — are identical; only the
/// interleaving across a machine's walks changes.  Results come back in
/// `vertices` order.  Asserted against the single-read reference by
/// `lockstep_traversals_debit_budget_like_single_reads`.
fn traverse_samples<V: SnapshotView>(
    ctx: &mut MachineContext<V>,
    vertices: &[u32],
    limit: usize,
) -> Vec<Traversal> {
    let mut tasks: Vec<WalkTask> = vertices.iter().map(|&v| WalkTask::new(v, limit)).collect();
    let mut results: Vec<Option<Traversal>> = (0..tasks.len()).map(|_| None).collect();
    let mut keys: Vec<Key> = Vec::with_capacity(tasks.len());
    let mut owners: Vec<usize> = Vec::with_capacity(tasks.len());
    let mut replies: Vec<Option<Value>> = Vec::new();
    loop {
        keys.clear();
        owners.clear();
        for (i, task) in tasks.iter().enumerate() {
            if let Some(key) = task.pending_key() {
                keys.push(key);
                owners.push(i);
            }
        }
        if keys.is_empty() {
            break;
        }
        ctx.read_many_into(&keys, &mut replies);
        for (reply, &i) in replies.iter().zip(owners.iter()) {
            if let Some(traversal) = tasks[i].apply(*reply) {
                results[i] = Some(traversal);
            }
        }
    }
    results
        .into_iter()
        .map(|t| t.expect("every traversal terminates"))
        .collect()
}

/// Internal driver state shared by the 2-Cycle and cycle-connectivity
/// algorithms: the live cycle adjacency plus, for connectivity, the mapping
/// from original vertices to their current live representative.
pub(crate) struct ShrinkState {
    /// Adjacency of the live (contracted) cycle graph.
    pub nbrs: CycleNeighbors,
    /// `assign[v]` = live vertex currently representing original vertex `v`.
    pub assign: Vec<u32>,
}

/// Run `Shrink(G, ε/2, ·)` until at most `target` vertices remain (or the
/// iteration cap is reached).  Returns the contracted state.
pub(crate) fn shrink_cycles<B: DdsBackend>(
    runtime: &mut AmpcRuntime<B>,
    mut state: ShrinkState,
    n_original: usize,
    epsilon: f64,
    target: usize,
    seed: u64,
) -> ShrinkState {
    let mut rng = StdRng::seed_from_u64(seed);
    let sample_probability = (n_original.max(2) as f64).powf(-epsilon / 2.0);
    let max_iterations = (4.0 / epsilon).ceil() as usize + 4;

    for _iteration in 0..max_iterations {
        let alive: Vec<u32> = state.nbrs.keys().copied().collect();
        if alive.len() <= target {
            break;
        }

        // Sample the contraction targets for this iteration.
        let sampled: FxHashSet<u32> = alive
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(sample_probability))
            .collect();
        if sampled.is_empty() {
            // Nothing to contract onto; retry with a fresh sample.
            continue;
        }

        // Publish the live cycle graph and the sample marks (one round of
        // MPC-style scatter), then run the adaptive traversal round.
        let mut pairs: Vec<(Key, Value)> = Vec::with_capacity(alive.len() + sampled.len());
        for (&v, &(a, b)) in &state.nbrs {
            pairs.push((cycle_key(v), Value::pair(a as u64, b as u64)));
        }
        for &v in &sampled {
            pairs.push((sampled_key(v), Value::scalar(1)));
        }
        runtime.scatter(pairs);

        let sampled_list: Vec<u32> = sampled.iter().copied().collect();
        let machines = runtime.config().num_machines();
        let assignments = crate::common::round_robin_assign(&sampled_list, machines);
        let limit = alive.len() + 2;
        let traversals: Vec<Vec<Traversal>> = runtime
            .run_round(machines, |ctx| {
                traverse_samples(ctx, &assignments[ctx.machine_id()], limit)
            })
            .expect("shrink round failed");

        // Driver side: rebuild the contracted graph (standard MPC primitives).
        let mut redirect: FxHashMap<u32, u32> = FxHashMap::default();
        let mut new_nbrs = CycleNeighbors::default();
        let mut covered_any: FxHashSet<u32> = FxHashSet::default();
        for t in traversals.into_iter().flatten() {
            new_nbrs.insert(t.vertex, (t.left_end, t.right_end));
            covered_any.insert(t.vertex);
            for u in t.covered {
                covered_any.insert(u);
                redirect.insert(u, t.vertex);
            }
        }
        // Cycles without a single sampled vertex pass through unchanged.
        for (&v, &nbrs) in &state.nbrs {
            if !covered_any.contains(&v) {
                new_nbrs.insert(v, nbrs);
            }
        }

        if !redirect.is_empty() {
            for label in state.assign.iter_mut() {
                if let Some(&to) = redirect.get(label) {
                    *label = to;
                }
            }
        }
        let shrank = new_nbrs.len() < state.nbrs.len();
        state.nbrs = new_nbrs;
        if !shrank && state.nbrs.len() <= target.max(sampled.len()) {
            break;
        }
    }
    state
}

/// Count the cycles of a small cycle graph on a single machine.
fn count_cycles(nbrs: &CycleNeighbors) -> usize {
    let mut visited: FxHashSet<u32> = FxHashSet::default();
    let mut cycles = 0usize;
    for (&start, _) in nbrs.iter() {
        if visited.contains(&start) {
            continue;
        }
        cycles += 1;
        let mut prev = start;
        let mut cur = start;
        loop {
            visited.insert(cur);
            let &(a, b) = nbrs.get(&cur).expect("dangling cycle pointer");
            // First step from `start` picks an arbitrary direction (`a`);
            // afterwards keep moving away from `prev`.
            let next = if (cur == start && prev == start) || a != prev {
                a
            } else {
                b
            };
            if next == start || next == cur {
                break;
            }
            prev = cur;
            cur = next;
        }
    }
    cycles
}

/// Phase of one lockstep minimum-priority election walk.
enum ElectPhase {
    /// Read `priority_key(v)` and `cycle_key(v)` (one two-key flight; the
    /// single-read path issued the same two queries back to back).
    NeedInit,
    /// Read `priority_key(cur)`.
    NeedPriority,
    /// Read `cycle_key(cur)`.
    NeedStep,
    /// Walk finished; `stop` holds the result.
    Done,
}

/// Lockstep state of one vertex's election walk (Algorithm 10, step 3).
struct ElectTask {
    v: u32,
    phase: ElectPhase,
    my_priority: u64,
    prev: u32,
    cur: u32,
    steps_left: usize,
    stop: u32,
}

impl ElectTask {
    fn new(v: u32, limit: usize) -> Self {
        ElectTask {
            v,
            phase: ElectPhase::NeedInit,
            my_priority: 0,
            prev: v,
            cur: v,
            steps_left: limit,
            stop: v,
        }
    }

    /// Loop-head checks that need no read (wrap, iteration limit).
    fn enter_iteration(&mut self) {
        if self.cur == self.v || self.steps_left == 0 {
            self.phase = ElectPhase::Done; // wrapped: v is its cycle's minimum
            return;
        }
        self.steps_left -= 1;
        self.phase = ElectPhase::NeedPriority;
    }

    /// Keys this task needs next (at most 2, only at init).
    fn pending_keys(&self, keys: &mut Vec<Key>, owners: &mut Vec<usize>, index: usize) {
        match self.phase {
            ElectPhase::NeedInit => {
                keys.push(priority_key(self.v));
                keys.push(cycle_key(self.v));
                owners.push(index);
                owners.push(index);
            }
            ElectPhase::NeedPriority => {
                keys.push(priority_key(self.cur));
                owners.push(index);
            }
            ElectPhase::NeedStep => {
                keys.push(cycle_key(self.cur));
                owners.push(index);
            }
            ElectPhase::Done => {}
        }
    }

    fn apply(&mut self, reply: Option<Value>) {
        match self.phase {
            ElectPhase::NeedInit => {
                // First reply of the init pair: the priority.  The adjacency
                // reply follows in the same flight and lands in NeedStep-like
                // handling below via `apply_init_adjacency`.
                self.my_priority = reply.expect("priority missing").x;
                // Stay in NeedInit until the adjacency reply arrives.
            }
            ElectPhase::NeedPriority => {
                let p = reply.expect("priority missing").x;
                if p < self.my_priority {
                    self.stop = self.cur;
                    self.phase = ElectPhase::Done;
                    return;
                }
                self.phase = ElectPhase::NeedStep;
            }
            ElectPhase::NeedStep => {
                let nbrs = reply.expect("cycle adjacency missing");
                let (a, b) = (nbrs.x as u32, nbrs.y as u32);
                let next = if a != self.prev { a } else { b };
                if next == self.cur {
                    self.phase = ElectPhase::Done;
                    return;
                }
                self.prev = self.cur;
                self.cur = next;
                self.enter_iteration();
            }
            ElectPhase::Done => unreachable!("finished task polled"),
        }
    }

    /// Second reply of the init pair: the walk's starting adjacency.
    fn apply_init_adjacency(&mut self, reply: Option<Value>) {
        let nbrs = reply.expect("cycle adjacency missing");
        self.prev = self.v;
        self.cur = nbrs.x as u32;
        self.enter_iteration();
    }
}

/// Run every assigned vertex's election walk in lockstep, one batched
/// flight per tick (same read sequence per walk as the single-read path, so
/// budgets debit identically).  Returns `(v, representative)` pairs in
/// `vertices` order.
fn elect_minima<V: SnapshotView>(
    ctx: &mut MachineContext<V>,
    vertices: &[u32],
    limit: usize,
) -> Vec<(u32, u32)> {
    let mut tasks: Vec<ElectTask> = vertices.iter().map(|&v| ElectTask::new(v, limit)).collect();
    let mut keys: Vec<Key> = Vec::with_capacity(2 * tasks.len());
    let mut owners: Vec<usize> = Vec::with_capacity(2 * tasks.len());
    let mut replies: Vec<Option<Value>> = Vec::new();
    loop {
        keys.clear();
        owners.clear();
        for (i, task) in tasks.iter().enumerate() {
            task.pending_keys(&mut keys, &mut owners, i);
        }
        if keys.is_empty() {
            break;
        }
        ctx.read_many_into(&keys, &mut replies);
        let mut slot = 0usize;
        while slot < owners.len() {
            let i = owners[slot];
            if matches!(tasks[i].phase, ElectPhase::NeedInit) {
                // Init pairs occupy two adjacent slots of the flight.
                tasks[i].apply(replies[slot]);
                tasks[i].apply_init_adjacency(replies[slot + 1]);
                slot += 2;
            } else {
                tasks[i].apply(replies[slot]);
                slot += 1;
            }
        }
    }
    tasks.into_iter().map(|t| (t.v, t.stop)).collect()
}

/// Algorithm 2: solve the 2-Cycle problem in `O(1/ε)` AMPC rounds.
///
/// # Panics
/// If the input is not a disjoint union of one or two cycles.
pub fn two_cycle(graph: &Graph, epsilon: f64, seed: u64) -> AlgorithmResult<TwoCycleAnswer> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    two_cycle_with(graph, &AmpcConfig::for_graph(n, m, epsilon).with_seed(seed))
}

/// [`two_cycle`] with an explicit [`AmpcConfig`]: ε and seed are taken from
/// the config, which also selects the DDS backend.
pub fn two_cycle_with(graph: &Graph, config: &AmpcConfig) -> AlgorithmResult<TwoCycleAnswer> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let config = config.derive(n, n + m);
    with_dds_backend!(config, |runtime| two_cycle_impl(graph, runtime))
}

fn two_cycle_impl<B: DdsBackend>(
    graph: &Graph,
    mut runtime: AmpcRuntime<B>,
) -> AlgorithmResult<TwoCycleAnswer> {
    let n = graph.num_vertices();
    let epsilon = runtime.config().epsilon;
    let seed = runtime.config().seed;
    let nbrs = cycle_neighbors_of(graph);
    let target = (n as f64).powf(epsilon).ceil() as usize;
    let state = ShrinkState {
        nbrs,
        assign: (0..n as u32).collect(),
    };
    let state = shrink_cycles(
        &mut runtime,
        state,
        n,
        epsilon,
        target.max(4),
        seed ^ 0xc0ffee,
    );
    let answer = match count_cycles(&state.nbrs) {
        1 => TwoCycleAnswer::OneCycle,
        2 => TwoCycleAnswer::TwoCycles,
        k => panic!("2-Cycle instance resolved to {k} cycles"),
    };
    AlgorithmResult::new(answer, runtime.into_stats())
}

/// Algorithm 10: connected components of a union of cycles in `O(1/ε)`
/// AMPC rounds, given directly as a cycle adjacency over vertex ids
/// `0..n_original` (only live ids need entries).
pub fn cycle_connectivity_from_neighbors(
    nbrs: CycleNeighbors,
    n_original: usize,
    epsilon: f64,
    seed: u64,
) -> AlgorithmResult<Vec<u32>> {
    let m = nbrs.len();
    cycle_connectivity_from_neighbors_with(
        nbrs,
        n_original,
        &AmpcConfig::for_graph(n_original.max(1), m, epsilon).with_seed(seed),
    )
}

/// [`cycle_connectivity_from_neighbors`] with an explicit [`AmpcConfig`].
pub fn cycle_connectivity_from_neighbors_with(
    nbrs: CycleNeighbors,
    n_original: usize,
    config: &AmpcConfig,
) -> AlgorithmResult<Vec<u32>> {
    let m = nbrs.len();
    let config = config.derive(n_original.max(1), n_original.max(1) + m);
    with_dds_backend!(config, |runtime| cycle_connectivity_impl(
        nbrs, n_original, runtime
    ))
}

fn cycle_connectivity_impl<B: DdsBackend>(
    nbrs: CycleNeighbors,
    n_original: usize,
    mut runtime: AmpcRuntime<B>,
) -> AlgorithmResult<Vec<u32>> {
    let epsilon = runtime.config().epsilon;
    let seed = runtime.config().seed;
    let target = (n_original.max(2) as f64).powf(epsilon).ceil() as usize;
    let state = ShrinkState {
        nbrs,
        assign: (0..n_original as u32).collect(),
    };
    let state = shrink_cycles(
        &mut runtime,
        state,
        n_original.max(1),
        epsilon,
        target.max(4),
        seed ^ 0xbeef,
    );

    // Final phase (Algorithm 10, steps 2–3): a random priority per surviving
    // vertex; each vertex walks one direction until it meets a smaller
    // priority or wraps.  The minimum-priority vertex of every cycle becomes
    // its representative.
    let alive: Vec<u32> = state.nbrs.keys().copied().collect();
    let mut parent: FxHashMap<u32, u32> = FxHashMap::default();
    if !alive.is_empty() {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let mut priority: FxHashMap<u32, u64> = FxHashMap::default();
        for &v in &alive {
            priority.insert(v, rng.gen());
        }
        let mut pairs: Vec<(Key, Value)> = Vec::with_capacity(2 * alive.len());
        for (&v, &(a, b)) in &state.nbrs {
            pairs.push((cycle_key(v), Value::pair(a as u64, b as u64)));
            pairs.push((priority_key(v), Value::scalar(priority[&v])));
        }
        runtime.scatter(pairs);

        let machines = runtime.config().num_machines();
        let assignments = crate::common::round_robin_assign(&alive, machines);
        let limit = alive.len() + 2;
        let results: Vec<Vec<(u32, u32)>> = runtime
            .run_round(machines, |ctx| {
                elect_minima(ctx, &assignments[ctx.machine_id()], limit)
            })
            .expect("cycle connectivity round failed");
        for pair in results.into_iter().flatten() {
            parent.insert(pair.0, pair.1);
        }
    }

    // Resolve the parent chains (each hop strictly decreases the priority,
    // so chains terminate at the cycle minimum) — driver-side bookkeeping.
    fn resolve(v: u32, parent: &FxHashMap<u32, u32>, memo: &mut FxHashMap<u32, u32>) -> u32 {
        if let Some(&r) = memo.get(&v) {
            return r;
        }
        let p = *parent.get(&v).unwrap_or(&v);
        let root = if p == v { v } else { resolve(p, parent, memo) };
        memo.insert(v, root);
        root
    }
    let mut memo: FxHashMap<u32, u32> = FxHashMap::default();
    let labels: Vec<u32> = state
        .assign
        .iter()
        .map(|&live| resolve(live, &parent, &mut memo))
        .collect();
    AlgorithmResult::new(canonicalize_labels(&labels), runtime.into_stats())
}

/// Algorithm 10 applied to a [`Graph`] that is a disjoint union of cycles.
pub fn cycle_connectivity(graph: &Graph, epsilon: f64, seed: u64) -> AlgorithmResult<Vec<u32>> {
    let nbrs = cycle_neighbors_of(graph);
    cycle_connectivity_from_neighbors(nbrs, graph.num_vertices(), epsilon, seed)
}

/// [`cycle_connectivity`] with an explicit [`AmpcConfig`].
pub fn cycle_connectivity_with(graph: &Graph, config: &AmpcConfig) -> AlgorithmResult<Vec<u32>> {
    let nbrs = cycle_neighbors_of(graph);
    cycle_connectivity_from_neighbors_with(nbrs, graph.num_vertices(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::{generators, sequential};

    #[test]
    fn two_cycle_distinguishes_instances() {
        for seed in 0..3 {
            let one = generators::two_cycle_instance(400, false, seed);
            let two = generators::two_cycle_instance(400, true, seed);
            assert_eq!(two_cycle(&one, 0.5, seed).output, TwoCycleAnswer::OneCycle);
            assert_eq!(two_cycle(&two, 0.5, seed).output, TwoCycleAnswer::TwoCycles);
        }
    }

    #[test]
    fn two_cycle_round_count_is_constant_in_n() {
        let small = generators::two_cycle_instance(200, false, 1);
        let large = generators::two_cycle_instance(5000, false, 1);
        let small_rounds = two_cycle(&small, 0.5, 1).rounds();
        let large_rounds = two_cycle(&large, 0.5, 1).rounds();
        // O(1/ε) rounds: a 25x larger instance may take at most a couple more
        // iterations, never Θ(log n) more.
        assert!(small_rounds <= 16, "small rounds = {small_rounds}");
        assert!(large_rounds <= 16, "large rounds = {large_rounds}");
    }

    #[test]
    fn two_cycle_with_small_epsilon_uses_more_rounds() {
        let g = generators::two_cycle_instance(2000, true, 7);
        let coarse = two_cycle(&g, 0.75, 7).rounds();
        let fine = two_cycle(&g, 0.25, 7).rounds();
        assert!(fine >= coarse, "fine = {fine}, coarse = {coarse}");
    }

    #[test]
    fn cycle_connectivity_matches_sequential_on_unions_of_cycles() {
        // Build a graph that is a union of cycles of different sizes.
        let mut edges = Vec::new();
        let mut offset = 0u32;
        for len in [3usize, 5, 17, 50, 120] {
            for i in 0..len as u32 {
                edges.push(ampc_graph::Edge::new(
                    offset + i,
                    offset + (i + 1) % len as u32,
                ));
            }
            offset += len as u32;
        }
        let g = Graph::from_edges(offset as usize, &edges);
        let result = cycle_connectivity(&g, 0.5, 3);
        assert_eq!(result.output, sequential::connected_components(&g));
    }

    #[test]
    fn cycle_connectivity_on_two_cycles() {
        let g = generators::two_cycles(300);
        let result = cycle_connectivity(&g, 0.5, 11);
        assert_eq!(result.output, sequential::connected_components(&g));
        let distinct: std::collections::HashSet<u32> = result.output.iter().copied().collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn shrink_reduces_vertex_count() {
        let g = generators::cycle(4000);
        let n = g.num_vertices();
        let mut runtime = AmpcRuntime::new(AmpcConfig::for_graph(n, n, 0.5).with_seed(9));
        let state = ShrinkState {
            nbrs: cycle_neighbors_of(&g),
            assign: (0..n as u32).collect(),
        };
        let shrunk = shrink_cycles(&mut runtime, state, n, 0.5, 64, 9);
        assert!(
            shrunk.nbrs.len() <= 200,
            "still {} vertices alive",
            shrunk.nbrs.len()
        );
        // Every original vertex maps to a live vertex.
        for &rep in &shrunk.assign {
            assert!(shrunk.nbrs.contains_key(&rep));
        }
    }

    #[test]
    fn count_cycles_handles_contracted_forms() {
        // Self-loop (fully contracted cycle) plus a 2-vertex contracted cycle.
        let mut nbrs = CycleNeighbors::default();
        nbrs.insert(7, (7, 7));
        nbrs.insert(1, (2, 2));
        nbrs.insert(2, (1, 1));
        assert_eq!(count_cycles(&nbrs), 2);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn non_cycle_input_rejected() {
        let g = generators::path(10);
        let _ = two_cycle(&g, 0.5, 0);
    }

    /// The pre-migration sequential walk, kept as the budget reference.
    fn reference_walk<V: SnapshotView>(
        ctx: &mut MachineContext<V>,
        start: u32,
        first: u32,
        limit: usize,
    ) -> (u32, Vec<u32>) {
        let mut covered = Vec::new();
        let mut prev = start;
        let mut cur = first;
        for _ in 0..limit {
            if cur == start {
                return (start, covered);
            }
            if ctx.read(sampled_key(cur)).is_some() {
                return (cur, covered);
            }
            covered.push(cur);
            let nbrs = ctx
                .read(cycle_key(cur))
                .expect("cycle adjacency missing from DDS");
            let (a, b) = (nbrs.x as u32, nbrs.y as u32);
            let next = if a != prev {
                a
            } else if b != prev {
                b
            } else {
                return (start, covered);
            };
            prev = cur;
            cur = next;
        }
        (start, covered)
    }

    fn reference_traversals<V: SnapshotView>(
        ctx: &mut MachineContext<V>,
        vertices: &[u32],
        limit: usize,
    ) -> Vec<Traversal> {
        let mut results = Vec::new();
        for &v in vertices {
            let nbrs = ctx
                .read(cycle_key(v))
                .expect("sampled vertex missing adjacency");
            let (a, b) = (nbrs.x as u32, nbrs.y as u32);
            let (left_end, mut covered) = reference_walk(ctx, v, a, limit);
            if left_end == v {
                results.push(Traversal {
                    vertex: v,
                    left_end: v,
                    right_end: v,
                    covered,
                });
                continue;
            }
            let (right_end, covered_right) = reference_walk(ctx, v, b, limit);
            covered.extend(covered_right);
            results.push(Traversal {
                vertex: v,
                left_end,
                right_end,
                covered,
            });
        }
        results
    }

    #[test]
    fn lockstep_traversals_debit_budget_like_single_reads() {
        // ROADMAP read-path item: the lockstep batched walks must produce
        // the same traversals AND the same query debits as the sequential
        // single-read walks, across cycle shapes (long cycle, short cycles,
        // two-vertex cycle, self-loop).
        let mut nbrs = CycleNeighbors::default();
        for len in [40usize, 3, 2, 1, 17] {
            let offset = nbrs.len() as u32;
            for i in 0..len as u32 {
                let prev = offset + (i + len as u32 - 1) % len as u32;
                let next = offset + (i + 1) % len as u32;
                nbrs.insert(offset + i, (prev, next));
            }
        }
        let n = nbrs.len();
        let sampled: Vec<u32> = vec![0, 5, 20, 40, 43, 45, 46];
        let limit = n + 2;

        let run = |lockstep: bool| {
            let config = AmpcConfig::for_graph(n, n, 0.5).with_seed(3);
            let mut runtime = AmpcRuntime::new(config);
            let mut pairs: Vec<(Key, Value)> = Vec::new();
            for (&v, &(a, b)) in &nbrs {
                pairs.push((cycle_key(v), Value::pair(a as u64, b as u64)));
            }
            for &v in &sampled {
                pairs.push((sampled_key(v), Value::scalar(1)));
            }
            runtime.scatter(pairs);
            let out = runtime
                .run_round(1, |ctx| {
                    let traversals = if lockstep {
                        traverse_samples(ctx, &sampled, limit)
                    } else {
                        reference_traversals(ctx, &sampled, limit)
                    };
                    (traversals, ctx.queries_issued())
                })
                .unwrap();
            out.into_iter().next().unwrap()
        };
        let (lockstep, lockstep_queries) = run(true);
        let (reference, reference_queries) = run(false);
        assert_eq!(lockstep, reference);
        assert_eq!(lockstep_queries, reference_queries);
    }

    #[test]
    fn lockstep_election_debits_budget_like_single_reads() {
        // Election walks: same (v, representative) pairs and same query
        // debits as the sequential priority-chasing loop.
        let mut nbrs = CycleNeighbors::default();
        for len in [12usize, 5, 2, 1] {
            let offset = nbrs.len() as u32;
            for i in 0..len as u32 {
                let prev = offset + (i + len as u32 - 1) % len as u32;
                let next = offset + (i + 1) % len as u32;
                nbrs.insert(offset + i, (prev, next));
            }
        }
        let n = nbrs.len();
        let alive: Vec<u32> = {
            let mut v: Vec<u32> = nbrs.keys().copied().collect();
            v.sort_unstable();
            v
        };
        let mut rng = StdRng::seed_from_u64(0x7e57);
        let priority: FxHashMap<u32, u64> = alive.iter().map(|&v| (v, rng.gen())).collect();
        let limit = n + 2;

        let run = |lockstep: bool| {
            let config = AmpcConfig::for_graph(n, n, 0.5).with_seed(3);
            let mut runtime = AmpcRuntime::new(config);
            let mut pairs: Vec<(Key, Value)> = Vec::new();
            for (&v, &(a, b)) in &nbrs {
                pairs.push((cycle_key(v), Value::pair(a as u64, b as u64)));
                pairs.push((priority_key(v), Value::scalar(priority[&v])));
            }
            runtime.scatter(pairs);
            let out = runtime
                .run_round(1, |ctx| {
                    let elected = if lockstep {
                        elect_minima(ctx, &alive, limit)
                    } else {
                        // The pre-migration sequential election loop.
                        let mut out = Vec::new();
                        for &v in &alive {
                            let my_priority =
                                ctx.read(priority_key(v)).expect("priority missing").x;
                            let nbrs = ctx.read(cycle_key(v)).expect("adjacency missing");
                            let mut prev = v;
                            let mut cur = nbrs.x as u32;
                            let mut stop = v;
                            for _ in 0..limit {
                                if cur == v {
                                    break;
                                }
                                let p = ctx.read(priority_key(cur)).expect("priority missing").x;
                                if p < my_priority {
                                    stop = cur;
                                    break;
                                }
                                let next_nbrs =
                                    ctx.read(cycle_key(cur)).expect("adjacency missing");
                                let (a, b) = (next_nbrs.x as u32, next_nbrs.y as u32);
                                let next = if a != prev { a } else { b };
                                if next == cur {
                                    break;
                                }
                                prev = cur;
                                cur = next;
                            }
                            out.push((v, stop));
                        }
                        out
                    };
                    (elected, ctx.queries_issued())
                })
                .unwrap();
            out.into_iter().next().unwrap()
        };
        let (lockstep, lockstep_queries) = run(true);
        let (reference, reference_queries) = run(false);
        assert_eq!(lockstep, reference);
        assert_eq!(lockstep_queries, reference_queries);
    }

    #[test]
    fn communication_per_machine_stays_bounded() {
        let g = generators::two_cycle_instance(4096, false, 5);
        let result = two_cycle(&g, 0.5, 5);
        let s = (4096f64).powf(0.5);
        // Lemma 4.3: O(n^ε) communication per machine per round.  Allow a
        // generous constant for the simulation.
        assert!(
            (result.stats.max_machine_communication() as f64) < 40.0 * s,
            "max machine communication = {}",
            result.stats.max_machine_communication()
        );
    }
}

//! # ampc-algorithms — the AMPC graph algorithms of the paper
//!
//! Implementation of every algorithm from *"Massively Parallel Computation
//! via Remote Memory Access"* (Behnezhad, Dhulipala, Esfandiari, Łącki,
//! Schudy, Mirrokni — SPAA 2019), running on the [`ampc_runtime`] executor:
//!
//! | Paper section | Module | Round complexity |
//! |---|---|---|
//! | §4 2-Cycle | [`shrink`] | `O(1/ε)` |
//! | §5 Maximal independent set | [`mis`] | `O(1/ε)` |
//! | §6 Connectivity | [`connectivity`] | `O(log log_{m/n} n + 1/ε)` |
//! | §7 Minimum spanning forest | [`msf`] | `O(log log_{m/n} n + 1/ε)` |
//! | §8 Forest connectivity / list ranking / tree ops | [`forest`], [`listrank`], [`euler`] | `O(1/ε)` |
//! | §9 2-edge connectivity | [`two_edge`] | `O(log log_{m/n} n)` |
//!
//! Every public entry point returns an [`AlgorithmResult`] bundling the
//! answer with [`ampc_runtime::RunStats`], so callers (tests, benches, the
//! experiment harness) can assert and report both correctness and the round
//! / communication complexities the paper's theorems are about.
//!
//! Every algorithm also ships a `*_with(…, &AmpcConfig)` variant: the config
//! carries ε, the seed, thread caps and — through
//! [`ampc_runtime::AmpcConfig::backend`](ampc_runtime::config::AmpcConfig) —
//! the DDS backend selection.  The drivers are generic over
//! `ampc_dds::DdsBackend`, so the same code runs against the in-process
//! store or the message-passing [`ampc_dds::ChannelBackend`] with no
//! per-algorithm code paths; `tests/backend_determinism.rs` (workspace root)
//! proves the outputs are byte-identical across backends and thread counts.
//!
//! ```
//! use ampc_algorithms::{connectivity, maximal_independent_set};
//! use ampc_graph::{generators, sequential};
//!
//! let graph = generators::planted_components(200, 4, 3, 7);
//! let result = connectivity(&graph, 0.5, 7);
//! assert_eq!(result.output, sequential::connected_components(&graph));
//!
//! let mis = maximal_independent_set(&graph, 0.5, 7);
//! assert!(sequential::is_maximal_independent_set(&graph, &mis.output));
//! ```

#![warn(missing_docs)]

pub mod common;
pub mod connectivity;
pub mod euler;
pub mod forest;
pub mod listrank;
pub mod mis;
pub mod msf;
pub mod shrink;
pub mod two_edge;

pub use common::AlgorithmResult;
pub use connectivity::{connectivity, connectivity_with};
pub use euler::{
    euler_tour, preorder_numbers, root_forest, root_forest_with, subtree_sizes, EulerTour,
    RootedForest, SparseTableRmq,
};
pub use forest::{forest_connectivity, forest_connectivity_with};
pub use listrank::{
    list_ranking, list_ranking_weighted, list_ranking_weighted_with, list_ranking_with,
};
pub use mis::{maximal_independent_set, maximal_independent_set_with};
pub use msf::{
    minimum_spanning_forest, minimum_spanning_forest_with, spanning_forest, spanning_forest_with,
    MsfOutput,
};
pub use shrink::{
    cycle_connectivity, cycle_connectivity_with, two_cycle, two_cycle_with, TwoCycleAnswer,
};
pub use two_edge::{two_edge_connectivity, two_edge_connectivity_with, BcLabeling};

//! # ampc-algorithms — the AMPC graph algorithms of the paper
//!
//! Implementation of every algorithm from *"Massively Parallel Computation
//! via Remote Memory Access"* (Behnezhad, Dhulipala, Esfandiari, Łącki,
//! Schudy, Mirrokni — SPAA 2019), running on the [`ampc_runtime`] executor:
//!
//! | Paper section | Module | Round complexity |
//! |---|---|---|
//! | §4 2-Cycle | [`shrink`] | `O(1/ε)` |
//! | §5 Maximal independent set | [`mis`] | `O(1/ε)` |
//! | §6 Connectivity | [`connectivity`] | `O(log log_{m/n} n + 1/ε)` |
//! | §7 Minimum spanning forest | [`msf`] | `O(log log_{m/n} n + 1/ε)` |
//! | §8 Forest connectivity / list ranking / tree ops | [`forest`], [`listrank`], [`euler`] | `O(1/ε)` |
//! | §9 2-edge connectivity | [`two_edge`] | `O(log log_{m/n} n)` |
//!
//! Every public entry point returns an [`AlgorithmResult`] bundling the
//! answer with [`ampc_runtime::RunStats`], so callers (tests, benches, the
//! experiment harness) can assert and report both correctness and the round
//! / communication complexities the paper's theorems are about.
//!
//! ```
//! use ampc_algorithms::{connectivity, maximal_independent_set};
//! use ampc_graph::{generators, sequential};
//!
//! let graph = generators::planted_components(200, 4, 3, 7);
//! let result = connectivity(&graph, 0.5, 7);
//! assert_eq!(result.output, sequential::connected_components(&graph));
//!
//! let mis = maximal_independent_set(&graph, 0.5, 7);
//! assert!(sequential::is_maximal_independent_set(&graph, &mis.output));
//! ```

#![warn(missing_docs)]

pub mod common;
pub mod connectivity;
pub mod euler;
pub mod forest;
pub mod listrank;
pub mod mis;
pub mod msf;
pub mod shrink;
pub mod two_edge;

pub use common::AlgorithmResult;
pub use connectivity::connectivity;
pub use euler::{
    euler_tour, preorder_numbers, root_forest, subtree_sizes, EulerTour, RootedForest,
    SparseTableRmq,
};
pub use forest::forest_connectivity;
pub use listrank::{list_ranking, list_ranking_weighted};
pub use mis::maximal_independent_set;
pub use msf::{minimum_spanning_forest, spanning_forest, MsfOutput};
pub use shrink::{cycle_connectivity, two_cycle, TwoCycleAnswer};
pub use two_edge::{two_edge_connectivity, BcLabeling};

//! Property tests pinning the `ampc_dds::proto` wire format.
//!
//! Every `Request` / `Reply` variant must round-trip through the byte codec
//! for arbitrary payloads (batches, epoch ids, shard loads, epoch frames),
//! and malformed frames — truncated at any byte, oversized, carrying
//! unknown tags or trailing garbage — must be rejected with a typed error,
//! never a panic or a bogus decode.

use ampc_dds::proto::{
    decode_reply, decode_request, encode_reply, encode_request, read_frame, write_frame,
    EpochFrame, OwnerSlice, ProtoError, Reply, Request, ShardFrame, ShardMap, MAX_FRAME_BYTES,
};
use ampc_dds::{Key, KeyTag, ShardLoad, Value};
use proptest::prelude::*;

fn arbitrary_key() -> impl Strategy<Value = Key> {
    (0u32..8, any::<u64>(), 0u64..16).prop_map(|(tag, a, b)| Key {
        tag: KeyTag::from_code(tag),
        a,
        b,
    })
}

fn arbitrary_value() -> impl Strategy<Value = Value> {
    (any::<u64>(), any::<u64>()).prop_map(|(x, y)| Value { x, y })
}

fn arbitrary_pairs() -> impl Strategy<Value = Vec<(Key, Value)>> {
    proptest::collection::vec((arbitrary_key(), arbitrary_value()), 0..20)
}

fn arbitrary_entries() -> impl Strategy<Value = Vec<(Key, Vec<Value>)>> {
    proptest::collection::vec(
        (
            arbitrary_key(),
            proptest::collection::vec(arbitrary_value(), 1..5),
        ),
        0..12,
    )
}

fn arbitrary_request() -> impl Strategy<Value = Request> {
    (
        0u32..9,
        0u64..1_000_000,
        any::<u64>(),
        proptest::collection::vec((0usize..64, arbitrary_pairs()), 0..6),
    )
        .prop_map(|(variant, epoch, seq, batches)| match variant {
            0 => Request::Commit {
                epoch: epoch as usize,
                seq,
                batches,
            },
            1 => Request::Advance {
                epoch: epoch as usize,
            },
            2 => Request::Loads {
                epoch: epoch as usize,
            },
            3 => Request::Dump {
                epoch: epoch as usize,
            },
            4 => Request::Lease {
                session: seq,
                worker: epoch % 64,
                num_shards: (epoch % 1024).max(1),
                workers: (seq % 64).max(1),
                ttl_ms: epoch,
            },
            5 => Request::Goodbye,
            6 => Request::FreezeEpoch {
                epoch: epoch as usize,
            },
            7 => Request::PublishEpoch {
                epoch: epoch as usize,
            },
            _ => Request::TotalWrites,
        })
}

/// Derive a shard map deterministically from one seed so the reply strategy
/// stays within the compat-proptest tuple arity while still covering `None`,
/// empty maps, multi-owner maps, and non-ASCII-boring endpoints.
fn shard_map_from(seed: u64) -> Option<ShardMap> {
    if seed.is_multiple_of(3) {
        return None;
    }
    let owners = seed % 5;
    let span = 1 + seed % 7;
    Some(ShardMap {
        epoch: seed.rotate_left(17),
        owners: (0..owners)
            .map(|i| OwnerSlice {
                endpoint: format!("[::{i}]:{}", 7000 + seed % 100),
                start: i * span,
                end: (i + 1) * span,
            })
            .collect(),
    })
}

fn arbitrary_loads() -> impl Strategy<Value = Vec<ShardLoad>> {
    proptest::collection::vec(
        (0usize..1024, any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(shard, keys, writes, reads)| ShardLoad {
                shard,
                keys,
                writes,
                reads,
            },
        ),
        0..10,
    )
}

fn arbitrary_frame() -> impl Strategy<Value = EpochFrame> {
    proptest::collection::vec(
        (any::<u64>(), arbitrary_entries())
            .prop_map(|(writes, entries)| ShardFrame { writes, entries }),
        0..5,
    )
    .prop_map(|shards| EpochFrame { shards })
}

fn arbitrary_reply() -> impl Strategy<Value = Reply> {
    (
        0u32..7,
        0u64..1_000_000,
        any::<u64>(),
        arbitrary_frame(),
        arbitrary_loads(),
        arbitrary_entries(),
    )
        .prop_map(
            |(variant, epoch, count, frame, loads, entries)| match variant {
                0 => Reply::Committed {
                    epoch: epoch as usize,
                    accepted: count,
                },
                1 => Reply::Epoch(frame),
                2 => Reply::Loads(loads),
                3 => Reply::Dump(entries),
                4 => Reply::LeaseGranted {
                    session: count,
                    ttl_ms: epoch,
                    resumed: count % 2 == 0,
                    shard_map: shard_map_from(count),
                },
                5 => Reply::EpochFrozen {
                    epoch: epoch as usize,
                },
                _ => Reply::TotalWrites(count),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    /// Every request round-trips byte-exactly, and framing it through the
    /// length-prefixed stream returns the identical payload.
    #[test]
    fn requests_round_trip(request in arbitrary_request()) {
        let payload = encode_request(&request);
        prop_assert_eq!(decode_request(&payload), Ok(request));

        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("framing an in-range payload");
        let mut reader: &[u8] = &wire;
        let mut scratch = Vec::new();
        read_frame(&mut reader, &mut scratch).expect("reading the frame back");
        prop_assert_eq!(scratch, payload);
        prop_assert!(reader.is_empty());
    }

    /// Every reply round-trips byte-exactly, including full epoch frames.
    #[test]
    fn replies_round_trip(reply in arbitrary_reply()) {
        let payload = encode_reply(&reply);
        prop_assert_eq!(decode_reply(&payload), Ok(reply));
    }

    /// Chopping any suffix off an encoded request must fail the decode —
    /// no prefix of a valid message is itself a valid message.
    #[test]
    fn truncated_requests_are_rejected(request in arbitrary_request(), cut in any::<u64>()) {
        let payload = encode_request(&request);
        let len = (cut as usize) % payload.len();
        prop_assert!(decode_request(&payload[..len]).is_err());
    }

    /// Same for replies.
    #[test]
    fn truncated_replies_are_rejected(reply in arbitrary_reply(), cut in any::<u64>()) {
        let payload = encode_reply(&reply);
        let len = (cut as usize) % payload.len();
        prop_assert!(decode_reply(&payload[..len]).is_err());
    }

    /// Trailing garbage after a valid message is rejected, with the typed
    /// error naming the number of leftover bytes.
    #[test]
    fn trailing_bytes_are_rejected(request in arbitrary_request(), extra in 1usize..9) {
        let mut payload = encode_request(&request);
        payload.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert_eq!(
            decode_request(&payload),
            Err(ProtoError::Trailing { remaining: extra })
        );
    }
}

#[test]
fn oversized_frames_are_rejected_without_allocating() {
    // A hostile length prefix just under u32::MAX must be rejected by the
    // cap check alone — read_frame returns InvalidData before touching (or
    // allocating) the payload.
    for len in [MAX_FRAME_BYTES + 1, u32::MAX as usize] {
        let header = (len as u32).to_le_bytes();
        let mut reader: &[u8] = &header;
        let mut scratch = Vec::new();
        let err = read_frame(&mut reader, &mut scratch).unwrap_err();
        assert!(scratch.capacity() < 4096, "scratch must stay unallocated");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "len {len}");
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    // And the writer refuses to produce such a frame in the first place.
    let oversized = vec![0u8; MAX_FRAME_BYTES + 1];
    let mut sink = Vec::new();
    let err = write_frame(&mut sink, &oversized).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(sink.is_empty(), "nothing may hit the wire");
}

#[test]
fn frames_cut_mid_payload_are_unexpected_eof() {
    let payload = encode_request(&Request::Loads { epoch: 3 });
    let mut wire = Vec::new();
    write_frame(&mut wire, &payload).unwrap();
    let mut scratch = Vec::new();
    for len in 0..wire.len() {
        let mut reader = &wire[..len];
        let err = read_frame(&mut reader, &mut scratch).unwrap_err();
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof,
            "prefix of {len} bytes"
        );
    }
}

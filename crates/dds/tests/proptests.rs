//! Property tests for the DDS substrate: the store behaves like a
//! multi-map with stable per-key ordering, snapshots are faithful frozen
//! copies, the codec round-trips every key/value, the epoch chain keeps
//! rounds isolated under arbitrary interleavings of writes and advances,
//! and the compact slot layout is observationally equivalent to the
//! pre-refactor `Vec`-per-key layout kept in `ampc_dds::legacy`.

use ampc_dds::codec::{decode_pair, encode_pair, ENCODED_PAIR_BYTES};
use ampc_dds::legacy::LegacyStore;
use ampc_dds::{DdsChain, Key, KeyTag, ShardedStore, Value};
use proptest::prelude::*;

fn arbitrary_key() -> impl Strategy<Value = Key> {
    (0u32..6, any::<u64>(), 0u64..1_000).prop_map(|(tag, a, b)| Key {
        tag: KeyTag::from_code(tag),
        a,
        b,
    })
}

fn arbitrary_value() -> impl Strategy<Value = Value> {
    (any::<u64>(), any::<u64>()).prop_map(|(x, y)| Value::pair(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn codec_round_trips_arbitrary_pairs(key in arbitrary_key(), value in arbitrary_value()) {
        let bytes = encode_pair(&key, &value);
        prop_assert_eq!(bytes.len(), ENCODED_PAIR_BYTES);
        prop_assert_eq!(decode_pair(&bytes), Some((key, value)));
    }

    #[test]
    fn store_is_a_multimap_with_insertion_order(
        writes in proptest::collection::vec((0u64..50, any::<u64>()), 1..200),
        shards in 1usize..17
    ) {
        let store = ShardedStore::new(shards);
        let mut expected: std::collections::BTreeMap<u64, Vec<u64>> = std::collections::BTreeMap::new();
        for &(k, v) in &writes {
            store.write(Key::of(KeyTag::Scalar, k), Value::scalar(v));
            expected.entry(k).or_default().push(v);
        }
        prop_assert_eq!(store.len(), expected.len());
        prop_assert_eq!(store.total_writes(), writes.len() as u64);
        for (k, values) in &expected {
            let key = Key::of(KeyTag::Scalar, *k);
            prop_assert_eq!(store.multiplicity(&key), values.len());
            prop_assert_eq!(store.get(&key), Some(Value::scalar(values[0])));
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(store.get_indexed(&key, i), Some(Value::scalar(v)));
            }
            prop_assert_eq!(store.get_indexed(&key, values.len()), None);
        }
        // Freezing preserves everything exactly.
        let snapshot = store.freeze();
        for (k, values) in &expected {
            let key = Key::of(KeyTag::Scalar, *k);
            prop_assert_eq!(snapshot.get_all(&key), values.iter().map(|&v| Value::scalar(v)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chain_epochs_are_isolated(
        rounds in proptest::collection::vec(proptest::collection::vec((0u64..40, any::<u64>()), 0..40), 1..6),
        shards in 1usize..9
    ) {
        let mut chain = DdsChain::new(shards);
        for pairs in &rounds {
            for &(k, v) in pairs {
                chain.write(Key::of(KeyTag::Scalar, k), Value::scalar(v));
            }
            chain.advance();
        }
        prop_assert_eq!(chain.completed_epochs(), rounds.len());
        // Every epoch's snapshot contains exactly the keys written in that
        // epoch (with the right multiplicities) and nothing from any other.
        for (epoch, pairs) in rounds.iter().enumerate() {
            let snapshot = chain.snapshot(epoch).unwrap();
            let mut expected: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
            for &(k, _) in pairs {
                *expected.entry(k).or_default() += 1;
            }
            prop_assert_eq!(snapshot.len(), expected.len());
            for (k, count) in expected {
                prop_assert_eq!(snapshot.multiplicity(&Key::of(KeyTag::Scalar, k)), count);
            }
        }
    }

    #[test]
    fn compact_layout_equals_legacy_layout_under_arbitrary_interleavings(
        writes in proptest::collection::vec((arbitrary_key(), arbitrary_value()), 1..300),
        shards in 1usize..33,
        freeze_threads in 1usize..9
    ) {
        // Same write sequence into the new store and the pre-refactor
        // reference layout.
        let store = ShardedStore::new(shards);
        let mut legacy = LegacyStore::new(shards);
        for &(key, value) in &writes {
            store.write(key, value);
            legacy.write(key, value);
        }

        // Writable-store reads agree before freezing.
        for &(key, _) in &writes {
            prop_assert_eq!(store.get(&key), legacy.get(&key));
            prop_assert_eq!(store.multiplicity(&key), legacy.multiplicity(&key));
        }
        prop_assert_eq!(store.len(), legacy.len());

        // Frozen-snapshot reads agree, whatever the freeze parallelism.
        let snapshot = store.freeze_with_threads(freeze_threads);
        prop_assert_eq!(snapshot.len(), legacy.len());
        for &(key, _) in &writes {
            prop_assert_eq!(snapshot.get(&key), legacy.get(&key));
            let multiplicity = legacy.multiplicity(&key);
            prop_assert_eq!(snapshot.multiplicity(&key), multiplicity);
            for index in 0..=multiplicity {
                prop_assert_eq!(snapshot.get_indexed(&key, index), legacy.get_indexed(&key, index));
            }
        }

        // Missing keys agree too.
        let absent = Key::of(KeyTag::Custom(999), u64::MAX);
        prop_assert_eq!(snapshot.get(&absent), legacy.get(&absent));
        prop_assert_eq!(snapshot.multiplicity(&absent), legacy.multiplicity(&absent));
    }

    #[test]
    fn batched_commit_paths_equal_legacy_layout(
        machine_batches in proptest::collection::vec(
            proptest::collection::vec((0u64..60, any::<u64>()), 0..40),
            1..8
        ),
        shards in 1usize..17,
        threads in 1usize..5
    ) {
        // The runtime's commit path: per-machine batches, partitioned by
        // shard, committed in parallel — against the legacy layout fed the
        // same concatenated sequence.
        let store = ShardedStore::new(shards);
        let mut legacy = LegacyStore::new(shards);
        for batch in &machine_batches {
            for &(k, v) in batch {
                legacy.write(Key::of(KeyTag::Scalar, k), Value::scalar(v));
            }
        }
        let batches: Vec<Vec<(Key, Value)>> = machine_batches
            .iter()
            .map(|batch| {
                batch.iter().map(|&(k, v)| (Key::of(KeyTag::Scalar, k), Value::scalar(v))).collect()
            })
            .collect();
        let per_shard = store.partition_writes(batches);
        store.commit_partitioned(per_shard, threads);

        let snapshot = store.freeze();
        prop_assert_eq!(snapshot.len(), legacy.len());
        for k in 0u64..60 {
            let key = Key::of(KeyTag::Scalar, k);
            let multiplicity = legacy.multiplicity(&key);
            prop_assert_eq!(snapshot.multiplicity(&key), multiplicity);
            for index in 0..multiplicity {
                prop_assert_eq!(snapshot.get_indexed(&key, index), legacy.get_indexed(&key, index));
            }
        }
    }

    #[test]
    fn shard_count_does_not_change_semantics(
        writes in proptest::collection::vec((0u64..80, any::<u64>()), 1..120)
    ) {
        let one = ShardedStore::new(1);
        let many = ShardedStore::new(64);
        for &(k, v) in &writes {
            one.write(Key::of(KeyTag::Scalar, k), Value::scalar(v));
            many.write(Key::of(KeyTag::Scalar, k), Value::scalar(v));
        }
        for &(k, _) in &writes {
            let key = Key::of(KeyTag::Scalar, k);
            prop_assert_eq!(one.get(&key), many.get(&key));
            prop_assert_eq!(one.multiplicity(&key), many.multiplicity(&key));
        }
        prop_assert_eq!(one.len(), many.len());
    }
}

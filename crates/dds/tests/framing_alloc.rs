//! Pins the zero-allocation property of the framing codec: once the
//! scratch buffers have grown to the connection's working frame size,
//! encoding and framing a request — and reading it back — must not touch
//! the allocator at all.  A counting `#[global_allocator]` shim makes the
//! property checkable without external tooling.

use ampc_dds::proto::{encode_request_into, read_frame, write_frame, Request};
use ampc_dds::{Key, KeyTag, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // Const-initialized so reading the counter never itself allocates
    // (a lazily initialized thread-local would recurse into the allocator).
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Passes every call through to the system allocator, counting the ones
/// that hand out (or regrow) memory on this thread.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|count| count.set(count.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|count| count.set(count.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(|count| count.get())
}

fn commit(seq: u64) -> Request {
    Request::Commit {
        epoch: 0,
        seq,
        batches: vec![(
            0,
            (0..16)
                .map(|i| (Key::of(KeyTag::Scalar, i), Value::scalar(seq + i)))
                .collect(),
        )],
    }
}

#[test]
fn steady_state_framing_allocates_nothing() {
    let request = commit(1);

    // Warm-up: one full encode → frame → read pass grows every scratch
    // buffer to its working size.
    let mut encoded = Vec::new();
    let mut wire = Vec::new();
    let mut scratch = Vec::new();
    encode_request_into(&mut encoded, &request);
    write_frame(&mut wire, &encoded).unwrap();
    let mut reader: &[u8] = &wire;
    read_frame(&mut reader, &mut scratch).unwrap();
    assert_eq!(scratch, encoded, "warm-up pass must round-trip");

    // Steady state: the identical traffic, many times over, must be
    // allocation-free — the scratches are reused, the frame goes out
    // through the vectored write, and the read resizes within capacity.
    let before = allocations();
    for _ in 0..256 {
        encode_request_into(&mut encoded, &request);
        wire.clear();
        write_frame(&mut wire, &encoded).unwrap();
        let mut reader: &[u8] = &wire;
        read_frame(&mut reader, &mut scratch).unwrap();
    }
    assert_eq!(
        allocations(),
        before,
        "steady-state framing must not allocate"
    );
    assert_eq!(scratch, encoded, "steady-state passes still round-trip");
}

//! Message-passing DDS backend: shard groups owned by worker threads,
//! frozen epochs published as shared read-only views.
//!
//! [`ChannelBackend`] realises the [`crate::backend::DdsBackend`] surface
//! the way a real multi-process deployment would: the shards are partitioned
//! into groups, each group is owned by a dedicated worker thread, and every
//! *write-side* operation — commit, epoch advance — is a message over an
//! in-process channel.  No writable shard data is ever touched by more than
//! one thread, so the owners need no locks; ordering is carried entirely by
//! channel FIFO: the backend sends `Commit` batches in (machine id, write
//! order) and the owner applies them in arrival order, so per-key
//! multi-value indices are identical to [`crate::backend::LocalBackend`]'s.
//!
//! # Zero-copy epoch publication
//!
//! The *read* side does not message at all.  When the backend advances an
//! epoch, each owner freezes its shard maps in place (the same in-place
//! freeze as [`crate::ShardedStore::freeze`]) and **publishes the frozen
//! epoch once** as an `Arc` snapshot in its `Advance` reply.  The frozen
//! maps are immutable from that point on, so every [`ChannelSnapshot`]
//! resolves `get` / `get_indexed` / `multiplicity` / `get_many` directly
//! against the shared maps — lock-free, with zero channel traffic — while
//! read accounting lands in per-shard atomics inside the shared epoch, where
//! the owner can still see it.  Earlier revisions paid one channel
//! round-trip to the owner per point read; the `read_latency_backends`
//! series in `BENCH_commit.json` records the difference.
//!
//! Only `Commit`, `Advance`, `Loads`, `Dump` (and the backend-side
//! `TotalWrites`) remain message-passing, which keeps the request protocol
//! exactly the wire surface a networked backend needs: a remote deployment
//! would replace the `Arc` hand-off with a fetched (or RDMA-mapped) replica
//! of the frozen maps and leave the message protocol untouched.
//!
//! Worker threads exit when the last handle (backend or view) referencing
//! their channel is dropped; views keep both the shared epoch `Arc`s and the
//! owner channels, so they stay valid — and their reads byte-identical — for
//! as long as the caller keeps them, even after the backend is gone.

use crate::backend::{DdsBackend, SnapshotView};
use crate::hashing::{hash_words, FxHashMap};
use crate::key::{Key, Value};
use crate::slot::Slot;
use crate::stats::{ShardLoad, StoreStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// Messages a shard-group owner thread understands.
enum Request {
    /// Apply shard-partitioned pairs to the current (writable) epoch.
    /// `batches[i]` = (local shard index, pairs in commit order).
    Commit(Vec<(usize, Vec<(Key, Value)>)>),
    /// Freeze the writable epoch in place, open the next one, and publish
    /// the frozen epoch's shared view.
    Advance { reply: Sender<Arc<WorkerEpoch>> },
    /// Report per-shard loads (keys/writes/reads) of a completed epoch,
    /// keyed by global shard id.
    Loads {
        epoch: usize,
        reply: Sender<Vec<ShardLoad>>,
    },
    /// Dump every (key, values) pair of a completed epoch (driver/tests).
    Dump {
        epoch: usize,
        reply: Sender<Vec<(Key, Vec<Value>)>>,
    },
    /// Report total writes accepted so far (all epochs, incl. writable).
    TotalWrites { reply: Sender<u64> },
}

/// One frozen epoch of one owner, shared between the owner thread and every
/// view of that epoch.
///
/// The maps are immutable once published (the owner freezes them in place
/// and never touches them again); the read counters are atomics so that
/// views probing the maps from machine threads and the owner serving
/// `Loads` agree on the accounting without any messaging.
struct WorkerEpoch {
    /// `shards[local]` — frozen map of the group's `local`-th shard.
    shards: Vec<FxHashMap<Key, Slot>>,
    /// Writes that built each shard.
    writes: Vec<u64>,
    /// Reads served per shard since the epoch froze.
    reads: Vec<AtomicU64>,
}

/// The single-threaded state of one shard-group owner.
struct Worker {
    /// Global shard ids owned by this worker (ascending).
    shard_ids: Vec<usize>,
    /// Writable maps of the current epoch, one per owned shard.
    writable: Vec<FxHashMap<Key, Slot>>,
    /// Writes accepted into the current epoch, per owned shard.
    writable_writes: Vec<u64>,
    /// Published epochs, in order; the owner keeps its own handle so it can
    /// serve `Loads` / `Dump` for epochs whose views are long gone.
    frozen: Vec<Arc<WorkerEpoch>>,
    /// Total writes accepted across all epochs.
    total_writes: u64,
}

impl Worker {
    fn run(mut self, requests: Receiver<Request>) {
        // Exit when every sender (backend + all views) is gone.
        while let Ok(request) = requests.recv() {
            match request {
                Request::Commit(batches) => {
                    for (local, pairs) in batches {
                        self.writable_writes[local] += pairs.len() as u64;
                        self.total_writes += pairs.len() as u64;
                        let map = &mut self.writable[local];
                        map.reserve(pairs.len());
                        for (key, value) in pairs {
                            match map.entry(key) {
                                std::collections::hash_map::Entry::Occupied(mut slot) => {
                                    slot.get_mut().push(value)
                                }
                                std::collections::hash_map::Entry::Vacant(slot) => {
                                    slot.insert(Slot::One(value));
                                }
                            }
                        }
                    }
                }
                Request::Advance { reply } => {
                    let shard_count = self.shard_ids.len();
                    // In-place freeze: reuse the writable maps as the frozen
                    // maps, only shrinking the rare multi-value slots.
                    let mut shards = std::mem::replace(
                        &mut self.writable,
                        (0..shard_count).map(|_| FxHashMap::default()).collect(),
                    );
                    for map in &mut shards {
                        crate::slot::freeze_map_in_place(map);
                    }
                    let writes = std::mem::replace(&mut self.writable_writes, vec![0; shard_count]);
                    let epoch = Arc::new(WorkerEpoch {
                        shards,
                        writes,
                        reads: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
                    });
                    self.frozen.push(epoch.clone());
                    // A dropped requester is not an error for the owner.
                    let _ = reply.send(epoch);
                }
                Request::Loads { epoch, reply } => {
                    let epoch = &self.frozen[epoch];
                    let loads = self
                        .shard_ids
                        .iter()
                        .enumerate()
                        .map(|(local, &shard)| ShardLoad {
                            shard,
                            keys: epoch.shards[local].len() as u64,
                            writes: epoch.writes[local],
                            reads: epoch.reads[local].load(Ordering::Relaxed),
                        })
                        .collect();
                    let _ = reply.send(loads);
                }
                Request::Dump { epoch, reply } => {
                    let epoch = &self.frozen[epoch];
                    let mut entries = Vec::new();
                    for shard in &epoch.shards {
                        for (key, slot) in shard {
                            entries.push((*key, slot.as_slice().to_vec()));
                        }
                    }
                    let _ = reply.send(entries);
                }
                Request::TotalWrites { reply } => {
                    let _ = reply.send(self.total_writes);
                }
            }
        }
    }
}

/// Routing data shared by the backend and every view it hands out.
struct Router {
    senders: Vec<Sender<Request>>,
    num_shards: usize,
}

impl Router {
    #[inline]
    fn shard_of(&self, key: &Key) -> usize {
        (hash_words(key.tag.code(), key.a, key.b) % self.num_shards as u64) as usize
    }

    /// (worker, local shard index) owning `key`.
    #[inline]
    fn route(&self, key: &Key) -> (usize, usize) {
        let shard = self.shard_of(key);
        (shard % self.senders.len(), shard / self.senders.len())
    }
}

/// A multi-worker, message-passing DDS backend over in-process channels.
///
/// See the [module docs](self) for the design; select it through
/// `ampc_runtime::AmpcConfig` rather than constructing it directly.
pub struct ChannelBackend {
    router: Arc<Router>,
    completed: usize,
}

impl ChannelBackend {
    /// Spawn a backend with `num_shards` shards owned by up to `workers`
    /// threads (clamped to `[1, num_shards]`).
    pub fn new(num_shards: usize, workers: usize) -> Self {
        let num_shards = num_shards.max(1);
        let workers = workers.clamp(1, num_shards);
        let mut senders = Vec::with_capacity(workers);
        for worker in 0..workers {
            let shard_ids: Vec<usize> = (worker..num_shards).step_by(workers).collect();
            let (tx, rx) = channel();
            let state = Worker {
                writable: (0..shard_ids.len()).map(|_| FxHashMap::default()).collect(),
                writable_writes: vec![0; shard_ids.len()],
                shard_ids,
                frozen: Vec::new(),
                total_writes: 0,
            };
            std::thread::Builder::new()
                .name(format!("dds-owner-{worker}"))
                .spawn(move || state.run(rx))
                .expect("spawning DDS owner thread");
            senders.push(tx);
        }
        ChannelBackend {
            router: Arc::new(Router {
                senders,
                num_shards,
            }),
            completed: 0,
        }
    }

    /// Number of owner threads serving the shards.
    pub fn num_workers(&self) -> usize {
        self.router.senders.len()
    }

    fn send(&self, worker: usize, request: Request) {
        self.router.senders[worker]
            .send(request)
            .expect("DDS owner thread exited while the backend is alive");
    }
}

impl DdsBackend for ChannelBackend {
    type View = ChannelSnapshot;

    fn with_shards(num_shards: usize, threads: usize) -> Self {
        ChannelBackend::new(num_shards, threads)
    }

    fn num_shards(&self) -> usize {
        self.router.num_shards
    }

    fn empty_view(&self) -> ChannelSnapshot {
        ChannelSnapshot {
            inner: Arc::new(ViewInner {
                router: self.router.clone(),
                epoch: None,
                workers: Vec::new(),
                empty_reads: (0..self.router.num_shards)
                    .map(|_| AtomicU64::new(0))
                    .collect(),
            }),
        }
    }

    fn commit_round(&mut self, batches: Vec<Vec<(Key, Value)>>, _threads: usize) {
        // Partition the ordered batches into per-(worker, local shard)
        // buckets.  Concatenation order is preserved bucket-wise, which —
        // keys living on exactly one shard — preserves every key's
        // multi-value index order.
        let workers = self.router.senders.len();
        type WorkerBuckets = Vec<(usize, Vec<(Key, Value)>)>;
        let mut buckets: Vec<WorkerBuckets> = vec![Vec::new(); workers];
        let mut bucket_index: FxHashMap<(usize, usize), usize> = FxHashMap::default();
        for batch in batches {
            for (key, value) in batch {
                let (worker, local) = self.router.route(&key);
                let slot = *bucket_index.entry((worker, local)).or_insert_with(|| {
                    buckets[worker].push((local, Vec::new()));
                    buckets[worker].len() - 1
                });
                buckets[worker][slot].1.push((key, value));
            }
        }
        for (worker, batches) in buckets.into_iter().enumerate() {
            if !batches.is_empty() {
                self.send(worker, Request::Commit(batches));
            }
        }
    }

    fn advance(&mut self, _threads: usize) -> ChannelSnapshot {
        // Channel FIFO guarantees every `Commit` sent above is applied
        // before the owner freezes; waiting for the published `Arc`s means
        // the returned view needs no further synchronisation — its reads
        // are plain probes of the shared immutable maps.
        let mut receivers = Vec::with_capacity(self.router.senders.len());
        for worker in 0..self.router.senders.len() {
            let (tx, rx) = channel();
            self.send(worker, Request::Advance { reply: tx });
            receivers.push(rx);
        }
        let workers = receivers
            .into_iter()
            .map(|rx| rx.recv().expect("DDS owner thread exited"))
            .collect();
        let epoch = self.completed;
        self.completed += 1;
        ChannelSnapshot {
            inner: Arc::new(ViewInner {
                router: self.router.clone(),
                epoch: Some(epoch),
                workers,
                empty_reads: Vec::new(),
            }),
        }
    }

    fn completed_epochs(&self) -> usize {
        self.completed
    }

    fn total_writes(&self) -> u64 {
        let mut total = 0;
        for worker in 0..self.router.senders.len() {
            let (tx, rx) = channel();
            self.send(worker, Request::TotalWrites { reply: tx });
            total += rx.recv().expect("DDS owner thread exited");
        }
        total
    }

    fn backend_name(&self) -> &'static str {
        "channel"
    }
}

/// State shared by every clone of a [`ChannelSnapshot`].
struct ViewInner {
    router: Arc<Router>,
    /// Completed epoch served, or `None` for the pre-input empty view.
    epoch: Option<usize>,
    /// The epoch's shared frozen data, one entry per owner (`workers[w]` is
    /// owner `w`'s shard group).  Empty for the pre-input empty view.
    workers: Vec<Arc<WorkerEpoch>>,
    /// Read accounting of the empty view (per shard); published epochs count
    /// inside their shared [`WorkerEpoch`] instead.
    empty_reads: Vec<AtomicU64>,
}

/// Read view of one completed [`ChannelBackend`] epoch.
///
/// Cloning is an `Arc` bump; clones share the published epoch data and
/// therefore the read accounting.  Every lookup is a lock-free probe of the
/// epoch's shared immutable maps — no channel traffic; only the driver-side
/// operations (`shard_loads`, `entries`, `len`) message the owner threads.
#[derive(Clone)]
pub struct ChannelSnapshot {
    inner: Arc<ViewInner>,
}

impl ChannelSnapshot {
    /// The shared epoch data owning `key`, with the key's local shard index
    /// inside it, or `None` on the empty view (which counts the miss).
    #[inline]
    fn probe(&self, key: &Key) -> Option<(&WorkerEpoch, usize)> {
        if self.inner.epoch.is_none() {
            let shard = self.inner.router.shard_of(key);
            self.inner.empty_reads[shard].fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let (worker, local) = self.inner.router.route(key);
        Some((&self.inner.workers[worker], local))
    }

    fn loads(&self) -> Vec<ShardLoad> {
        let Some(epoch) = self.inner.epoch else {
            return self
                .inner
                .empty_reads
                .iter()
                .enumerate()
                .map(|(shard, reads)| ShardLoad {
                    shard,
                    keys: 0,
                    writes: 0,
                    reads: reads.load(Ordering::Relaxed),
                })
                .collect();
        };
        let mut receivers = Vec::new();
        for sender in &self.inner.router.senders {
            let (tx, rx) = channel();
            sender
                .send(Request::Loads { epoch, reply: tx })
                .expect("DDS owner thread exited while a view is alive");
            receivers.push(rx);
        }
        let mut loads: Vec<ShardLoad> = receivers
            .into_iter()
            .flat_map(|rx| rx.recv().expect("DDS owner thread exited"))
            .collect();
        loads.sort_by_key(|load| load.shard);
        loads
    }
}

impl SnapshotView for ChannelSnapshot {
    fn num_shards(&self) -> usize {
        self.inner.router.num_shards
    }

    fn get(&self, key: &Key) -> Option<Value> {
        let (epoch, local) = self.probe(key)?;
        epoch.reads[local].fetch_add(1, Ordering::Relaxed);
        epoch.shards[local].get(key).map(Slot::first)
    }

    fn get_indexed(&self, key: &Key, index: usize) -> Option<Value> {
        let (epoch, local) = self.probe(key)?;
        epoch.reads[local].fetch_add(1, Ordering::Relaxed);
        epoch.shards[local]
            .get(key)
            .and_then(|slot| slot.get(index))
    }

    fn get_all(&self, key: &Key) -> Vec<Value> {
        let Some((epoch, local)) = self.probe(key) else {
            return Vec::new();
        };
        let values = epoch.shards[local]
            .get(key)
            .map(|slot| slot.as_slice().to_vec())
            .unwrap_or_default();
        epoch.reads[local].fetch_add(values.len().max(1) as u64, Ordering::Relaxed);
        values
    }

    fn multiplicity(&self, key: &Key) -> usize {
        let Some((epoch, local)) = self.probe(key) else {
            return 0;
        };
        epoch.reads[local].fetch_add(1, Ordering::Relaxed);
        epoch.shards[local].get(key).map_or(0, Slot::len)
    }

    fn len(&self) -> usize {
        self.loads().iter().map(|load| load.keys as usize).sum()
    }

    fn get_many_slice(&self, keys: &[Key], out: &mut [Option<Value>]) {
        assert!(
            out.len() >= keys.len(),
            "output slice shorter than key batch"
        );
        if self.inner.epoch.is_none() {
            for (key, slot) in keys.iter().zip(out.iter_mut()) {
                let shard = self.inner.router.shard_of(key);
                self.inner.empty_reads[shard].fetch_add(1, Ordering::Relaxed);
                *slot = None;
            }
            return;
        }
        // Every key resolves against the shared maps directly; coalesce
        // read-counter updates over runs of same-shard keys (totals are
        // identical to per-key counting), mirroring `Snapshot`.
        let mut run: Option<(usize, usize)> = None;
        let mut run_len = 0u64;
        for (key, slot) in keys.iter().zip(out.iter_mut()) {
            let (worker, local) = self.inner.router.route(key);
            if run != Some((worker, local)) {
                if let Some((w, l)) = run {
                    self.inner.workers[w].reads[l].fetch_add(run_len, Ordering::Relaxed);
                }
                run = Some((worker, local));
                run_len = 0;
            }
            run_len += 1;
            *slot = self.inner.workers[worker].shards[local]
                .get(key)
                .map(Slot::first);
        }
        if let Some((w, l)) = run {
            self.inner.workers[w].reads[l].fetch_add(run_len, Ordering::Relaxed);
        }
    }

    fn total_reads(&self) -> u64 {
        self.loads().iter().map(|load| load.reads).sum()
    }

    fn shard_loads(&self) -> Vec<ShardLoad> {
        self.loads()
    }

    fn stats(&self) -> StoreStats {
        StoreStats::from_loads(self.loads())
    }

    fn entries(&self) -> Vec<(Key, Vec<Value>)> {
        let Some(epoch) = self.inner.epoch else {
            return Vec::new();
        };
        let mut receivers = Vec::new();
        for sender in &self.inner.router.senders {
            let (tx, rx) = channel();
            sender
                .send(Request::Dump { epoch, reply: tx })
                .expect("DDS owner thread exited while a view is alive");
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .flat_map(|rx| rx.recv().expect("DDS owner thread exited"))
            .collect()
    }
}

impl std::fmt::Debug for ChannelSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelSnapshot")
            .field("num_shards", &self.inner.router.num_shards)
            .field("epoch", &self.inner.epoch)
            .finish()
    }
}

impl std::fmt::Debug for ChannelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelBackend")
            .field("num_shards", &self.router.num_shards)
            .field("workers", &self.router.senders.len())
            .field("completed_epochs", &self.completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyTag;

    fn k(a: u64) -> Key {
        Key::of(KeyTag::Scalar, a)
    }

    fn backend_with(pairs: &[(u64, u64)], shards: usize, workers: usize) -> ChannelBackend {
        let mut backend = ChannelBackend::new(shards, workers);
        let batch: Vec<(Key, Value)> = pairs
            .iter()
            .map(|&(key, value)| (k(key), Value::scalar(value)))
            .collect();
        backend.commit_round(vec![batch], 1);
        backend
    }

    #[test]
    fn reads_resolve_against_the_published_epoch() {
        let mut backend = backend_with(&[(1, 10), (2, 20), (3, 30)], 8, 3);
        let view = backend.advance(1);
        assert_eq!(view.get(&k(1)), Some(Value::scalar(10)));
        assert_eq!(view.get(&k(4)), None);
        assert_eq!(view.len(), 3);
        assert_eq!(view.total_reads(), 2);
    }

    #[test]
    fn shared_view_reads_are_visible_to_owner_served_loads() {
        // Reads land in the shared epoch's atomics; the owner-served Loads
        // protocol must observe them without any extra synchronisation.
        let mut backend = backend_with(&[(1, 1), (2, 2), (3, 3), (4, 4)], 8, 2);
        let view = backend.advance(1);
        for i in 1..=4u64 {
            let _ = view.get(&k(i));
            let _ = view.multiplicity(&k(i));
        }
        let loads = view.shard_loads();
        assert_eq!(loads.iter().map(|l| l.reads).sum::<u64>(), 8);
        assert_eq!(loads.iter().map(|l| l.writes).sum::<u64>(), 4);
    }

    #[test]
    fn multi_value_order_is_commit_order_across_machine_batches() {
        let mut backend = ChannelBackend::new(4, 2);
        backend.commit_round(
            vec![
                vec![(k(9), Value::scalar(0)), (k(9), Value::scalar(1))],
                vec![(k(9), Value::scalar(2))],
            ],
            1,
        );
        let view = backend.advance(1);
        assert_eq!(view.multiplicity(&k(9)), 3);
        for i in 0..3usize {
            assert_eq!(view.get_indexed(&k(9), i), Some(Value::scalar(i as u64)));
        }
        assert_eq!(view.get_indexed(&k(9), 3), None);
        assert_eq!(
            view.get_all(&k(9)),
            vec![Value::scalar(0), Value::scalar(1), Value::scalar(2)]
        );
    }

    #[test]
    fn epochs_are_isolated() {
        let mut backend = backend_with(&[(1, 1)], 4, 2);
        let d0 = backend.advance(1);
        backend.commit_round(vec![vec![(k(2), Value::scalar(2))]], 1);
        let d1 = backend.advance(1);
        assert_eq!(d0.get(&k(1)), Some(Value::scalar(1)));
        assert_eq!(d0.get(&k(2)), None);
        assert_eq!(d1.get(&k(1)), None);
        assert_eq!(d1.get(&k(2)), Some(Value::scalar(2)));
        assert_eq!(backend.completed_epochs(), 2);
        assert_eq!(backend.total_writes(), 2);
    }

    #[test]
    fn batched_reads_resolve_locally_and_count_per_key() {
        let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i, i * 7)).collect();
        let mut backend = backend_with(&pairs, 16, 4);
        let view = backend.advance(1);
        let keys: Vec<Key> = (0..300u64).map(k).collect();
        let mut out = Vec::new();
        view.get_many(&keys, &mut out);
        for (i, slot) in out.iter().enumerate() {
            let expected = if i < 200 {
                Some(Value::scalar(i as u64 * 7))
            } else {
                None
            };
            assert_eq!(*slot, expected, "key {i}");
        }
        assert_eq!(view.total_reads(), 300);
    }

    #[test]
    fn views_survive_the_backend() {
        let view = {
            let mut backend = backend_with(&[(5, 50)], 4, 2);
            backend.advance(1)
        };
        // The backend (and runtime) are gone; the view holds the published
        // epoch directly, and the owners stay alive for Loads/Dump.
        assert_eq!(view.get(&k(5)), Some(Value::scalar(50)));
        assert_eq!(view.len(), 1);
        assert_eq!(view.total_reads(), 1);
    }

    #[test]
    fn empty_view_misses_and_counts() {
        let backend = ChannelBackend::new(4, 2);
        let view = backend.empty_view();
        assert!(view.is_empty());
        assert_eq!(view.get(&k(1)), None);
        assert_eq!(view.multiplicity(&k(2)), 0);
        assert_eq!(view.total_reads(), 2);
    }

    #[test]
    fn concurrent_clones_share_the_published_epoch() {
        let pairs: Vec<(u64, u64)> = (0..500).map(|i| (i, i)).collect();
        let mut backend = backend_with(&pairs, 8, 4);
        let view = backend.advance(1);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let view = view.clone();
                scope.spawn(move || {
                    for i in 0..125u64 {
                        let key = t * 125 + i;
                        assert_eq!(view.get(&k(key)), Some(Value::scalar(key)));
                    }
                });
            }
        });
        assert_eq!(view.total_reads(), 500);
    }
}

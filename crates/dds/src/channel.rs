//! Message-passing DDS backend: shard groups owned by worker threads.
//!
//! [`ChannelBackend`] realises the [`crate::backend::DdsBackend`] surface
//! the way a real multi-process deployment would: the shards are partitioned
//! into groups, each group is owned by a dedicated worker thread, and every
//! operation — commit, epoch advance, read — is a message over an in-process
//! channel.  No shard data is ever touched by more than one thread, so the
//! workers need no locks at all; ordering is carried entirely by channel
//! FIFO:
//!
//! * the backend sends `Commit` batches in (machine id, write order) and the
//!   owner applies them in arrival order, so per-key multi-value indices are
//!   identical to [`crate::backend::LocalBackend`]'s;
//! * `Advance` is fire-and-forget: any read for the new epoch is sent
//!   *after* the advance on the same channel, so the owner is guaranteed to
//!   have frozen the epoch before serving it.
//!
//! Reads from machine threads go through [`ChannelSnapshot`], a cheap
//! cloneable handle.  A batched read ([`SnapshotView::get_many_slice`])
//! groups its keys by owner and sends **one request per worker per flight**
//! — the request/response batching a networked backend would use to hide
//! latency — while still counting one query per key, exactly like every
//! other backend.
//!
//! Worker threads exit when the last handle (backend or view) referencing
//! their channel is dropped; views therefore stay valid for as long as the
//! caller keeps them, even after the runtime that created them is gone.

use crate::backend::{DdsBackend, SnapshotView};
use crate::hashing::{hash_words, FxHashMap};
use crate::key::{Key, Value};
use crate::slot::{Slot, WriteSlot};
use crate::stats::{ShardLoad, StoreStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// One read operation inside a batched request.  The `u32` is the caller's
/// position in its flight, echoed back so replies can arrive per worker.
enum ReadOp {
    Get(Key),
    GetIndexed(Key, u64),
    Multiplicity(Key),
    GetAll(Key),
}

/// Reply to one [`ReadOp`], in the same order as the request's ops.
enum ReadReply {
    Value(Option<Value>),
    Count(u64),
    Values(Vec<Value>),
}

/// Messages a shard-group owner thread understands.
enum Request {
    /// Apply shard-partitioned pairs to the current (writable) epoch.
    /// `batches[i]` = (local shard index, pairs in commit order).
    Commit(Vec<(usize, Vec<(Key, Value)>)>),
    /// Freeze the writable epoch and open the next one.
    Advance,
    /// Serve a batch of reads against a completed epoch.
    Read {
        epoch: usize,
        ops: Vec<(u32, ReadOp)>,
        reply: Sender<Vec<(u32, ReadReply)>>,
    },
    /// Report per-shard loads (keys/writes/reads) of a completed epoch,
    /// keyed by global shard id.
    Loads {
        epoch: usize,
        reply: Sender<Vec<ShardLoad>>,
    },
    /// Dump every (key, values) pair of a completed epoch (driver/tests).
    Dump {
        epoch: usize,
        reply: Sender<Vec<(Key, Vec<Value>)>>,
    },
    /// Report total writes accepted so far (all epochs, incl. writable).
    TotalWrites { reply: Sender<u64> },
}

/// One frozen epoch inside a worker: compact maps plus its accounting.
struct FrozenEpoch {
    /// `shards[local]` — compact frozen map of the group's `local`-th shard.
    shards: Vec<FxHashMap<Key, Slot>>,
    /// Writes that built each shard.
    writes: Vec<u64>,
    /// Reads served per shard since the epoch froze.
    reads: Vec<u64>,
}

/// The single-threaded state of one shard-group owner.
struct Worker {
    /// Shards in the whole store (all workers together).
    num_shards: usize,
    /// Worker threads in the whole store (the ownership stride).
    num_workers: usize,
    /// Global shard ids owned by this worker (ascending).
    shard_ids: Vec<usize>,
    /// Writable maps of the current epoch, one per owned shard.
    writable: Vec<FxHashMap<Key, WriteSlot>>,
    /// Writes accepted into the current epoch, per owned shard.
    writable_writes: Vec<u64>,
    /// Completed epochs, in order.
    frozen: Vec<FrozenEpoch>,
    /// Total writes accepted across all epochs.
    total_writes: u64,
}

impl Worker {
    fn run(mut self, requests: Receiver<Request>) {
        // Exit when every sender (backend + all views) is gone.
        while let Ok(request) = requests.recv() {
            match request {
                Request::Commit(batches) => {
                    for (local, pairs) in batches {
                        self.writable_writes[local] += pairs.len() as u64;
                        self.total_writes += pairs.len() as u64;
                        let map = &mut self.writable[local];
                        map.reserve(pairs.len());
                        for (key, value) in pairs {
                            match map.entry(key) {
                                std::collections::hash_map::Entry::Occupied(mut slot) => {
                                    slot.get_mut().push(value)
                                }
                                std::collections::hash_map::Entry::Vacant(slot) => {
                                    slot.insert(WriteSlot::One(value));
                                }
                            }
                        }
                    }
                }
                Request::Advance => {
                    let shard_count = self.shard_ids.len();
                    let shards = std::mem::replace(
                        &mut self.writable,
                        (0..shard_count).map(|_| FxHashMap::default()).collect(),
                    )
                    .into_iter()
                    .map(|map| {
                        let mut frozen =
                            FxHashMap::with_capacity_and_hasher(map.len(), Default::default());
                        for (key, slot) in map {
                            frozen.insert(key, slot.freeze());
                        }
                        frozen
                    })
                    .collect();
                    let writes = std::mem::replace(&mut self.writable_writes, vec![0; shard_count]);
                    self.frozen.push(FrozenEpoch {
                        shards,
                        writes,
                        reads: vec![0; shard_count],
                    });
                }
                Request::Read { epoch, ops, reply } => {
                    let (num_shards, num_workers) = (self.num_shards, self.num_workers);
                    let epoch = &mut self.frozen[epoch];
                    let replies = ops
                        .into_iter()
                        .map(|(tag, op)| (tag, Self::serve(epoch, num_shards, num_workers, op)))
                        .collect();
                    // A dropped requester is not an error for the owner.
                    let _ = reply.send(replies);
                }
                Request::Loads { epoch, reply } => {
                    let epoch = &self.frozen[epoch];
                    let loads = self
                        .shard_ids
                        .iter()
                        .enumerate()
                        .map(|(local, &shard)| ShardLoad {
                            shard,
                            keys: epoch.shards[local].len() as u64,
                            writes: epoch.writes[local],
                            reads: epoch.reads[local],
                        })
                        .collect();
                    let _ = reply.send(loads);
                }
                Request::Dump { epoch, reply } => {
                    let epoch = &self.frozen[epoch];
                    let mut entries = Vec::new();
                    for shard in &epoch.shards {
                        for (key, slot) in shard {
                            entries.push((*key, slot.as_slice().to_vec()));
                        }
                    }
                    let _ = reply.send(entries);
                }
                Request::TotalWrites { reply } => {
                    let _ = reply.send(self.total_writes);
                }
            }
        }
    }

    /// Serve one read against a frozen epoch, debiting its read counters
    /// with the same costs as [`crate::Snapshot`] (misses count too).
    ///
    /// Shard `s` is owned by worker `s % num_workers` as its local shard
    /// `s / num_workers`, so the owner re-derives the local index from the
    /// key alone — the sender already routed the key here, the hash agrees.
    fn serve(
        epoch: &mut FrozenEpoch,
        num_shards: usize,
        num_workers: usize,
        op: ReadOp,
    ) -> ReadReply {
        let local_of = |key: &Key| {
            (hash_words(key.tag.code(), key.a, key.b) % num_shards as u64) as usize / num_workers
        };
        match op {
            ReadOp::Get(ref key) => {
                let local = local_of(key);
                epoch.reads[local] += 1;
                ReadReply::Value(epoch.shards[local].get(key).map(Slot::first))
            }
            ReadOp::GetIndexed(ref key, index) => {
                let local = local_of(key);
                epoch.reads[local] += 1;
                ReadReply::Value(
                    epoch.shards[local]
                        .get(key)
                        .and_then(|slot| slot.get(index as usize)),
                )
            }
            ReadOp::Multiplicity(ref key) => {
                let local = local_of(key);
                epoch.reads[local] += 1;
                ReadReply::Count(epoch.shards[local].get(key).map_or(0, Slot::len) as u64)
            }
            ReadOp::GetAll(ref key) => {
                let local = local_of(key);
                let values = epoch.shards[local]
                    .get(key)
                    .map(|slot| slot.as_slice().to_vec())
                    .unwrap_or_default();
                epoch.reads[local] += values.len().max(1) as u64;
                ReadReply::Values(values)
            }
        }
    }
}

/// Routing data shared by the backend and every view it hands out.
struct Router {
    senders: Vec<Sender<Request>>,
    num_shards: usize,
}

impl Router {
    #[inline]
    fn shard_of(&self, key: &Key) -> usize {
        (hash_words(key.tag.code(), key.a, key.b) % self.num_shards as u64) as usize
    }

    /// (worker, local shard index) owning `key`.
    #[inline]
    fn route(&self, key: &Key) -> (usize, usize) {
        let shard = self.shard_of(key);
        (shard % self.senders.len(), shard / self.senders.len())
    }
}

/// A multi-worker, message-passing DDS backend over in-process channels.
///
/// See the [module docs](self) for the design; select it through
/// `ampc_runtime::AmpcConfig` rather than constructing it directly.
pub struct ChannelBackend {
    router: Arc<Router>,
    completed: usize,
}

impl ChannelBackend {
    /// Spawn a backend with `num_shards` shards owned by up to `workers`
    /// threads (clamped to `[1, num_shards]`).
    pub fn new(num_shards: usize, workers: usize) -> Self {
        let num_shards = num_shards.max(1);
        let workers = workers.clamp(1, num_shards);
        let mut senders = Vec::with_capacity(workers);
        for worker in 0..workers {
            let shard_ids: Vec<usize> = (worker..num_shards).step_by(workers).collect();
            let (tx, rx) = channel();
            let state = Worker {
                num_shards,
                num_workers: workers,
                writable: (0..shard_ids.len()).map(|_| FxHashMap::default()).collect(),
                writable_writes: vec![0; shard_ids.len()],
                shard_ids,
                frozen: Vec::new(),
                total_writes: 0,
            };
            std::thread::Builder::new()
                .name(format!("dds-owner-{worker}"))
                .spawn(move || state.run(rx))
                .expect("spawning DDS owner thread");
            senders.push(tx);
        }
        ChannelBackend {
            router: Arc::new(Router {
                senders,
                num_shards,
            }),
            completed: 0,
        }
    }

    /// Number of owner threads serving the shards.
    pub fn num_workers(&self) -> usize {
        self.router.senders.len()
    }

    fn send(&self, worker: usize, request: Request) {
        self.router.senders[worker]
            .send(request)
            .expect("DDS owner thread exited while the backend is alive");
    }
}

impl DdsBackend for ChannelBackend {
    type View = ChannelSnapshot;

    fn with_shards(num_shards: usize, threads: usize) -> Self {
        ChannelBackend::new(num_shards, threads)
    }

    fn num_shards(&self) -> usize {
        self.router.num_shards
    }

    fn empty_view(&self) -> ChannelSnapshot {
        ChannelSnapshot {
            inner: Arc::new(ViewInner {
                router: self.router.clone(),
                epoch: None,
                empty_reads: (0..self.router.num_shards)
                    .map(|_| AtomicU64::new(0))
                    .collect(),
            }),
        }
    }

    fn commit_round(&mut self, batches: Vec<Vec<(Key, Value)>>, _threads: usize) {
        // Partition the ordered batches into per-(worker, local shard)
        // buckets.  Concatenation order is preserved bucket-wise, which —
        // keys living on exactly one shard — preserves every key's
        // multi-value index order.
        let workers = self.router.senders.len();
        type WorkerBuckets = Vec<(usize, Vec<(Key, Value)>)>;
        let mut buckets: Vec<WorkerBuckets> = vec![Vec::new(); workers];
        let mut bucket_index: FxHashMap<(usize, usize), usize> = FxHashMap::default();
        for batch in batches {
            for (key, value) in batch {
                let (worker, local) = self.router.route(&key);
                let slot = *bucket_index.entry((worker, local)).or_insert_with(|| {
                    buckets[worker].push((local, Vec::new()));
                    buckets[worker].len() - 1
                });
                buckets[worker][slot].1.push((key, value));
            }
        }
        for (worker, batches) in buckets.into_iter().enumerate() {
            if !batches.is_empty() {
                self.send(worker, Request::Commit(batches));
            }
        }
    }

    fn advance(&mut self, _threads: usize) -> ChannelSnapshot {
        for worker in 0..self.router.senders.len() {
            self.send(worker, Request::Advance);
        }
        let epoch = self.completed;
        self.completed += 1;
        // Channel FIFO makes this safe without an ack: any read the caller
        // issues through the returned view is sent after the `Advance` on
        // the same channel, so the owner freezes the epoch first.
        ChannelSnapshot {
            inner: Arc::new(ViewInner {
                router: self.router.clone(),
                epoch: Some(epoch),
                empty_reads: Vec::new(),
            }),
        }
    }

    fn completed_epochs(&self) -> usize {
        self.completed
    }

    fn total_writes(&self) -> u64 {
        let mut total = 0;
        for worker in 0..self.router.senders.len() {
            let (tx, rx) = channel();
            self.send(worker, Request::TotalWrites { reply: tx });
            total += rx.recv().expect("DDS owner thread exited");
        }
        total
    }

    fn backend_name(&self) -> &'static str {
        "channel"
    }
}

/// State shared by every clone of a [`ChannelSnapshot`].
struct ViewInner {
    router: Arc<Router>,
    /// Completed epoch served, or `None` for the pre-input empty view.
    epoch: Option<usize>,
    /// Read accounting of the empty view (per shard); frozen epochs count
    /// inside their owner instead.
    empty_reads: Vec<AtomicU64>,
}

/// Read view of one completed [`ChannelBackend`] epoch.
///
/// Cloning is an `Arc` bump; clones share the owner channels and therefore
/// the read accounting.  Every lookup is a channel round-trip to the shard's
/// owner thread; batched lookups coalesce into one request per owner.
#[derive(Clone)]
pub struct ChannelSnapshot {
    inner: Arc<ViewInner>,
}

impl ChannelSnapshot {
    /// Send one read op for `key` and wait for the reply.
    fn request_one(&self, op: ReadOp) -> ReadReply {
        let key = match &op {
            ReadOp::Get(key)
            | ReadOp::GetIndexed(key, _)
            | ReadOp::Multiplicity(key)
            | ReadOp::GetAll(key) => key,
        };
        let Some(epoch) = self.inner.epoch else {
            // Empty view: every lookup misses; count one query per op, like
            // an empty Snapshot does (a missing key's get_all costs 1).
            let shard = self.inner.router.shard_of(key);
            self.inner.empty_reads[shard].fetch_add(1, Ordering::Relaxed);
            return match op {
                ReadOp::Get(_) | ReadOp::GetIndexed(_, _) => ReadReply::Value(None),
                ReadOp::Multiplicity(_) => ReadReply::Count(0),
                ReadOp::GetAll(_) => ReadReply::Values(Vec::new()),
            };
        };
        let (worker, _) = self.inner.router.route(key);
        let (tx, rx) = channel();
        self.inner.router.senders[worker]
            .send(Request::Read {
                epoch,
                ops: vec![(0, op)],
                reply: tx,
            })
            .expect("DDS owner thread exited while a view is alive");
        let mut replies = rx.recv().expect("DDS owner thread exited");
        replies.pop().expect("one reply per op").1
    }

    fn loads(&self) -> Vec<ShardLoad> {
        let Some(epoch) = self.inner.epoch else {
            return self
                .inner
                .empty_reads
                .iter()
                .enumerate()
                .map(|(shard, reads)| ShardLoad {
                    shard,
                    keys: 0,
                    writes: 0,
                    reads: reads.load(Ordering::Relaxed),
                })
                .collect();
        };
        let mut receivers = Vec::new();
        for sender in &self.inner.router.senders {
            let (tx, rx) = channel();
            sender
                .send(Request::Loads { epoch, reply: tx })
                .expect("DDS owner thread exited while a view is alive");
            receivers.push(rx);
        }
        let mut loads: Vec<ShardLoad> = receivers
            .into_iter()
            .flat_map(|rx| rx.recv().expect("DDS owner thread exited"))
            .collect();
        loads.sort_by_key(|load| load.shard);
        loads
    }
}

impl SnapshotView for ChannelSnapshot {
    fn num_shards(&self) -> usize {
        self.inner.router.num_shards
    }

    fn get(&self, key: &Key) -> Option<Value> {
        match self.request_one(ReadOp::Get(*key)) {
            ReadReply::Value(value) => value,
            _ => unreachable!("Get replies with Value"),
        }
    }

    fn get_indexed(&self, key: &Key, index: usize) -> Option<Value> {
        match self.request_one(ReadOp::GetIndexed(*key, index as u64)) {
            ReadReply::Value(value) => value,
            _ => unreachable!("GetIndexed replies with Value"),
        }
    }

    fn get_all(&self, key: &Key) -> Vec<Value> {
        match self.request_one(ReadOp::GetAll(*key)) {
            ReadReply::Values(values) => values,
            _ => unreachable!("GetAll replies with Values"),
        }
    }

    fn multiplicity(&self, key: &Key) -> usize {
        match self.request_one(ReadOp::Multiplicity(*key)) {
            ReadReply::Count(count) => count as usize,
            _ => unreachable!("Multiplicity replies with Count"),
        }
    }

    fn len(&self) -> usize {
        self.loads().iter().map(|load| load.keys as usize).sum()
    }

    fn get_many_slice(&self, keys: &[Key], out: &mut [Option<Value>]) {
        assert!(
            out.len() >= keys.len(),
            "output slice shorter than key batch"
        );
        let Some(epoch) = self.inner.epoch else {
            for (key, slot) in keys.iter().zip(out.iter_mut()) {
                let shard = self.inner.router.shard_of(key);
                self.inner.empty_reads[shard].fetch_add(1, Ordering::Relaxed);
                *slot = None;
            }
            return;
        };
        // One request per owner, all in flight at once — the batching a
        // networked deployment would use to hide round-trip latency.
        let workers = self.inner.router.senders.len();
        let mut per_worker: Vec<Vec<(u32, ReadOp)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, key) in keys.iter().enumerate() {
            let (worker, _) = self.inner.router.route(key);
            per_worker[worker].push((i as u32, ReadOp::Get(*key)));
        }
        let mut receivers = Vec::new();
        for (worker, ops) in per_worker.into_iter().enumerate() {
            if ops.is_empty() {
                continue;
            }
            let (tx, rx) = channel();
            self.inner.router.senders[worker]
                .send(Request::Read {
                    epoch,
                    ops,
                    reply: tx,
                })
                .expect("DDS owner thread exited while a view is alive");
            receivers.push(rx);
        }
        for rx in receivers {
            for (i, reply) in rx.recv().expect("DDS owner thread exited") {
                let ReadReply::Value(value) = reply else {
                    unreachable!("Get replies with Value");
                };
                out[i as usize] = value;
            }
        }
    }

    fn total_reads(&self) -> u64 {
        self.loads().iter().map(|load| load.reads).sum()
    }

    fn shard_loads(&self) -> Vec<ShardLoad> {
        self.loads()
    }

    fn stats(&self) -> StoreStats {
        StoreStats::from_loads(self.loads())
    }

    fn entries(&self) -> Vec<(Key, Vec<Value>)> {
        let Some(epoch) = self.inner.epoch else {
            return Vec::new();
        };
        let mut receivers = Vec::new();
        for sender in &self.inner.router.senders {
            let (tx, rx) = channel();
            sender
                .send(Request::Dump { epoch, reply: tx })
                .expect("DDS owner thread exited while a view is alive");
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .flat_map(|rx| rx.recv().expect("DDS owner thread exited"))
            .collect()
    }
}

impl std::fmt::Debug for ChannelSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelSnapshot")
            .field("num_shards", &self.inner.router.num_shards)
            .field("epoch", &self.inner.epoch)
            .finish()
    }
}

impl std::fmt::Debug for ChannelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelBackend")
            .field("num_shards", &self.router.num_shards)
            .field("workers", &self.router.senders.len())
            .field("completed_epochs", &self.completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyTag;

    fn k(a: u64) -> Key {
        Key::of(KeyTag::Scalar, a)
    }

    fn backend_with(pairs: &[(u64, u64)], shards: usize, workers: usize) -> ChannelBackend {
        let mut backend = ChannelBackend::new(shards, workers);
        let batch: Vec<(Key, Value)> = pairs
            .iter()
            .map(|&(key, value)| (k(key), Value::scalar(value)))
            .collect();
        backend.commit_round(vec![batch], 1);
        backend
    }

    #[test]
    fn reads_round_trip_through_owner_threads() {
        let mut backend = backend_with(&[(1, 10), (2, 20), (3, 30)], 8, 3);
        let view = backend.advance(1);
        assert_eq!(view.get(&k(1)), Some(Value::scalar(10)));
        assert_eq!(view.get(&k(4)), None);
        assert_eq!(view.len(), 3);
        assert_eq!(view.total_reads(), 2);
    }

    #[test]
    fn multi_value_order_is_commit_order_across_machine_batches() {
        let mut backend = ChannelBackend::new(4, 2);
        backend.commit_round(
            vec![
                vec![(k(9), Value::scalar(0)), (k(9), Value::scalar(1))],
                vec![(k(9), Value::scalar(2))],
            ],
            1,
        );
        let view = backend.advance(1);
        assert_eq!(view.multiplicity(&k(9)), 3);
        for i in 0..3usize {
            assert_eq!(view.get_indexed(&k(9), i), Some(Value::scalar(i as u64)));
        }
        assert_eq!(view.get_indexed(&k(9), 3), None);
        assert_eq!(
            view.get_all(&k(9)),
            vec![Value::scalar(0), Value::scalar(1), Value::scalar(2)]
        );
    }

    #[test]
    fn epochs_are_isolated() {
        let mut backend = backend_with(&[(1, 1)], 4, 2);
        let d0 = backend.advance(1);
        backend.commit_round(vec![vec![(k(2), Value::scalar(2))]], 1);
        let d1 = backend.advance(1);
        assert_eq!(d0.get(&k(1)), Some(Value::scalar(1)));
        assert_eq!(d0.get(&k(2)), None);
        assert_eq!(d1.get(&k(1)), None);
        assert_eq!(d1.get(&k(2)), Some(Value::scalar(2)));
        assert_eq!(backend.completed_epochs(), 2);
        assert_eq!(backend.total_writes(), 2);
    }

    #[test]
    fn batched_reads_fan_out_per_owner_and_count_per_key() {
        let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i, i * 7)).collect();
        let mut backend = backend_with(&pairs, 16, 4);
        let view = backend.advance(1);
        let keys: Vec<Key> = (0..300u64).map(k).collect();
        let mut out = Vec::new();
        view.get_many(&keys, &mut out);
        for (i, slot) in out.iter().enumerate() {
            let expected = if i < 200 {
                Some(Value::scalar(i as u64 * 7))
            } else {
                None
            };
            assert_eq!(*slot, expected, "key {i}");
        }
        assert_eq!(view.total_reads(), 300);
    }

    #[test]
    fn views_survive_the_backend() {
        let view = {
            let mut backend = backend_with(&[(5, 50)], 4, 2);
            backend.advance(1)
        };
        // The backend (and runtime) are gone; the owners stay alive for the
        // view's reads.
        assert_eq!(view.get(&k(5)), Some(Value::scalar(50)));
    }

    #[test]
    fn empty_view_misses_and_counts() {
        let backend = ChannelBackend::new(4, 2);
        let view = backend.empty_view();
        assert!(view.is_empty());
        assert_eq!(view.get(&k(1)), None);
        assert_eq!(view.multiplicity(&k(2)), 0);
        assert_eq!(view.total_reads(), 2);
    }

    #[test]
    fn concurrent_clones_share_owners() {
        let pairs: Vec<(u64, u64)> = (0..500).map(|i| (i, i)).collect();
        let mut backend = backend_with(&pairs, 8, 4);
        let view = backend.advance(1);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let view = view.clone();
                scope.spawn(move || {
                    for i in 0..125u64 {
                        let key = t * 125 + i;
                        assert_eq!(view.get(&k(key)), Some(Value::scalar(key)));
                    }
                });
            }
        });
        assert_eq!(view.total_reads(), 500);
    }
}

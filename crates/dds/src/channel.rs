//! The in-process message-passing backend: [`RemoteBackend`] over
//! [`MpscTransport`].
//!
//! Before the transport split this module owned a private `enum Request`
//! with reply channels baked into the variants — an API that could not
//! leave the process.  The protocol now lives in [`crate::proto`] as plain
//! serializable data, the owner loop in [`crate::remote`] is generic over
//! any [`crate::transport::Transport`], and this module is simply the
//! in-process instantiation:
//!
//! ```text
//! ChannelBackend  =  RemoteBackend<MpscTransport>
//! ```
//!
//! What is specific to this instantiation is the *shared-memory capability*
//! of its transport: requests travel as typed values (no serialization),
//! and on `Advance` the owner publishes the frozen epoch **once** as an
//! `Arc` in its reply — the zero-copy fast path.  Every
//! [`ChannelSnapshot`] then resolves `get` / `get_indexed` /
//! `multiplicity` / `get_many` directly against the shared immutable maps —
//! lock-free, with zero channel traffic — while read accounting lands in
//! per-shard atomics inside the shared epoch, where the owner can still see
//! it (`RemoteBackend::epoch_loads` serves the owner's view of the same
//! counters).
//!
//! Swap the transport for [`crate::TcpTransport`] and the identical owner
//! loop speaks length-prefixed [`crate::proto`] frames over sockets, with
//! the `Arc` hand-off replaced by a fetched [`crate::proto::EpochFrame`]
//! replica — that instantiation is [`crate::TcpBackend`], and the
//! conformance suites hold both to byte-identical behaviour.
//!
//! Owner threads are reaped when the backend drops; views keep the shared
//! epoch `Arc`s, so they stay valid — and their reads byte-identical — for
//! as long as the caller keeps them, even after the backend is gone.  An
//! owner thread that dies mid-run (a panic, a poisoned request) surfaces as
//! a typed [`crate::TransportError`] carrying the panic payload, not a hung
//! or cryptically broken channel.

use crate::remote::{RemoteBackend, RemoteSnapshot};
use crate::transport::MpscTransport;

/// A multi-worker, message-passing DDS backend over in-process channels.
///
/// See the [module docs](self) for the design; select it through
/// `ampc_runtime::AmpcConfig` rather than constructing it directly.
pub type ChannelBackend = RemoteBackend<MpscTransport>;

/// Read view of one completed [`ChannelBackend`] epoch (the shared-memory
/// instantiation of [`RemoteSnapshot`]).
pub type ChannelSnapshot = RemoteSnapshot;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DdsBackend, SnapshotView};
    use crate::key::{Key, KeyTag, Value};

    fn k(a: u64) -> Key {
        Key::of(KeyTag::Scalar, a)
    }

    fn backend_with(pairs: &[(u64, u64)], shards: usize, workers: usize) -> ChannelBackend {
        let mut backend = ChannelBackend::new(shards, workers);
        let batch: Vec<(Key, Value)> = pairs
            .iter()
            .map(|&(key, value)| (k(key), Value::scalar(value)))
            .collect();
        backend.commit_round(vec![batch], 1);
        backend
    }

    #[test]
    fn reads_resolve_against_the_published_epoch() {
        let mut backend = backend_with(&[(1, 10), (2, 20), (3, 30)], 8, 3);
        let view = backend.advance(1);
        assert_eq!(view.get(&k(1)), Some(Value::scalar(10)));
        assert_eq!(view.get(&k(4)), None);
        assert_eq!(view.len(), 3);
        assert_eq!(view.total_reads(), 2);
    }

    #[test]
    fn shared_view_reads_are_visible_to_owner_served_loads() {
        // Reads land in the shared epoch's atomics; the owner-served Loads
        // protocol must observe them without any extra synchronisation —
        // the shared-memory capability wire transports do not have.
        let mut backend = backend_with(&[(1, 1), (2, 2), (3, 3), (4, 4)], 8, 2);
        let view = backend.advance(1);
        for i in 1..=4u64 {
            let _ = view.get(&k(i));
            let _ = view.multiplicity(&k(i));
        }
        let owner_loads = backend.epoch_loads(0).unwrap();
        assert_eq!(owner_loads.iter().map(|l| l.reads).sum::<u64>(), 8);
        assert_eq!(owner_loads.iter().map(|l| l.writes).sum::<u64>(), 4);
        // The view computes the same loads locally from the shared epoch.
        assert_eq!(view.shard_loads(), owner_loads);
    }

    #[test]
    fn multi_value_order_is_commit_order_across_machine_batches() {
        let mut backend = ChannelBackend::new(4, 2);
        backend.commit_round(
            vec![
                vec![(k(9), Value::scalar(0)), (k(9), Value::scalar(1))],
                vec![(k(9), Value::scalar(2))],
            ],
            1,
        );
        let view = backend.advance(1);
        assert_eq!(view.multiplicity(&k(9)), 3);
        for i in 0..3usize {
            assert_eq!(view.get_indexed(&k(9), i), Some(Value::scalar(i as u64)));
        }
        assert_eq!(view.get_indexed(&k(9), 3), None);
        assert_eq!(
            view.get_all(&k(9)),
            vec![Value::scalar(0), Value::scalar(1), Value::scalar(2)]
        );
    }

    #[test]
    fn epochs_are_isolated() {
        let mut backend = backend_with(&[(1, 1)], 4, 2);
        let d0 = backend.advance(1);
        backend.commit_round(vec![vec![(k(2), Value::scalar(2))]], 1);
        let d1 = backend.advance(1);
        assert_eq!(d0.get(&k(1)), Some(Value::scalar(1)));
        assert_eq!(d0.get(&k(2)), None);
        assert_eq!(d1.get(&k(1)), None);
        assert_eq!(d1.get(&k(2)), Some(Value::scalar(2)));
        assert_eq!(backend.completed_epochs(), 2);
        assert_eq!(backend.total_writes(), 2);
    }

    #[test]
    fn batched_reads_resolve_locally_and_count_per_key() {
        let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i, i * 7)).collect();
        let mut backend = backend_with(&pairs, 16, 4);
        let view = backend.advance(1);
        let keys: Vec<Key> = (0..300u64).map(k).collect();
        let mut out = Vec::new();
        view.get_many(&keys, &mut out);
        for (i, slot) in out.iter().enumerate() {
            let expected = if i < 200 {
                Some(Value::scalar(i as u64 * 7))
            } else {
                None
            };
            assert_eq!(*slot, expected, "key {i}");
        }
        assert_eq!(view.total_reads(), 300);
    }

    #[test]
    fn views_survive_the_backend() {
        let view = {
            let mut backend = backend_with(&[(5, 50)], 4, 2);
            backend.advance(1)
        };
        // The backend (and its owner threads) are gone; the view holds the
        // published epoch directly and serves everything locally.
        assert_eq!(view.get(&k(5)), Some(Value::scalar(50)));
        assert_eq!(view.len(), 1);
        assert_eq!(view.total_reads(), 1);
    }

    #[test]
    fn empty_view_misses_and_counts() {
        let backend = ChannelBackend::new(4, 2);
        let view = backend.empty_view();
        assert!(view.is_empty());
        assert_eq!(view.get(&k(1)), None);
        assert_eq!(view.multiplicity(&k(2)), 0);
        assert_eq!(view.total_reads(), 2);
    }

    #[test]
    fn concurrent_clones_share_the_published_epoch() {
        let pairs: Vec<(u64, u64)> = (0..500).map(|i| (i, i)).collect();
        let mut backend = backend_with(&pairs, 8, 4);
        let view = backend.advance(1);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let view = view.clone();
                scope.spawn(move || {
                    for i in 0..125u64 {
                        let key = t * 125 + i;
                        assert_eq!(view.get(&k(key)), Some(Value::scalar(key)));
                    }
                });
            }
        });
        assert_eq!(view.total_reads(), 500);
    }

    #[test]
    fn worker_counts_are_clamped() {
        let backend = ChannelBackend::new(4, 64);
        assert_eq!(backend.num_workers(), 4);
        let backend = ChannelBackend::new(8, 0);
        assert_eq!(backend.num_workers(), 1);
    }
}

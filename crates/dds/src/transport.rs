//! Transports carrying the [`crate::proto`] protocol between a backend and
//! its shard-group owners.
//!
//! A transport is one *connection*: the backend holds the client half
//! ([`Transport`]), the owner thread (or process) serves the server half
//! ([`ServerTransport`]).  Requests and replies pair up positionally (FIFO
//! per connection), so a client may pipeline several sends before receiving.
//!
//! Two implementations ship in-tree:
//!
//! * [`MpscTransport`] — in-process channels.  Requests travel as typed
//!   values (no serialization), and the `Advance` reply exercises the
//!   transport's *shared-memory capability*: the owner publishes the frozen
//!   epoch as an `Arc` ([`ClientReply::SharedEpoch`]) instead of
//!   serializing it, which is the zero-copy fast path
//!   [`crate::ChannelBackend`] has always had.
//! * [`TcpTransport`] — localhost sockets speaking length-prefixed
//!   [`crate::proto`] frames (`std::net`, no external dependencies).  Every
//!   message round-trips through the byte codec; `Advance` replies carry the
//!   full [`crate::proto::EpochFrame`] so the client can rebuild a local
//!   replica of the frozen maps.
//!
//! # Fault injection
//!
//! [`RequestFaults`] schedules request-level faults: "lose the reply of the
//! `Commit` targeting epoch 3 on worker 1".  Transports honor the schedule
//! in [`Transport::send`]: the request is delivered, its reply is dropped
//! in transit, and the transport retransmits the identical request —
//! exactly the drop-then-retry a real deployment's RPC layer performs when
//! an acknowledgement goes missing.  The owner consequently receives the
//! request **twice** and must apply it exactly once (commit deduplication
//! by sequence number, advance replay of the frozen epoch — see
//! [`crate::remote`]); the cross-backend suites assert results are
//! byte-identical with and without faults, which fails loudly if that
//! idempotence ever regresses.
//!
//! # Failure surface
//!
//! Every client operation returns a typed [`TransportError`] instead of
//! hanging or dying on a broken channel.  When an owner thread panics, the
//! backend joins it and attaches the panic payload to the
//! [`TransportError::PeerClosed`] it surfaces — see
//! [`crate::RemoteBackend`].

use crate::proto::{
    decode_reply, decode_request, encode_reply, encode_request, read_frame, write_frame,
    ProtoError, Reply, Request, RequestKind,
};
use crate::remote::FrozenEpoch;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fmt;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// Typed failure of a transport operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The owner side of the connection is gone.  If the owner thread died
    /// panicking, `panic` carries its payload (attached by the backend,
    /// which owns the join handle).
    PeerClosed {
        /// Worker whose connection closed.
        worker: usize,
        /// Panic payload of the dead owner, when one could be harvested.
        panic: Option<String>,
    },
    /// An I/O error on the connection.
    Io {
        /// Worker whose connection failed.
        worker: usize,
        /// Stringified `std::io::Error`.
        message: String,
    },
    /// A frame arrived but did not decode.
    Proto {
        /// Worker whose frame was malformed.
        worker: usize,
        /// The decode failure.
        error: ProtoError,
    },
    /// A well-formed reply of the wrong variant for the pending request.
    Protocol {
        /// Worker that answered out of protocol.
        worker: usize,
        /// Description of the mismatch.
        message: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::PeerClosed {
                worker,
                panic: Some(message),
            } => write!(f, "DDS owner {worker} panicked: {message}"),
            TransportError::PeerClosed {
                worker,
                panic: None,
            } => write!(f, "DDS owner {worker} closed the connection"),
            TransportError::Io { worker, message } => {
                write!(f, "I/O error talking to DDS owner {worker}: {message}")
            }
            TransportError::Proto { worker, error } => {
                write!(f, "malformed frame from DDS owner {worker}: {error}")
            }
            TransportError::Protocol { worker, message } => {
                write!(f, "protocol violation from DDS owner {worker}: {message}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

// ---------------------------------------------------------------------------
// Request-level fault injection
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct FaultsInner {
    /// Scheduled one-shot drops: (kind, epoch, worker).
    drops: Mutex<HashSet<(RequestKind, usize, usize)>>,
    /// Requests dropped (and retried) so far.
    dropped: AtomicU64,
}

/// A schedule of request-level faults, shared between a backend's transports.
///
/// Each scheduled entry fires once: the matching request is delivered, its
/// *reply is lost in transit*, and the transport retransmits the identical
/// request — the retry a real RPC layer issues when an acknowledgement goes
/// missing.  The owner therefore sees the request **twice** and must treat
/// the second copy idempotently (commit deduplication by sequence number,
/// advance replay of the already-frozen epoch); the fault suites pin down
/// that results stay byte-identical, which fails loudly if that
/// idempotence ever breaks.  Only the write-side requests (`Commit`,
/// `Advance`) are addressable — they are the ones a real deployment must
/// retry; reads are served from immutable local epochs and never cross the
/// wire.
///
/// Cloning shares the schedule (transports of one backend consult one
/// ledger).
#[derive(Clone, Debug, Default)]
pub struct RequestFaults {
    inner: Arc<FaultsInner>,
}

impl RequestFaults {
    /// An empty schedule.
    pub fn none() -> Self {
        RequestFaults::default()
    }

    /// Schedule the `kind` request targeting `epoch` on `worker` to lose
    /// its reply in transit, forcing a retransmission of the request.
    pub fn schedule_drop(&self, kind: RequestKind, epoch: usize, worker: usize) {
        self.inner.drops.lock().insert((kind, epoch, worker));
    }

    /// Consume a scheduled drop for these coordinates, if one exists,
    /// counting it as fired.
    pub fn should_drop(&self, kind: RequestKind, epoch: usize, worker: usize) -> bool {
        let fired = self.inner.drops.lock().remove(&(kind, epoch, worker));
        if fired {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Faults fired so far (one lost reply + retransmission each).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// `true` if no drops remain scheduled.
    pub fn is_empty(&self) -> bool {
        self.inner.drops.lock().is_empty()
    }
}

/// The fault-injection coordinates of a request, if it is addressable.
fn fault_coordinates(request: &Request) -> Option<(RequestKind, usize)> {
    match request {
        Request::Commit { epoch, .. } => Some((RequestKind::Commit, *epoch)),
        Request::Advance { epoch } => Some((RequestKind::Advance, *epoch)),
        _ => None,
    }
}

/// Best-effort extraction of a panic payload's message (panics carry
/// `String` or `&str` payloads in practice).
///
/// Shared by the backend's owner-thread harvesting and the runtime's
/// round-boundary `catch_unwind`, so the two failure paths can never
/// diverge in how they read a payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
}

// ---------------------------------------------------------------------------
// The transport traits
// ---------------------------------------------------------------------------

/// What a client receives for one request.
pub enum ClientReply {
    /// A decoded wire reply.
    Wire(Reply),
    /// The frozen epoch published as shared memory — the zero-copy fast
    /// path of in-process transports ([`MpscTransport`]).  Wire transports
    /// deliver [`Reply::Epoch`] instead.
    SharedEpoch(Arc<FrozenEpoch>),
}

/// What an owner hands its transport to answer one request.
pub enum OwnerReply {
    /// An ordinary wire reply.
    Wire(Reply),
    /// A freshly frozen epoch.  Shared-memory transports forward the `Arc`
    /// as-is ([`ClientReply::SharedEpoch`]); wire transports serialize it
    /// into a [`Reply::Epoch`] frame.
    Epoch(Arc<FrozenEpoch>),
}

/// Client half of one backend↔owner connection.
pub trait Transport: Send + Sized + 'static {
    /// Backend label reported by `DdsBackend::backend_name` (`"channel"`
    /// for [`MpscTransport`], `"remote"` for [`TcpTransport`]).
    const NAME: &'static str;

    /// The server half handed to the owner thread.
    type Server: ServerTransport;

    /// Establish one connection for `worker`, returning both halves.
    fn connect(worker: usize) -> (Self, Self::Server);

    /// Install the fault schedule this transport consults on every send.
    fn install_faults(&mut self, faults: RequestFaults);

    /// Transmit one request.  If the fault schedule matches, the request
    /// is delivered, its reply is lost, and the identical request is
    /// retransmitted — the caller still receives exactly one reply.
    /// Does not wait for that reply.
    fn send(&mut self, request: Request) -> Result<(), TransportError>;

    /// Receive the reply to the oldest unanswered request.
    fn recv(&mut self) -> Result<ClientReply, TransportError>;
}

/// Server (owner) half of one backend↔owner connection.
pub trait ServerTransport: Send + 'static {
    /// Next request, or `None` when the client is gone (owner exits).
    fn recv_request(&mut self) -> Option<Request>;

    /// Answer the current request; `false` when the client is gone.
    fn send_reply(&mut self, reply: OwnerReply) -> bool;
}

// ---------------------------------------------------------------------------
// MpscTransport — in-process channels, zero-copy epoch publication
// ---------------------------------------------------------------------------

/// In-process transport over `std::sync::mpsc` channels.
///
/// Requests travel as typed values; `Advance` replies carry the frozen epoch
/// as a shared `Arc` (the zero-copy capability wire transports lack).
pub struct MpscTransport {
    worker: usize,
    requests: Sender<Request>,
    replies: Receiver<OwnerReply>,
    faults: RequestFaults,
}

/// Server half of an [`MpscTransport`].
pub struct MpscServer {
    requests: Receiver<Request>,
    replies: Sender<OwnerReply>,
}

impl MpscTransport {
    fn transmit(&mut self, request: Request) -> Result<(), TransportError> {
        self.requests
            .send(request)
            .map_err(|_| TransportError::PeerClosed {
                worker: self.worker,
                panic: None,
            })
    }
}

impl Transport for MpscTransport {
    const NAME: &'static str = "channel";
    type Server = MpscServer;

    fn connect(worker: usize) -> (Self, MpscServer) {
        let (request_tx, request_rx) = channel();
        let (reply_tx, reply_rx) = channel();
        (
            MpscTransport {
                worker,
                requests: request_tx,
                replies: reply_rx,
                faults: RequestFaults::none(),
            },
            MpscServer {
                requests: request_rx,
                replies: reply_tx,
            },
        )
    }

    fn install_faults(&mut self, faults: RequestFaults) {
        self.faults = faults;
    }

    fn send(&mut self, request: Request) -> Result<(), TransportError> {
        if let Some((kind, epoch)) = fault_coordinates(&request) {
            if self.faults.should_drop(kind, epoch, self.worker) {
                // Fault: the request is delivered but its reply is lost in
                // transit.  Transmit the first copy, discard the reply the
                // backend will never "see", and fall through to the
                // retransmission below — whose reply is the one the caller
                // receives.  The owner must handle the duplicate
                // idempotently.
                self.transmit(request.clone())?;
                let _lost_reply = self.recv()?;
            }
        }
        self.transmit(request)
    }

    fn recv(&mut self) -> Result<ClientReply, TransportError> {
        match self.replies.recv() {
            Ok(OwnerReply::Wire(reply)) => Ok(ClientReply::Wire(reply)),
            Ok(OwnerReply::Epoch(epoch)) => Ok(ClientReply::SharedEpoch(epoch)),
            Err(_) => Err(TransportError::PeerClosed {
                worker: self.worker,
                panic: None,
            }),
        }
    }
}

impl ServerTransport for MpscServer {
    fn recv_request(&mut self) -> Option<Request> {
        self.requests.recv().ok()
    }

    fn send_reply(&mut self, reply: OwnerReply) -> bool {
        self.replies.send(reply).is_ok()
    }
}

// ---------------------------------------------------------------------------
// TcpTransport — localhost sockets, length-prefixed proto frames
// ---------------------------------------------------------------------------

/// Socket transport speaking length-prefixed [`crate::proto`] frames over
/// localhost TCP.
///
/// Every message round-trips through the byte codec, so running the
/// conformance suites over this transport is an end-to-end proof of the wire
/// format.  `Advance` replies carry the serialized
/// [`crate::proto::EpochFrame`]; the client rebuilds a local replica of the
/// frozen maps from it.
pub struct TcpTransport {
    worker: usize,
    stream: TcpStream,
    faults: RequestFaults,
}

/// Server half of a [`TcpTransport`].
pub struct TcpServer {
    stream: TcpStream,
}

impl TcpTransport {
    fn io_error(&self, err: std::io::Error) -> TransportError {
        match err.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => TransportError::PeerClosed {
                worker: self.worker,
                panic: None,
            },
            _ => TransportError::Io {
                worker: self.worker,
                message: err.to_string(),
            },
        }
    }
}

impl Transport for TcpTransport {
    const NAME: &'static str = "remote";
    type Server = TcpServer;

    fn connect(worker: usize) -> (Self, TcpServer) {
        // Loopback rendezvous: the connect lands in the listener's backlog,
        // so binding, connecting and accepting from one thread cannot
        // deadlock.
        let listener =
            TcpListener::bind(("127.0.0.1", 0)).expect("binding a loopback DDS owner socket");
        let addr = listener
            .local_addr()
            .expect("reading the owner socket address");
        let client = TcpStream::connect(addr).expect("connecting to the DDS owner socket");
        let (server, _) = listener.accept().expect("accepting the DDS backend");
        // The protocol is small framed RPCs; Nagle only adds latency.
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        (
            TcpTransport {
                worker,
                stream: client,
                faults: RequestFaults::none(),
            },
            TcpServer { stream: server },
        )
    }

    fn install_faults(&mut self, faults: RequestFaults) {
        self.faults = faults;
    }

    fn send(&mut self, request: Request) -> Result<(), TransportError> {
        let payload = encode_request(&request);
        if let Some((kind, epoch)) = fault_coordinates(&request) {
            if self.faults.should_drop(kind, epoch, self.worker) {
                // Fault: the frame is delivered but its reply is lost in
                // transit.  Write the first copy, discard the reply frame
                // the backend will never "see", then retransmit the
                // identical frame below — the owner must deduplicate.
                write_frame(&mut self.stream, &payload).map_err(|err| self.io_error(err))?;
                let _lost_reply = read_frame(&mut self.stream).map_err(|err| self.io_error(err))?;
            }
        }
        write_frame(&mut self.stream, &payload).map_err(|err| self.io_error(err))
    }

    fn recv(&mut self) -> Result<ClientReply, TransportError> {
        let payload = read_frame(&mut self.stream).map_err(|err| self.io_error(err))?;
        let reply = decode_reply(&payload).map_err(|error| TransportError::Proto {
            worker: self.worker,
            error,
        })?;
        Ok(ClientReply::Wire(reply))
    }
}

impl ServerTransport for TcpServer {
    fn recv_request(&mut self) -> Option<Request> {
        // A vanished client (EOF, reset) is a clean shutdown; a frame that
        // arrives but does not decode is a protocol bug and must keep its
        // diagnostic — the panic is harvested into the typed
        // `TransportError::PeerClosed` the backend surfaces.
        let payload = read_frame(&mut self.stream).ok()?;
        match decode_request(&payload) {
            Ok(request) => Some(request),
            Err(error) => panic!("malformed request frame from the backend: {error}"),
        }
    }

    fn send_reply(&mut self, reply: OwnerReply) -> bool {
        let reply = match reply {
            OwnerReply::Wire(reply) => reply,
            // The wire has no shared memory: serialize the frozen epoch.
            OwnerReply::Epoch(epoch) => Reply::Epoch(epoch.to_frame()),
        };
        let payload = encode_reply(&reply);
        write_frame(&mut self.stream, &payload).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{Key, KeyTag, Value};

    fn echo_server<S: ServerTransport>(mut server: S) -> std::thread::JoinHandle<usize> {
        std::thread::spawn(move || {
            let mut served = 0;
            while let Some(request) = server.recv_request() {
                let reply = match request {
                    Request::Commit { epoch, batches, .. } => Reply::Committed {
                        epoch,
                        accepted: batches.iter().map(|(_, pairs)| pairs.len() as u64).sum(),
                    },
                    Request::TotalWrites => Reply::TotalWrites(served),
                    _ => Reply::TotalWrites(0),
                };
                if !server.send_reply(OwnerReply::Wire(reply)) {
                    break;
                }
                served += 1;
            }
            served as usize
        })
    }

    fn commit_request(epoch: usize) -> Request {
        Request::Commit {
            epoch,
            seq: epoch as u64,
            batches: vec![(0, vec![(Key::of(KeyTag::Scalar, 1), Value::scalar(2))])],
        }
    }

    fn exercise_transport<T: Transport>() {
        let (mut client, server) = T::connect(0);
        let handle = echo_server(server);

        // Pipelined sends, FIFO replies.
        client.send(commit_request(0)).unwrap();
        client.send(Request::TotalWrites).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::Committed { epoch, accepted }) => {
                assert_eq!((epoch, accepted), (0, 1));
            }
            _ => panic!("commit must be acknowledged first"),
        }
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::TotalWrites(n)) => assert_eq!(n, 1),
            _ => panic!("total-writes reply expected"),
        }

        drop(client);
        assert_eq!(handle.join().unwrap(), 2);
    }

    #[test]
    fn mpsc_transport_round_trips() {
        exercise_transport::<MpscTransport>();
    }

    #[test]
    fn tcp_transport_round_trips() {
        exercise_transport::<TcpTransport>();
    }

    fn exercise_faults<T: Transport>() {
        let (mut client, server) = T::connect(3);
        let handle = echo_server(server);
        let faults = RequestFaults::none();
        faults.schedule_drop(RequestKind::Commit, 5, 3);
        faults.schedule_drop(RequestKind::Commit, 5, 4); // wrong worker: never fires
        client.install_faults(faults.clone());

        // The fault delivers the request, loses its reply, and retransmits:
        // the caller still sees exactly one reply per send.
        client.send(commit_request(5)).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::Committed { epoch, .. }) => assert_eq!(epoch, 5),
            _ => panic!("the retransmission's reply must reach the caller"),
        }
        assert_eq!(faults.dropped(), 1);

        // The fault fired once; a second identical request is untouched.
        client.send(commit_request(5)).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::Committed { .. }) => {}
            _ => panic!("second commit must be delivered"),
        }
        assert_eq!(faults.dropped(), 1);
        assert!(!faults.is_empty(), "the wrong-worker drop stays scheduled");

        drop(client);
        // The server really received the duplicate — 2 copies of the
        // faulted commit plus the clean one.  Deduplicating the copy is
        // the owner's job (`remote::Worker`), pinned by its own tests.
        assert_eq!(handle.join().unwrap(), 3, "duplicate must hit the wire");
    }

    #[test]
    fn mpsc_transport_honors_request_faults() {
        exercise_faults::<MpscTransport>();
    }

    #[test]
    fn tcp_transport_honors_request_faults() {
        exercise_faults::<TcpTransport>();
    }

    #[test]
    fn dead_peer_is_a_typed_error() {
        let (mut client, server) = MpscTransport::connect(7);
        drop(server);
        let err = client.send(Request::TotalWrites).unwrap_err();
        assert_eq!(
            err,
            TransportError::PeerClosed {
                worker: 7,
                panic: None
            }
        );

        let (mut client, server) = TcpTransport::connect(7);
        drop(server);
        // The OS may accept the first write into its buffer; the error must
        // surface by the reply read at the latest.
        let result = client
            .send(Request::TotalWrites)
            .and_then(|()| client.recv().map(|_| ()));
        assert_eq!(
            result.unwrap_err(),
            TransportError::PeerClosed {
                worker: 7,
                panic: None
            }
        );
    }
}

//! Transports carrying the [`crate::proto`] protocol between a backend and
//! its shard-group owners.
//!
//! A transport is one *connection* (logically: the TCP transport survives
//! reconnects): the backend holds the client half ([`Transport`]), the owner
//! thread (or process) serves the server half ([`ServerTransport`]).
//! Requests and replies pair up positionally (FIFO per connection), so a
//! client may pipeline several sends before receiving.
//!
//! Two implementations ship in-tree:
//!
//! * [`MpscTransport`] — in-process channels.  Requests travel as typed
//!   values (no serialization), and the `Advance` reply exercises the
//!   transport's *shared-memory capability*: the owner publishes the frozen
//!   epoch as an `Arc` ([`ClientReply::SharedEpoch`]) instead of
//!   serializing it, which is the zero-copy fast path
//!   [`crate::ChannelBackend`] has always had.
//! * [`TcpTransport`] — sockets speaking length-prefixed [`crate::proto`]
//!   frames (`std::net`, no external dependencies).  Every message
//!   round-trips through the byte codec; `Advance` replies carry the full
//!   [`crate::proto::EpochFrame`] so the client can rebuild a local replica
//!   of the frozen maps.
//!
//! # Connection lifecycle: lease → serve → reconnect → expire
//!
//! The first frame of every TCP connection is a [`Request::Lease`]
//! identifying `(session, worker)` and asking for a lease of `ttl_ms`
//! milliseconds; the server answers [`Reply::LeaseGranted`] before any
//! other reply.  From then on the *owner* owns liveness:
//!
//! * while the socket is **connected**, requests renew the lease implicitly
//!   (a slow round is not a dead client — expiry is never enforced against
//!   a healthy connection);
//! * when the socket **drops without a [`Request::Goodbye`]**, the owner
//!   holds the session open and waits for a reconnect until the lease
//!   expires, then reclaims the session (pending commits included);
//! * a **clean shutdown** sends `Goodbye` (the client's `Drop` does), so
//!   the owner releases the session immediately.
//!
//! The client side mirrors this: any I/O failure on send or receive
//! triggers **automatic reconnection** with capped exponential backoff
//! ([`TcpOptions`]).  On reconnect the client replays the lease handshake
//! and then *every request whose reply is still outstanding*, in order.
//! That replay is safe because every request is idempotent at the owner:
//! `Commit` is deduplicated by sequence number, `Advance` re-publishes the
//! already-frozen epoch, and `Loads` / `Dump` / `TotalWrites` are pure
//! reads.  A reconnect that lands on an owner which already reclaimed the
//! session (lease expired) surfaces as the typed
//! [`TransportError::LeaseLost`] — continuing silently would resurrect a
//! session whose pending state is gone.
//!
//! # Fault injection
//!
//! [`RequestFaults`] schedules request-level faults.  Two classes exist:
//!
//! * **drops** — "lose the reply of the `Commit` targeting epoch 3 on
//!   worker 1".  The request is delivered, its reply is dropped in transit,
//!   and the transport retransmits the identical request — exactly the
//!   drop-then-retry a real RPC layer performs when an acknowledgement goes
//!   missing.  The owner receives the request **twice** and must apply it
//!   exactly once.
//! * **severs** — "cut the TCP connection right before the `Commit`
//!   targeting epoch 3 on worker 1".  The socket is shut down mid-round;
//!   the transport's reconnect machinery must bring the connection back and
//!   replay the outstanding requests idempotently.  Only [`TcpTransport`]
//!   honors severs (in-process channels have no connection to cut);
//!   in-process transports leave the schedule untouched.
//!
//! The cross-backend suites assert results are byte-identical with and
//! without faults, which fails loudly if the idempotence ever regresses.
//!
//! # Failure surface
//!
//! Every client operation returns a typed [`TransportError`] instead of
//! hanging, panicking inside the transport thread, or dying on a broken
//! channel.  Socket errors are classified (`PeerClosed` vs `Io`),
//! `set_nodelay` failures are propagated on the client and logged once on
//! the server (never silently discarded), and when an owner thread panics,
//! the backend joins it and attaches the panic payload to the
//! [`TransportError::PeerClosed`] it surfaces — see [`crate::RemoteBackend`].

use crate::proto::{
    decode_reply, decode_request, encode_reply, encode_request, read_frame, write_frame,
    ProtoError, Reply, Request, RequestKind,
};
use crate::remote::FrozenEpoch;
use parking_lot::Mutex;
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Typed failure of a transport operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The owner side of the connection is gone (and, for TCP, stayed gone
    /// through every reconnect attempt).  If the owner thread died
    /// panicking, `panic` carries its payload (attached by the backend,
    /// which owns the join handle).
    PeerClosed {
        /// Worker whose connection closed.
        worker: usize,
        /// Panic payload of the dead owner, when one could be harvested.
        panic: Option<String>,
    },
    /// An I/O error on the connection (after reconnect attempts, for TCP).
    Io {
        /// Worker whose connection failed.
        worker: usize,
        /// Stringified `std::io::Error`.
        message: String,
    },
    /// A frame arrived but did not decode.
    Proto {
        /// Worker whose frame was malformed.
        worker: usize,
        /// The decode failure.
        error: ProtoError,
    },
    /// A well-formed reply of the wrong variant for the pending request.
    Protocol {
        /// Worker that answered out of protocol.
        worker: usize,
        /// Description of the mismatch.
        message: String,
    },
    /// A reconnect reached the owner, but the owner had already reclaimed
    /// the session: the lease expired while the client was away.  The
    /// session's pending commits are gone, so the client must not continue.
    LeaseLost {
        /// Worker whose lease expired.
        worker: usize,
        /// The session that was reclaimed.
        session: u64,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::PeerClosed {
                worker,
                panic: Some(message),
            } => write!(f, "DDS owner {worker} panicked: {message}"),
            TransportError::PeerClosed {
                worker,
                panic: None,
            } => write!(f, "DDS owner {worker} closed the connection"),
            TransportError::Io { worker, message } => {
                write!(f, "I/O error talking to DDS owner {worker}: {message}")
            }
            TransportError::Proto { worker, error } => {
                write!(f, "malformed frame from DDS owner {worker}: {error}")
            }
            TransportError::Protocol { worker, message } => {
                write!(f, "protocol violation from DDS owner {worker}: {message}")
            }
            TransportError::LeaseLost { worker, session } => write!(
                f,
                "DDS owner {worker} reclaimed session {session:#x}: the lease expired before the client reconnected"
            ),
        }
    }
}

impl std::error::Error for TransportError {}

// ---------------------------------------------------------------------------
// Request-level fault injection
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct FaultsInner {
    /// Scheduled one-shot reply drops: (kind, epoch, worker).
    drops: Mutex<HashSet<(RequestKind, usize, usize)>>,
    /// Scheduled one-shot connection severs: (kind, epoch, worker).
    severs: Mutex<HashSet<(RequestKind, usize, usize)>>,
    /// Requests dropped (and retried) so far.
    dropped: AtomicU64,
    /// Connections severed (and re-established) so far.
    severed: AtomicU64,
}

/// A schedule of request-level faults, shared between a backend's transports.
///
/// Each scheduled entry fires once.  **Drops** deliver the matching request,
/// lose its *reply* in transit, and retransmit the identical request — the
/// retry a real RPC layer issues when an acknowledgement goes missing; the
/// owner sees the request twice and must treat the second copy idempotently
/// (commit deduplication by sequence number, advance replay of the
/// already-frozen epoch).  **Severs** cut the TCP connection immediately
/// before the matching request is transmitted — the mid-round socket loss a
/// real deployment must absorb; the transport reconnects with backoff,
/// replays the lease handshake and the outstanding requests, and the run
/// must stay byte-identical.  Only the write-side requests (`Commit`,
/// `Advance`) are addressable — they are the ones a real deployment must
/// retry; reads are served from immutable local epochs and never cross the
/// wire.
///
/// Cloning shares the schedule (transports of one backend consult one
/// ledger).
#[derive(Clone, Debug, Default)]
pub struct RequestFaults {
    inner: Arc<FaultsInner>,
}

impl RequestFaults {
    /// An empty schedule.
    pub fn none() -> Self {
        RequestFaults::default()
    }

    /// Schedule the `kind` request targeting `epoch` on `worker` to lose
    /// its reply in transit, forcing a retransmission of the request.
    pub fn schedule_drop(&self, kind: RequestKind, epoch: usize, worker: usize) {
        self.inner.drops.lock().insert((kind, epoch, worker));
    }

    /// Schedule the connection to `worker` to be severed right before the
    /// `kind` request targeting `epoch` is transmitted.  Only transports
    /// with a connection to cut ([`TcpTransport`]) consult sever entries.
    pub fn schedule_sever(&self, kind: RequestKind, epoch: usize, worker: usize) {
        self.inner.severs.lock().insert((kind, epoch, worker));
    }

    /// Consume a scheduled drop for these coordinates, if one exists,
    /// counting it as fired.
    pub fn should_drop(&self, kind: RequestKind, epoch: usize, worker: usize) -> bool {
        let fired = self.inner.drops.lock().remove(&(kind, epoch, worker));
        if fired {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Consume a scheduled sever for these coordinates, if one exists,
    /// counting it as fired.
    pub fn should_sever(&self, kind: RequestKind, epoch: usize, worker: usize) -> bool {
        let fired = self.inner.severs.lock().remove(&(kind, epoch, worker));
        if fired {
            self.inner.severed.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Faults fired so far (one lost reply + retransmission each).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Connections severed (and re-established) so far.
    pub fn severed(&self) -> u64 {
        self.inner.severed.load(Ordering::Relaxed)
    }

    /// `true` if no drops or severs remain scheduled.
    pub fn is_empty(&self) -> bool {
        self.inner.drops.lock().is_empty() && self.inner.severs.lock().is_empty()
    }
}

/// The fault-injection coordinates of a request, if it is addressable.
fn fault_coordinates(request: &Request) -> Option<(RequestKind, usize)> {
    match request {
        Request::Commit { epoch, .. } => Some((RequestKind::Commit, *epoch)),
        Request::Advance { epoch } => Some((RequestKind::Advance, *epoch)),
        _ => None,
    }
}

/// Best-effort extraction of a panic payload's message (panics carry
/// `String` or `&str` payloads in practice).
///
/// Shared by the backend's owner-thread harvesting and the runtime's
/// round-boundary `catch_unwind`, so the two failure paths can never
/// diverge in how they read a payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
}

// ---------------------------------------------------------------------------
// The transport traits
// ---------------------------------------------------------------------------

/// What a client receives for one request.
pub enum ClientReply {
    /// A decoded wire reply.
    Wire(Reply),
    /// The frozen epoch published as shared memory — the zero-copy fast
    /// path of in-process transports ([`MpscTransport`]).  Wire transports
    /// deliver [`Reply::Epoch`] instead.
    SharedEpoch(Arc<FrozenEpoch>),
}

/// What an owner hands its transport to answer one request.
pub enum OwnerReply {
    /// An ordinary wire reply.
    Wire(Reply),
    /// A freshly frozen epoch.  Shared-memory transports forward the `Arc`
    /// as-is ([`ClientReply::SharedEpoch`]); wire transports serialize it
    /// into a [`Reply::Epoch`] frame.
    Epoch(Arc<FrozenEpoch>),
}

/// Client half of one backend↔owner connection.
pub trait Transport: Send + Sized + 'static {
    /// Backend label reported by `DdsBackend::backend_name` (`"channel"`
    /// for [`MpscTransport`], `"remote"` for [`TcpTransport`]).
    const NAME: &'static str;

    /// The server half handed to the owner thread.
    type Server: ServerTransport;

    /// Establish one connection for `worker`, returning both halves.
    fn connect(worker: usize) -> (Self, Self::Server);

    /// Install the fault schedule this transport consults on every send.
    fn install_faults(&mut self, faults: RequestFaults);

    /// Transmit one request.  If the fault schedule matches, the scheduled
    /// fault is injected (reply lost + retransmission, or connection
    /// severed + reconnect) — the caller still receives exactly one reply.
    /// Does not wait for that reply.
    fn send(&mut self, request: Request) -> Result<(), TransportError>;

    /// Receive the reply to the oldest unanswered request.
    fn recv(&mut self) -> Result<ClientReply, TransportError>;
}

/// Server (owner) half of one backend↔owner connection.
pub trait ServerTransport: Send + 'static {
    /// Next request, or `None` when the client is gone for good (clean
    /// goodbye, channel hangup, or an expired lease) — the owner exits.
    fn recv_request(&mut self) -> Option<Request>;

    /// Answer the current request; `false` when the client is gone.
    /// Reconnecting transports report `true` on a lost reply — the client
    /// replays the request after reconnecting, so serving continues.
    fn send_reply(&mut self, reply: OwnerReply) -> bool;
}

// ---------------------------------------------------------------------------
// MpscTransport — in-process channels, zero-copy epoch publication
// ---------------------------------------------------------------------------

/// In-process transport over `std::sync::mpsc` channels.
///
/// Requests travel as typed values; `Advance` replies carry the frozen epoch
/// as a shared `Arc` (the zero-copy capability wire transports lack).
pub struct MpscTransport {
    worker: usize,
    requests: Sender<Request>,
    replies: Receiver<OwnerReply>,
    faults: RequestFaults,
}

/// Server half of an [`MpscTransport`].
pub struct MpscServer {
    requests: Receiver<Request>,
    replies: Sender<OwnerReply>,
}

impl MpscTransport {
    fn transmit(&mut self, request: Request) -> Result<(), TransportError> {
        self.requests
            .send(request)
            .map_err(|_| TransportError::PeerClosed {
                worker: self.worker,
                panic: None,
            })
    }
}

impl Transport for MpscTransport {
    const NAME: &'static str = "channel";
    type Server = MpscServer;

    fn connect(worker: usize) -> (Self, MpscServer) {
        let (request_tx, request_rx) = channel();
        let (reply_tx, reply_rx) = channel();
        (
            MpscTransport {
                worker,
                requests: request_tx,
                replies: reply_rx,
                faults: RequestFaults::none(),
            },
            MpscServer {
                requests: request_rx,
                replies: reply_tx,
            },
        )
    }

    fn install_faults(&mut self, faults: RequestFaults) {
        self.faults = faults;
    }

    fn send(&mut self, request: Request) -> Result<(), TransportError> {
        // Severs are not consulted: an in-process channel has no connection
        // to cut, so scheduled severs stay untouched (and unfired) here.
        if let Some((kind, epoch)) = fault_coordinates(&request) {
            if self.faults.should_drop(kind, epoch, self.worker) {
                // Fault: the request is delivered but its reply is lost in
                // transit.  Transmit the first copy, discard the reply the
                // backend will never "see", and fall through to the
                // retransmission below — whose reply is the one the caller
                // receives.  The owner must handle the duplicate
                // idempotently.
                self.transmit(request.clone())?;
                let _lost_reply = self.recv()?;
            }
        }
        self.transmit(request)
    }

    fn recv(&mut self) -> Result<ClientReply, TransportError> {
        match self.replies.recv() {
            Ok(OwnerReply::Wire(reply)) => Ok(ClientReply::Wire(reply)),
            Ok(OwnerReply::Epoch(epoch)) => Ok(ClientReply::SharedEpoch(epoch)),
            Err(_) => Err(TransportError::PeerClosed {
                worker: self.worker,
                panic: None,
            }),
        }
    }
}

impl ServerTransport for MpscServer {
    fn recv_request(&mut self) -> Option<Request> {
        self.requests.recv().ok()
    }

    fn send_reply(&mut self, reply: OwnerReply) -> bool {
        self.replies.send(reply).is_ok()
    }
}

// ---------------------------------------------------------------------------
// TcpTransport — sockets, length-prefixed proto frames, reconnect + lease
// ---------------------------------------------------------------------------

/// Source of fresh session ids: one per backend instance, shared by its
/// per-owner connections.  The process id keeps concurrent client
/// *processes* of one serving process apart; the counter keeps backends of
/// one process apart.
static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);

/// Allocate a session id no other backend of this process (and, with high
/// probability, no other client process) is using.
pub fn fresh_session_id() -> u64 {
    let counter = NEXT_SESSION.fetch_add(1, Ordering::Relaxed);
    ((std::process::id() as u64) << 32) ^ counter
}

/// Connection-lifecycle options of a [`TcpTransport`]: the lease it
/// requests and the reconnect/backoff policy it retries under.
#[derive(Clone, Debug)]
pub struct TcpOptions {
    /// Session id sent in the lease handshake.  All of one backend's
    /// connections share it; `worker` tells them apart.
    pub session: u64,
    /// Shard count of the client's routing topology (0 = unspecified; a
    /// paired in-process server ignores it, `ampc_dds::serve` uses it to
    /// derive the owner's shard group).
    pub num_shards: usize,
    /// Owner count of the client's routing topology (0 = unspecified).
    pub workers: usize,
    /// Lease duration requested from the owner.  The owner starts the
    /// countdown when the connection drops, not while it is idle; `0`
    /// requests a lease that never expires.
    pub ttl_ms: u64,
    /// Reconnect attempts before a send/receive failure is surfaced.
    pub reconnect_attempts: u32,
    /// Backoff before the second reconnect attempt (the first is
    /// immediate); doubles per attempt up to [`TcpOptions::max_backoff`].
    pub initial_backoff: Duration,
    /// Cap on the exponential backoff between reconnect attempts.
    pub max_backoff: Duration,
}

impl TcpOptions {
    /// Default options under a fresh session id: 30 s lease, 8 reconnect
    /// attempts backing off 1 ms → 2 ms → … capped at 100 ms.
    pub fn fresh() -> TcpOptions {
        TcpOptions {
            session: fresh_session_id(),
            num_shards: 0,
            workers: 0,
            ttl_ms: 30_000,
            reconnect_attempts: 8,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
        }
    }

    /// Builder-style: set the requested lease duration in milliseconds
    /// (`0` = never expires).
    pub fn with_ttl_ms(mut self, ttl_ms: u64) -> TcpOptions {
        self.ttl_ms = ttl_ms;
        self
    }

    /// Builder-style: set the routing topology announced in the lease.
    pub fn with_topology(mut self, num_shards: usize, workers: usize) -> TcpOptions {
        self.num_shards = num_shards;
        self.workers = workers;
        self
    }
}

/// Socket transport speaking length-prefixed [`crate::proto`] frames.
///
/// Every message round-trips through the byte codec, so running the
/// conformance suites over this transport is an end-to-end proof of the wire
/// format.  `Advance` replies carry the serialized
/// [`crate::proto::EpochFrame`]; the client rebuilds a local replica of the
/// frozen maps from it.
///
/// The transport owns the connection lifecycle: the lease handshake on
/// every (re)connect, capped-exponential-backoff reconnection on any socket
/// failure, and idempotent replay of the requests whose replies are still
/// outstanding — see the [module docs](self).
pub struct TcpTransport {
    worker: usize,
    endpoint: SocketAddr,
    options: TcpOptions,
    stream: TcpStream,
    /// Requests transmitted but not yet answered, oldest first — exactly
    /// what a reconnect must replay.
    pending: VecDeque<Request>,
    /// A lease handshake is in flight: the next frame read must be the
    /// grant, consumed before ordinary replies.
    await_grant: bool,
    /// Whether the pending grant must report `resumed` (reconnects) or
    /// fresh state (first connection).
    expect_resumed: bool,
    faults: RequestFaults,
}

impl TcpTransport {
    /// Establish a fresh connection pair through a private loopback
    /// listener: the in-process owner keeps the listener, so a severed
    /// client can reconnect to the same owner.
    pub fn connect_pair(
        worker: usize,
        options: TcpOptions,
    ) -> Result<(TcpTransport, TcpServer), TransportError> {
        let io_err = |message: String| TransportError::Io { worker, message };
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|err| io_err(format!("binding a loopback DDS owner socket: {err}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|err| io_err(format!("configuring the owner listener: {err}")))?;
        let addr = listener
            .local_addr()
            .map_err(|err| io_err(format!("reading the owner socket address: {err}")))?;
        let client = TcpTransport::connect_to(addr, worker, options)?;
        Ok((client, TcpServer::from_listener(listener, worker)))
    }

    /// Connect to an already-listening owner at `endpoint` — the entry
    /// point of a multi-process deployment (see `ampc_dds::serve`).
    ///
    /// The lease handshake frame is written immediately; its grant is
    /// verified on the first receive, so connecting cannot deadlock with an
    /// owner that has not entered its serve loop yet.
    pub fn connect_to(
        endpoint: impl ToSocketAddrs,
        worker: usize,
        options: TcpOptions,
    ) -> Result<TcpTransport, TransportError> {
        let io_err = |message: String| TransportError::Io { worker, message };
        let endpoint = endpoint
            .to_socket_addrs()
            .map_err(|err| io_err(format!("resolving the DDS owner address: {err}")))?
            .next()
            .ok_or_else(|| io_err("the DDS owner address resolved to nothing".to_string()))?;
        let stream = TcpStream::connect(endpoint)
            .map_err(|err| io_err(format!("connecting to the DDS owner: {err}")))?;
        // The protocol is small framed RPCs; Nagle only adds latency.  A
        // failure here would silently skew every latency measurement, so it
        // is propagated, not discarded.
        stream
            .set_nodelay(true)
            .map_err(|err| io_err(format!("setting TCP_NODELAY: {err}")))?;
        let mut transport = TcpTransport {
            worker,
            endpoint,
            options,
            stream,
            pending: VecDeque::new(),
            await_grant: true,
            expect_resumed: false,
            faults: RequestFaults::none(),
        };
        let lease = transport.lease_request();
        write_frame(&mut transport.stream, &encode_request(&lease))
            .map_err(|err| transport.classify(&err))?;
        Ok(transport)
    }

    /// The lease handshake frame for this connection.
    fn lease_request(&self) -> Request {
        Request::Lease {
            session: self.options.session,
            worker: self.worker as u64,
            num_shards: self.options.num_shards as u64,
            workers: self.options.workers as u64,
            ttl_ms: self.options.ttl_ms,
        }
    }

    /// Classify a socket error: vanished peers become [`TransportError::PeerClosed`],
    /// everything else keeps its diagnostic as [`TransportError::Io`].
    fn classify(&self, err: &std::io::Error) -> TransportError {
        match err.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::NotConnected
            | std::io::ErrorKind::BrokenPipe => TransportError::PeerClosed {
                worker: self.worker,
                panic: None,
            },
            _ => TransportError::Io {
                worker: self.worker,
                message: err.to_string(),
            },
        }
    }

    /// One reconnection attempt: dial, handshake the lease, replay every
    /// outstanding request in order.
    fn try_reestablish(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.endpoint)?;
        stream.set_nodelay(true)?;
        self.stream = stream;
        self.await_grant = true;
        self.expect_resumed = true;
        let lease = self.lease_request();
        write_frame(&mut self.stream, &encode_request(&lease))?;
        for request in &self.pending {
            write_frame(&mut self.stream, &encode_request(request))?;
        }
        Ok(())
    }

    /// Bring the connection back after `cause`, retrying with capped
    /// exponential backoff.  Returns `cause` if the owner stays
    /// unreachable through every attempt.
    fn recover(&mut self, cause: TransportError) -> Result<(), TransportError> {
        let mut backoff = self.options.initial_backoff;
        for attempt in 0..self.options.reconnect_attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(self.options.max_backoff);
            }
            if self.try_reestablish().is_ok() {
                return Ok(());
            }
        }
        Err(cause)
    }

    /// Transmit one request, recording it as outstanding; any write failure
    /// triggers the reconnect-and-replay path (which retransmits this
    /// request too).
    fn transmit(&mut self, request: Request) -> Result<(), TransportError> {
        let payload = encode_request(&request);
        self.pending.push_back(request);
        if let Err(err) = write_frame(&mut self.stream, &payload) {
            let cause = self.classify(&err);
            self.recover(cause)?;
        }
        Ok(())
    }

    /// Read the next ordinary reply, consuming (and verifying) any pending
    /// lease grant first and reconnecting through socket failures.
    fn recv_reply(&mut self) -> Result<Reply, TransportError> {
        // Loop guard, not retry policy: [`TcpOptions::reconnect_attempts`]
        // bounds the dials within one recovery; this bounds how many
        // *successful* recoveries one receive may burn through, so a
        // flapping owner (accepts the reconnect, then dies again before
        // answering) cannot spin this loop forever.  An unreachable owner
        // never gets here — `recover` surfaces its error on the first cycle.
        const MAX_RECOVERY_CYCLES: u32 = 4;
        let mut recoveries = 0u32;
        loop {
            let payload = match read_frame(&mut self.stream) {
                Ok(payload) => payload,
                Err(err) => {
                    let cause = self.classify(&err);
                    recoveries += 1;
                    if recoveries > MAX_RECOVERY_CYCLES {
                        return Err(cause);
                    }
                    self.recover(cause)?;
                    continue;
                }
            };
            let reply = decode_reply(&payload).map_err(|error| TransportError::Proto {
                worker: self.worker,
                error,
            })?;
            if self.await_grant {
                let Reply::LeaseGranted {
                    session, resumed, ..
                } = reply
                else {
                    return Err(TransportError::Protocol {
                        worker: self.worker,
                        message: format!("expected a lease grant, got {reply:?}"),
                    });
                };
                if session != self.options.session {
                    return Err(TransportError::Protocol {
                        worker: self.worker,
                        message: format!(
                            "lease grant for session {session:#x}, expected {:#x}",
                            self.options.session
                        ),
                    });
                }
                if self.expect_resumed && !resumed {
                    return Err(TransportError::LeaseLost {
                        worker: self.worker,
                        session,
                    });
                }
                if !self.expect_resumed && resumed {
                    return Err(TransportError::Protocol {
                        worker: self.worker,
                        message: format!("session {session:#x} collided with existing state"),
                    });
                }
                self.await_grant = false;
                continue;
            }
            return Ok(reply);
        }
    }

    /// The underlying socket (tests assert TCP_NODELAY is actually set, so
    /// latency numbers are never Nagle-dependent).
    #[cfg(test)]
    pub(crate) fn socket(&self) -> &TcpStream {
        &self.stream
    }
}

impl Transport for TcpTransport {
    const NAME: &'static str = "remote";
    type Server = TcpServer;

    fn connect(worker: usize) -> (Self, TcpServer) {
        // Loopback rendezvous: the connect lands in the listener's backlog,
        // so binding, connecting and accepting from one thread cannot
        // deadlock.  Setup failures have no transport thread to surface
        // through yet, so they are a loud construction panic.
        TcpTransport::connect_pair(worker, TcpOptions::fresh())
            .unwrap_or_else(|err| panic!("DDS transport setup failed: {err}"))
    }

    fn install_faults(&mut self, faults: RequestFaults) {
        self.faults = faults;
    }

    fn send(&mut self, request: Request) -> Result<(), TransportError> {
        if let Some((kind, epoch)) = fault_coordinates(&request) {
            if self.faults.should_sever(kind, epoch, self.worker) {
                // Fault: the connection dies mid-round, right before this
                // request goes out.  The write below fails, and the
                // transport must reconnect, replay the lease handshake and
                // the outstanding requests, and carry on — byte-identical.
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
            }
            if self.faults.should_drop(kind, epoch, self.worker) {
                // Fault: the frame is delivered but its reply is lost in
                // transit.  Write the first copy, discard the reply frame
                // the backend will never "see", then retransmit the
                // identical frame below — the owner must deduplicate.
                self.transmit(request.clone())?;
                let _lost_reply = self.recv()?;
            }
        }
        self.transmit(request)
    }

    fn recv(&mut self) -> Result<ClientReply, TransportError> {
        let reply = self.recv_reply()?;
        self.pending.pop_front();
        Ok(ClientReply::Wire(reply))
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Clean shutdown: tell the owner not to hold the lease open for a
        // reconnect that will never come.  Best-effort — the connection may
        // already be gone, and the lease expiry covers that case.
        let _ = write_frame(&mut self.stream, &encode_request(&Request::Goodbye));
    }
}

/// Where a [`TcpServer`] gets (re)connections from.
pub(crate) enum StreamSource {
    /// A private loopback listener (paired in-process mode): the server
    /// accepts and handshakes incoming connections itself.
    Listener(TcpListener),
    /// A shared acceptor (`ampc_dds::serve`): connections arrive with the
    /// lease already read, routed by `(session, worker)`.
    Mailbox(Receiver<ServeHandoff>),
}

/// One routed connection handed to a [`TcpServer`] by a shared acceptor.
pub(crate) struct ServeHandoff {
    /// The accepted, lease-validated stream.
    pub(crate) stream: TcpStream,
    /// Session the lease named (echoed in the grant).
    pub(crate) session: u64,
    /// Lease duration the client asked for, milliseconds (0 = infinite).
    pub(crate) ttl_ms: u64,
}

/// The decoded contents of a connection's opening [`Request::Lease`] frame.
pub(crate) struct LeaseFrame {
    pub(crate) session: u64,
    pub(crate) worker: u64,
    pub(crate) num_shards: u64,
    pub(crate) workers: u64,
    pub(crate) ttl_ms: u64,
}

/// Read and decode the opening lease frame of a fresh connection, under
/// [`HANDSHAKE_TIMEOUT`] so a wedged or hostile pre-lease client cannot
/// hold its acceptor hostage.  `None` means "drop the connection": garbage,
/// a timeout, or a first frame that is not a lease.  Shared by the paired
/// in-process [`TcpServer`] and the `ampc_dds::serve` acceptor — one
/// handshake, one implementation.
pub(crate) fn read_lease_frame(stream: &TcpStream) -> Option<LeaseFrame> {
    let mut reader = stream;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT)).ok()?;
    let payload = read_frame(&mut reader).ok()?;
    stream.set_read_timeout(None).ok()?;
    match decode_request(&payload) {
        Ok(Request::Lease {
            session,
            worker,
            num_shards,
            workers,
            ttl_ms,
        }) => Some(LeaseFrame {
            session,
            worker,
            num_shards,
            workers,
            ttl_ms,
        }),
        _ => None,
    }
}

/// Warn exactly once, process-wide, when a server-side socket cannot set
/// TCP_NODELAY.  The connection still works; only latency is at stake, so
/// the server keeps serving — but never silently.
fn warn_nodelay_once(err: &std::io::Error) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!("ampc-dds: failed to set TCP_NODELAY on an owner socket ({err}); latency numbers may be Nagle-dependent");
    });
}

/// Server half of a [`TcpTransport`]: the owner side of the connection
/// lifecycle.
///
/// The server validates the lease handshake of every incoming connection,
/// answers renewals, survives disconnects by waiting (up to the lease
/// deadline) for a reconnect, and treats [`Request::Goodbye`] as the
/// client's clean release of the session.  `recv_request` returns `None` —
/// ending the owner's serve loop — only on goodbye, lease expiry, or a
/// vanished stream source.
pub struct TcpServer {
    source: StreamSource,
    worker: usize,
    stream: Option<TcpStream>,
    /// Granted lease duration; zero means the lease never expires.
    ttl: Duration,
    /// When the connection dropped (the expiry countdown's epoch); `None`
    /// while connected or before the first connection.
    disconnected_at: Option<Instant>,
    /// Whether this session served a connection before — what the grant
    /// reports as `resumed`.
    served_before: bool,
    /// The client said goodbye (or the lease expired): serving is over.
    finished: bool,
}

/// How long an accepting server waits for the lease handshake frame of a
/// brand-new connection before dropping it.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);

/// Poll interval of the nonblocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

impl TcpServer {
    /// A server accepting (re)connections from its own loopback listener.
    pub(crate) fn from_listener(listener: TcpListener, worker: usize) -> TcpServer {
        TcpServer {
            source: StreamSource::Listener(listener),
            worker,
            stream: None,
            ttl: Duration::ZERO,
            disconnected_at: None,
            served_before: false,
            finished: false,
        }
    }

    /// A server fed routed connections by a shared acceptor
    /// (`ampc_dds::serve`).
    pub(crate) fn from_mailbox(mailbox: Receiver<ServeHandoff>, worker: usize) -> TcpServer {
        TcpServer {
            source: StreamSource::Mailbox(mailbox),
            worker,
            stream: None,
            ttl: Duration::ZERO,
            disconnected_at: None,
            served_before: false,
            finished: false,
        }
    }

    /// The expiry deadline of the current disconnect, if the lease expires
    /// at all.
    fn deadline(&self) -> Option<Instant> {
        match (self.disconnected_at, self.ttl) {
            (Some(at), ttl) if ttl > Duration::ZERO => Some(at + ttl),
            _ => None,
        }
    }

    /// Adopt a freshly (re)connected stream: grant the lease and start
    /// serving it.
    fn adopt(&mut self, stream: TcpStream, session: u64, ttl_ms: u64) {
        if let Err(err) = stream.set_nodelay(true) {
            warn_nodelay_once(&err);
        }
        self.ttl = Duration::from_millis(ttl_ms);
        self.stream = Some(stream);
        self.disconnected_at = None;
        let resumed = self.served_before;
        self.served_before = true;
        self.grant(session, resumed);
    }

    /// Write the lease grant; a failed write is just a disconnect (the
    /// client will reconnect and re-handshake).
    fn grant(&mut self, session: u64, resumed: bool) {
        let reply = Reply::LeaseGranted {
            session,
            ttl_ms: self.ttl.as_millis() as u64,
            resumed,
        };
        let payload = encode_reply(&reply);
        let Some(stream) = self.stream.as_mut() else {
            return;
        };
        if write_frame(stream, &payload).is_err() {
            self.mark_disconnected();
        }
    }

    fn mark_disconnected(&mut self) {
        self.stream = None;
        if self.disconnected_at.is_none() {
            self.disconnected_at = Some(Instant::now());
        }
    }

    /// Read and validate the lease handshake of a brand-new connection.
    /// Returns `None` (dropping the connection) on garbage, a timeout, or a
    /// lease addressed to a different worker.
    fn read_handshake(&self, stream: &TcpStream) -> Option<(u64, u64)> {
        let lease = read_lease_frame(stream)?;
        (lease.worker as usize == self.worker).then_some((lease.session, lease.ttl_ms))
    }

    /// Wait for a (re)connection until the lease deadline.  `false` ends
    /// the serve loop: the lease expired, or the stream source is gone.
    fn await_stream(&mut self) -> bool {
        let deadline = self.deadline();
        match &self.source {
            StreamSource::Listener(listener) => loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // Accepted sockets must block; the listener itself
                        // stays nonblocking for the deadline poll.
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        let Some((session, ttl_ms)) = self.read_handshake(&stream) else {
                            continue; // not our client; drop and keep waiting
                        };
                        self.adopt(stream, session, ttl_ms);
                        return true;
                    }
                    Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                        if deadline.is_some_and(|deadline| Instant::now() >= deadline) {
                            return false; // lease expired: reclaim
                        }
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => return false, // listener broken: give up
                }
            },
            StreamSource::Mailbox(mailbox) => {
                let handoff = match deadline {
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            return false;
                        }
                        match mailbox.recv_timeout(deadline - now) {
                            Ok(handoff) => handoff,
                            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                                return false
                            }
                        }
                    }
                    None => match mailbox.recv() {
                        Ok(handoff) => handoff,
                        Err(_) => return false,
                    },
                };
                self.adopt(handoff.stream, handoff.session, handoff.ttl_ms);
                true
            }
        }
    }
}

impl ServerTransport for TcpServer {
    fn recv_request(&mut self) -> Option<Request> {
        loop {
            if self.finished {
                return None;
            }
            if self.stream.is_none() && !self.await_stream() {
                self.finished = true;
                return None;
            }
            let Some(stream) = self.stream.as_mut() else {
                continue; // a failed grant write disconnected us again
            };
            let payload = match read_frame(stream) {
                Ok(payload) => payload,
                Err(_) => {
                    // EOF or reset without a goodbye: hold the session and
                    // wait (up to the lease deadline) for a reconnect.
                    self.mark_disconnected();
                    continue;
                }
            };
            match decode_request(&payload) {
                // Mid-stream renewal: refresh the lease, grant, keep going.
                // `resumed` is definitionally true here — a renewal arrives
                // on a connection that already holds its grant, so the
                // session's state is intact (clients only validate the flag
                // during the handshake, never on a renewal).
                Ok(Request::Lease {
                    session, ttl_ms, ..
                }) => {
                    self.ttl = Duration::from_millis(ttl_ms);
                    self.grant(session, true);
                }
                // Clean shutdown: release the session immediately.
                Ok(Request::Goodbye) => {
                    self.finished = true;
                    return None;
                }
                Ok(request) => return Some(request),
                // A frame that arrives but does not decode is a protocol
                // bug and must keep its diagnostic — the panic is harvested
                // into the typed `TransportError::PeerClosed` the backend
                // surfaces.
                Err(error) => panic!("malformed request frame from the backend: {error}"),
            }
        }
    }

    fn send_reply(&mut self, reply: OwnerReply) -> bool {
        let reply = match reply {
            OwnerReply::Wire(reply) => reply,
            // The wire has no shared memory: serialize the frozen epoch.
            OwnerReply::Epoch(epoch) => Reply::Epoch(epoch.to_frame()),
        };
        let payload = encode_reply(&reply);
        let Some(stream) = self.stream.as_mut() else {
            // Already disconnected: the reply is lost, but the client will
            // replay its request after reconnecting — keep serving.
            return true;
        };
        if write_frame(stream, &payload).is_err() {
            // A lost reply is a disconnect, not the end of the session: the
            // reconnect replay re-asks and the owner re-answers
            // idempotently.
            self.mark_disconnected();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{Key, KeyTag, Value};

    fn echo_server<S: ServerTransport>(mut server: S) -> std::thread::JoinHandle<usize> {
        std::thread::spawn(move || {
            let mut served = 0;
            while let Some(request) = server.recv_request() {
                let reply = match request {
                    Request::Commit { epoch, batches, .. } => Reply::Committed {
                        epoch,
                        accepted: batches.iter().map(|(_, pairs)| pairs.len() as u64).sum(),
                    },
                    Request::TotalWrites => Reply::TotalWrites(served),
                    _ => Reply::TotalWrites(0),
                };
                if !server.send_reply(OwnerReply::Wire(reply)) {
                    break;
                }
                served += 1;
            }
            served as usize
        })
    }

    fn commit_request(epoch: usize) -> Request {
        Request::Commit {
            epoch,
            seq: epoch as u64,
            batches: vec![(0, vec![(Key::of(KeyTag::Scalar, 1), Value::scalar(2))])],
        }
    }

    fn exercise_transport<T: Transport>() {
        let (mut client, server) = T::connect(0);
        let handle = echo_server(server);

        // Pipelined sends, FIFO replies.
        client.send(commit_request(0)).unwrap();
        client.send(Request::TotalWrites).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::Committed { epoch, accepted }) => {
                assert_eq!((epoch, accepted), (0, 1));
            }
            _ => panic!("commit must be acknowledged first"),
        }
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::TotalWrites(n)) => assert_eq!(n, 1),
            _ => panic!("total-writes reply expected"),
        }

        drop(client);
        assert_eq!(handle.join().unwrap(), 2);
    }

    #[test]
    fn mpsc_transport_round_trips() {
        exercise_transport::<MpscTransport>();
    }

    #[test]
    fn tcp_transport_round_trips() {
        exercise_transport::<TcpTransport>();
    }

    fn exercise_faults<T: Transport>() {
        let (mut client, server) = T::connect(3);
        let handle = echo_server(server);
        let faults = RequestFaults::none();
        faults.schedule_drop(RequestKind::Commit, 5, 3);
        faults.schedule_drop(RequestKind::Commit, 5, 4); // wrong worker: never fires
        client.install_faults(faults.clone());

        // The fault delivers the request, loses its reply, and retransmits:
        // the caller still sees exactly one reply per send.
        client.send(commit_request(5)).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::Committed { epoch, .. }) => assert_eq!(epoch, 5),
            _ => panic!("the retransmission's reply must reach the caller"),
        }
        assert_eq!(faults.dropped(), 1);

        // The fault fired once; a second identical request is untouched.
        client.send(commit_request(5)).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::Committed { .. }) => {}
            _ => panic!("second commit must be delivered"),
        }
        assert_eq!(faults.dropped(), 1);
        assert!(!faults.is_empty(), "the wrong-worker drop stays scheduled");

        drop(client);
        // The server really received the duplicate — 2 copies of the
        // faulted commit plus the clean one.  Deduplicating the copy is
        // the owner's job (`remote::Worker`), pinned by its own tests.
        assert_eq!(handle.join().unwrap(), 3, "duplicate must hit the wire");
    }

    #[test]
    fn mpsc_transport_honors_request_faults() {
        exercise_faults::<MpscTransport>();
    }

    #[test]
    fn tcp_transport_honors_request_faults() {
        exercise_faults::<TcpTransport>();
    }

    #[test]
    fn severed_tcp_connections_reconnect_and_replay() {
        let (mut client, server) = TcpTransport::connect(2);
        let handle = echo_server(server);
        let faults = RequestFaults::none();
        faults.schedule_sever(RequestKind::Commit, 1, 2);
        faults.schedule_sever(RequestKind::Advance, 2, 2);
        client.install_faults(faults.clone());

        // Warm the connection so the sever cuts an established stream.
        client.send(commit_request(0)).unwrap();
        let _ = client.recv().unwrap();

        // The sever cuts the socket right before the commit: the transport
        // must reconnect, re-handshake and replay, and the caller still
        // sees exactly one reply.
        client.send(commit_request(1)).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::Committed { epoch, .. }) => assert_eq!(epoch, 1),
            other => panic!(
                "replayed commit must be acknowledged, got {:?}",
                match other {
                    ClientReply::Wire(reply) => format!("{reply:?}"),
                    ClientReply::SharedEpoch(_) => "shared epoch".to_string(),
                }
            ),
        }
        assert_eq!(faults.severed(), 1);

        // A second sever, addressed at an Advance, exercises the replay of
        // a different request kind over a fresh reconnect.
        client.send(Request::Advance { epoch: 2 }).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::TotalWrites(_)) => {} // echo server answer
            _ => panic!("the replayed advance must be answered"),
        }
        assert_eq!(faults.severed(), 2);
        assert!(faults.is_empty());

        drop(client);
        // The echo server saw each request exactly once: severs cut the
        // connection *before* the frame goes out, so nothing is duplicated.
        assert_eq!(handle.join().unwrap(), 3);
    }

    #[test]
    fn mpsc_transports_ignore_scheduled_severs() {
        let (mut client, server) = MpscTransport::connect(0);
        let handle = echo_server(server);
        let faults = RequestFaults::none();
        faults.schedule_sever(RequestKind::Commit, 0, 0);
        client.install_faults(faults.clone());
        client.send(commit_request(0)).unwrap();
        let _ = client.recv().unwrap();
        // No connection to cut: the sever neither fires nor is consumed.
        assert_eq!(faults.severed(), 0);
        assert!(!faults.is_empty());
        drop(client);
        assert_eq!(handle.join().unwrap(), 1);
    }

    #[test]
    fn tcp_nodelay_is_set_on_both_halves() {
        let (client, mut server) = TcpTransport::connect(0);
        // Nagle would let latency depend on frame coalescing; the latency
        // series in BENCH_commit.json assume it is off.
        assert!(
            client.socket().nodelay().unwrap_or(false),
            "client socket must have TCP_NODELAY set"
        );
        // Drive the handshake from a second thread so the server can adopt
        // the connection, then inspect its socket.
        let driver = std::thread::spawn(move || {
            let request = server.recv_request();
            (server, request)
        });
        let mut client = client;
        client.send(Request::TotalWrites).unwrap();
        let (server, request) = driver.join().unwrap();
        assert_eq!(request, Some(Request::TotalWrites));
        assert!(
            server
                .stream
                .as_ref()
                .is_some_and(|stream| stream.nodelay().unwrap_or(false)),
            "server socket must have TCP_NODELAY set"
        );
    }

    #[test]
    fn expired_leases_end_the_serve_loop() {
        let options = TcpOptions::fresh().with_ttl_ms(50);
        let (client, mut server) = TcpTransport::connect_pair(7, options).unwrap();
        // Serve one round-trip, then cut the connection without a goodbye:
        // the server must wait out the 50 ms lease and then give up — not
        // hang.
        let driver = std::thread::spawn(move || {
            let first = server.recv_request();
            if first.is_some() {
                server.send_reply(OwnerReply::Wire(Reply::TotalWrites(0)));
            }
            let second = server.recv_request();
            (first, second)
        });
        let mut client = client;
        client.send(Request::TotalWrites).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::TotalWrites(0)) => {}
            _ => panic!("round-trip before the sever must succeed"),
        }
        // Abrupt death: no goodbye frame.
        client.stream.shutdown(std::net::Shutdown::Both).unwrap();
        std::mem::forget(client);
        let (first, second) = driver.join().unwrap();
        assert_eq!(first, Some(Request::TotalWrites));
        assert_eq!(second, None, "the lease must expire and end serving");
    }

    #[test]
    fn goodbye_releases_the_session_immediately() {
        let (client, mut server) = TcpTransport::connect(5);
        let started = Instant::now();
        let driver = std::thread::spawn(move || server.recv_request());
        drop(client); // sends the goodbye frame
        assert_eq!(driver.join().unwrap(), None);
        // No lease wait: the goodbye ends serving at once (well under the
        // 30 s default ttl).
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn dead_peer_is_a_typed_error() {
        let (mut client, server) = MpscTransport::connect(7);
        drop(server);
        let err = client.send(Request::TotalWrites).unwrap_err();
        assert_eq!(
            err,
            TransportError::PeerClosed {
                worker: 7,
                panic: None
            }
        );

        // For TCP the listener dies with the server half, so reconnect
        // attempts are refused and the original failure surfaces — by the
        // reply read at the latest (the OS may buffer the first write).
        let (mut client, server) = TcpTransport::connect(7);
        drop(server);
        let result = client
            .send(Request::TotalWrites)
            .and_then(|()| client.recv().map(|_| ()));
        assert_eq!(
            result.unwrap_err(),
            TransportError::PeerClosed {
                worker: 7,
                panic: None
            }
        );
    }
}

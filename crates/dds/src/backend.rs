//! Pluggable DDS backends: the `SnapshotView` / `DdsBackend` trait pair.
//!
//! The AMPC model is defined against an *abstract* distributed data store:
//! machines write constant-size pairs into `D_i` and read adaptively from
//! `D_{i-1}`.  Nothing in the model says how the store is realised — the
//! paper's deployment target is an RDMA/Bigtable-style distributed hash
//! table, while this workspace started with a single in-process sharded
//! implementation.  This module makes the store surface explicit so the
//! runtime (and every algorithm above it) is provably backend-independent:
//!
//! * [`SnapshotView`] — the *read* surface of a frozen epoch: exactly the
//!   operations the model grants a machine in round `i` against `D_{i-1}`
//!   (point lookups, indexed multi-value lookups, multiplicities, batched
//!   lookups), plus the read accounting the contention analysis observes.
//! * [`DdsBackend`] — the *lifecycle* surface the runtime drives: commit the
//!   ordered write batches of a round, advance the epoch, hand out the new
//!   epoch's view.
//!
//! Three implementations ship in-tree:
//!
//! * [`LocalBackend`] — the compact sharded store ([`crate::ShardedStore`] /
//!   [`crate::Snapshot`] behind a [`crate::DdsChain`]), shared-memory and
//!   lock-free on the read path.  This is the default and the fastest.
//! * [`crate::ChannelBackend`] — the message-passing
//!   [`crate::RemoteBackend`] over in-process channels
//!   ([`crate::MpscTransport`]): shard groups are owned by dedicated worker
//!   threads; commits and epoch advances cross the transport as
//!   [`crate::proto`] messages, while each frozen epoch is `Arc`-published
//!   at advance time so reads resolve lock-free against the shared
//!   immutable maps with zero channel traffic.
//! * [`crate::TcpBackend`] — the same [`crate::RemoteBackend`] over
//!   localhost sockets ([`crate::TcpTransport`]): every request and reply
//!   round-trips through the byte codec as length-prefixed frames, and
//!   frozen epochs are fetched as [`crate::proto::EpochFrame`]s and
//!   rebuilt into local replicas — the deployable shape of the store.
//!
//! Backend selection is a *configuration* concern: the runtime is generic
//! over `B: DdsBackend` and `ampc_runtime::AmpcConfig` picks the
//! instantiation, so algorithm code never mentions a concrete backend.
//! The conformance suite (`tests/backend_conformance.rs` at the workspace
//! root) holds every backend to observational equivalence against
//! [`crate::legacy::LegacyStore`], the executable specification.

use crate::epoch::DdsChain;
use crate::key::{Key, Value};
use crate::snapshot::Snapshot;
use crate::stats::{ShardLoad, StoreStats};
use crate::transport::RequestFaults;

/// Read-only view of a completed epoch (`D_{i-1}` as seen from round `i`).
///
/// The operations mirror the model exactly: every lookup is a query against
/// one shard ("DDS machine"), batched lookups cost one query per key, and
/// the per-shard read counters feed the Lemma 2.1 contention accounting.
/// Cloning a view must be cheap (handles, not data) — the runtime clones it
/// once per virtual machine per round.
pub trait SnapshotView: Clone + Send + Sync + 'static {
    /// Number of shards ("DDS machines") behind this view.
    fn num_shards(&self) -> usize;

    /// First value stored under `key`, if any.  Counts as one query.
    fn get(&self, key: &Key) -> Option<Value>;

    /// The `index`-th value stored under `key` (zero-based).  Counts as one
    /// query.
    fn get_indexed(&self, key: &Key, index: usize) -> Option<Value>;

    /// All values stored under `key` (empty if absent).  Counts as
    /// `multiplicity(key).max(1)` queries.
    fn get_all(&self, key: &Key) -> Vec<Value>;

    /// Number of values stored under `key`.  Counts as one query.
    fn multiplicity(&self, key: &Key) -> usize;

    /// Number of distinct keys in the view (not a model operation; driver
    /// and test bookkeeping only, not counted as a query).
    fn len(&self) -> usize;

    /// `true` if the view holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up `keys[i]` into `out[i]` for every `i`, in one batched flight.
    /// Counts as `keys.len()` queries — identical budget semantics to
    /// calling [`SnapshotView::get`] once per key.
    ///
    /// # Panics
    /// If `out` is shorter than `keys`.
    fn get_many_slice(&self, keys: &[Key], out: &mut [Option<Value>]);

    /// [`SnapshotView::get_many_slice`] into a reusable `Vec` (cleared and
    /// resized first).  Counts as `keys.len()` queries.
    fn get_many(&self, keys: &[Key], out: &mut Vec<Option<Value>>) {
        out.clear();
        out.resize(keys.len(), None);
        self.get_many_slice(keys, out);
    }

    /// Total queries served by this view so far.
    fn total_reads(&self) -> u64;

    /// Per-shard loads (keys held, historical writes, reads served so far).
    fn shard_loads(&self) -> Vec<ShardLoad>;

    /// Aggregate statistics over all shards.
    fn stats(&self) -> StoreStats {
        StoreStats::from_loads(self.shard_loads())
    }

    /// Every `(key, values)` pair held by the view.
    ///
    /// *Not* an AMPC-model operation (machines can only do point lookups);
    /// it exists for drivers and tests, is not counted as queries, and comes
    /// back in no particular order.
    fn entries(&self) -> Vec<(Key, Vec<Value>)>;
}

/// The lifecycle surface of a DDS implementation, as driven by the runtime.
///
/// A backend owns the chain of epoch stores `D_0, D_1, …`: the runtime
/// commits each round's ordered write batches, advances the epoch, and hands
/// the returned [`SnapshotView`] to the next round's machines.  Per-key
/// multi-value order is the concatenation order of the committed batches
/// (for the runtime: machine id, then write order) — every backend must
/// preserve it, which is what the cross-backend determinism tests pin down.
pub trait DdsBackend: Send + 'static {
    /// The read view this backend serves for completed epochs.
    type View: SnapshotView;

    /// Create a backend with `num_shards` shards.  `threads` caps whatever
    /// internal parallelism the backend uses (commit workers for
    /// [`LocalBackend`], owner threads for [`crate::ChannelBackend`]).
    fn with_shards(num_shards: usize, threads: usize) -> Self;

    /// Number of shards ("DDS machines").
    fn num_shards(&self) -> usize;

    /// A view of the state before any epoch completed (`D_{-1}`): empty,
    /// every lookup misses.
    fn empty_view(&self) -> Self::View;

    /// Commit ordered write batches into the current epoch's store.
    /// `threads` caps the commit parallelism; the observable result must be
    /// independent of it.
    fn commit_round(&mut self, batches: Vec<Vec<(Key, Value)>>, threads: usize);

    /// Freeze the current epoch and open the next one, returning the view of
    /// the epoch that just completed.
    fn advance(&mut self, threads: usize) -> Self::View;

    /// Number of completed epochs.
    fn completed_epochs(&self) -> usize;

    /// Total writes accepted across all epochs.
    ///
    /// Takes `&mut self`: message-passing backends ask their owners over
    /// the transport, which is an exclusive-access operation.
    fn total_writes(&mut self) -> u64;

    /// Short human-readable backend name (for logs and test labels).
    fn backend_name(&self) -> &'static str;

    /// Install a request-level fault schedule (scheduled drop-then-retry of
    /// write-side protocol requests; see
    /// [`crate::transport::RequestFaults`]).
    ///
    /// Backends without a transport have nothing to drop and ignore the
    /// schedule — the default does exactly that.
    fn install_request_faults(&mut self, faults: RequestFaults) {
        let _ = faults;
    }

    /// Requests dropped (and retried) by fault injection so far.
    fn dropped_requests(&self) -> u64 {
        0
    }

    /// Connections severed (and re-established via reconnect) by fault
    /// injection so far.  Only backends with a real connection to cut
    /// ([`crate::TcpBackend`]) ever report non-zero.
    fn severed_connections(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------------
// Snapshot as a SnapshotView
// ---------------------------------------------------------------------------

impl SnapshotView for Snapshot {
    fn num_shards(&self) -> usize {
        Snapshot::num_shards(self)
    }

    fn get(&self, key: &Key) -> Option<Value> {
        Snapshot::get(self, key)
    }

    fn get_indexed(&self, key: &Key, index: usize) -> Option<Value> {
        Snapshot::get_indexed(self, key, index)
    }

    fn get_all(&self, key: &Key) -> Vec<Value> {
        Snapshot::get_all(self, key)
    }

    fn multiplicity(&self, key: &Key) -> usize {
        Snapshot::multiplicity(self, key)
    }

    fn len(&self) -> usize {
        Snapshot::len(self)
    }

    fn is_empty(&self) -> bool {
        Snapshot::is_empty(self)
    }

    fn get_many_slice(&self, keys: &[Key], out: &mut [Option<Value>]) {
        Snapshot::get_many_slice(self, keys, out)
    }

    fn get_many(&self, keys: &[Key], out: &mut Vec<Option<Value>>) {
        Snapshot::get_many(self, keys, out)
    }

    fn total_reads(&self) -> u64 {
        Snapshot::total_reads(self)
    }

    fn shard_loads(&self) -> Vec<ShardLoad> {
        Snapshot::shard_loads(self)
    }

    fn stats(&self) -> StoreStats {
        Snapshot::stats(self)
    }

    fn entries(&self) -> Vec<(Key, Vec<Value>)> {
        self.iter()
            .map(|(key, values)| (*key, values.to_vec()))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// LocalBackend
// ---------------------------------------------------------------------------

/// The in-process sharded store as a [`DdsBackend`]: a [`DdsChain`] of
/// [`crate::ShardedStore`]s frozen into compact [`Snapshot`]s.
///
/// This is the default backend: writes take per-shard locks (shard-parallel
/// on commit), reads are lock-free hash probes on the frozen layout.
pub struct LocalBackend {
    chain: DdsChain,
}

impl LocalBackend {
    /// The underlying epoch chain (driver-side statistics).
    pub fn chain(&self) -> &DdsChain {
        &self.chain
    }
}

impl DdsBackend for LocalBackend {
    type View = Snapshot;

    fn with_shards(num_shards: usize, _threads: usize) -> Self {
        LocalBackend {
            chain: DdsChain::new(num_shards),
        }
    }

    fn num_shards(&self) -> usize {
        self.chain.num_shards()
    }

    fn empty_view(&self) -> Snapshot {
        Snapshot::empty(self.chain.num_shards())
    }

    fn commit_round(&mut self, batches: Vec<Vec<(Key, Value)>>, threads: usize) {
        self.chain.commit_round(batches, threads);
    }

    fn advance(&mut self, threads: usize) -> Snapshot {
        self.chain.advance_with_threads(threads)
    }

    fn completed_epochs(&self) -> usize {
        self.chain.completed_epochs()
    }

    fn total_writes(&mut self) -> u64 {
        self.chain.total_writes()
    }

    fn backend_name(&self) -> &'static str {
        "local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyTag;

    fn k(a: u64) -> Key {
        Key::of(KeyTag::Scalar, a)
    }

    /// Drive any backend through a tiny two-epoch script and check the
    /// trait-level observables.  The cross-backend conformance suite at the
    /// workspace root does this exhaustively; this is the in-crate smoke.
    fn exercise<B: DdsBackend>() {
        let mut backend = B::with_shards(4, 2);
        assert_eq!(backend.num_shards(), 4);
        assert_eq!(backend.completed_epochs(), 0);
        let empty = backend.empty_view();
        assert!(empty.is_empty());
        assert_eq!(empty.get(&k(1)), None);

        backend.commit_round(
            vec![
                vec![(k(1), Value::scalar(10)), (k(2), Value::scalar(20))],
                vec![(k(1), Value::scalar(11))],
            ],
            2,
        );
        let d0 = backend.advance(2);
        assert_eq!(backend.completed_epochs(), 1);
        assert_eq!(d0.len(), 2);
        assert_eq!(d0.get(&k(1)), Some(Value::scalar(10)));
        assert_eq!(d0.get_indexed(&k(1), 1), Some(Value::scalar(11)));
        assert_eq!(d0.multiplicity(&k(1)), 2);
        assert_eq!(
            d0.get_all(&k(1)),
            vec![Value::scalar(10), Value::scalar(11)]
        );

        backend.commit_round(vec![vec![(k(3), Value::scalar(30))]], 1);
        let d1 = backend.advance(1);
        assert_eq!(backend.completed_epochs(), 2);
        // Epochs are isolated in both directions.
        assert_eq!(d1.get(&k(1)), None);
        assert_eq!(d1.get(&k(3)), Some(Value::scalar(30)));
        assert_eq!(d0.get(&k(3)), None);
        assert_eq!(backend.total_writes(), 4);

        let mut entries = d0.entries();
        entries.sort_by_key(|(key, _)| key.a);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1, vec![Value::scalar(10), Value::scalar(11)]);
    }

    #[test]
    fn local_backend_satisfies_the_trait_surface() {
        exercise::<LocalBackend>();
    }

    #[test]
    fn channel_backend_satisfies_the_trait_surface() {
        exercise::<crate::ChannelBackend>();
    }

    #[test]
    fn tcp_backend_satisfies_the_trait_surface() {
        exercise::<crate::TcpBackend>();
    }

    #[test]
    fn snapshot_view_batched_reads_match_point_reads() {
        let mut backend = LocalBackend::with_shards(8, 1);
        backend.commit_round(
            vec![(0..50u64).map(|i| (k(i), Value::scalar(i * 2))).collect()],
            1,
        );
        let view = backend.advance(1);
        let keys: Vec<Key> = (0..80u64).map(k).collect();
        let mut batched = Vec::new();
        SnapshotView::get_many(&view, &keys, &mut batched);
        let individual: Vec<Option<Value>> = keys
            .iter()
            .map(|key| SnapshotView::get(&view, key))
            .collect();
        assert_eq!(batched, individual);
        assert_eq!(SnapshotView::total_reads(&view), 160);
    }
}

//! The writable, sharded store for the *current* round.
//!
//! In round *i* every machine may issue up to `O(S)` writes; each write is a
//! constant-size key-value pair destined for `D_i`.  The paper assumes the
//! DDS is "handled by P machines, each having O(S) space" with key-value
//! pairs "randomly and independently assigned to the machines handling the
//! DDS" (Section 2.1).  [`ShardedStore`] models those DDS machines as
//! `num_shards` hash-addressed shards, each protected by its own lock and
//! each counting the traffic it served, so the load-balance claims of
//! Lemma 2.1 can be measured rather than assumed.
//!
//! # Commit paths
//!
//! Three write paths, from slowest to fastest:
//!
//! * [`ShardedStore::write`] — one key-value pair, one shard-lock
//!   acquisition.  The right tool for ad-hoc writes.
//! * [`ShardedStore::write_batch`] — groups the batch by destination shard
//!   and takes each shard lock **once per batch** instead of once per pair.
//! * [`ShardedStore::commit_partitioned`] — takes batches already
//!   partitioned by shard (see [`ShardedStore::partition_writes`]) and
//!   commits the shards **in parallel**; this is the end-of-round commit
//!   path of the AMPC runtime.
//!
//! All paths preserve per-key value order: values arrive in batch order, and
//! because a key lives on exactly one shard, per-shard order fully
//! determines the multi-value indices of Section 2 of the paper.

use crate::hashing::{hash_words, FxHashMap};
use crate::key::{Key, Value};
use crate::slot::Slot;
use crate::snapshot::Snapshot;
use crate::stats::{ShardLoad, StoreStats};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One shard of the distributed store: a map from keys to (multi-)values.
///
/// Singleton keys — the overwhelmingly common case — store their value
/// inline in the map entry; only multi-value keys touch the heap.
#[derive(Default)]
struct Shard {
    entries: FxHashMap<Key, Slot>,
}

impl Shard {
    #[inline]
    fn push(&mut self, key: Key, value: Value) {
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut slot) => slot.get_mut().push(value),
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Slot::One(value));
            }
        }
    }
}

/// The writable key-value store backing one AMPC round.
///
/// Multi-value semantics follow Section 2 of the paper: if `k > 1` pairs are
/// written under the same key `x`, the individual values are addressable as
/// `(x, 1), …, (x, k)` — here via [`ShardedStore::get_indexed`] /
/// [`Snapshot::get_indexed`] — with the indices assigned in commit order.
pub struct ShardedStore {
    shards: Vec<Mutex<Shard>>,
    write_counts: Vec<AtomicU64>,
    num_shards: usize,
}

impl ShardedStore {
    /// Create a store with `num_shards` shards (at least 1).
    pub fn new(num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        ShardedStore {
            shards: (0..num_shards)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            write_counts: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
            num_shards,
        }
    }

    /// Number of shards ("DDS machines").
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard (DDS machine) responsible for `key` — a pure function of
    /// the key, as the model's contention analysis requires.
    #[inline]
    pub fn shard_of(&self, key: &Key) -> usize {
        (hash_words(key.tag.code(), key.a, key.b) % self.num_shards as u64) as usize
    }

    /// Append `value` under `key`.
    ///
    /// Writing the same key repeatedly builds up the multi-value list; the
    /// commit order of a single writer is preserved.
    pub fn write(&self, key: Key, value: Value) {
        let shard_idx = self.shard_of(&key);
        self.write_counts[shard_idx].fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shards[shard_idx].lock();
        shard.push(key, value);
    }

    /// Write a batch of pairs, preserving their order.
    ///
    /// The batch is grouped by destination shard first, so each shard lock
    /// is taken once per batch rather than once per pair.
    pub fn write_batch(&self, pairs: impl IntoIterator<Item = (Key, Value)>) {
        self.commit_partitioned(self.partition_writes(std::iter::once(pairs)), 1);
    }

    /// Partition write batches by destination shard, preserving order.
    ///
    /// Batches are consumed in order and each batch's pairs in their order,
    /// so the concatenation order (for the runtime: machine id, then write
    /// order) is preserved within every shard — which, keys living on
    /// exactly one shard, preserves every key's multi-value index order.
    pub fn partition_writes(
        &self,
        batches: impl IntoIterator<Item = impl IntoIterator<Item = (Key, Value)>>,
    ) -> Vec<Vec<(Key, Value)>> {
        let mut per_shard: Vec<Vec<(Key, Value)>> =
            (0..self.num_shards).map(|_| Vec::new()).collect();
        for batch in batches {
            for (key, value) in batch {
                per_shard[self.shard_of(&key)].push((key, value));
            }
        }
        per_shard
    }

    /// Partition write batches by destination shard **in parallel**: the
    /// batch list is split into up to `threads` contiguous runs (balanced by
    /// pair count), each worker partitions its run into private per-shard
    /// buckets, and the bucket matrices come back in run order.
    ///
    /// `chunks[w][s]` holds worker `w`'s pairs for shard `s`; committing the
    /// chunks in worker order ([`ShardedStore::commit_chunked`]) replays the
    /// exact concatenation order of the input batches, so per-key
    /// multi-value order is identical to [`ShardedStore::partition_writes`]
    /// followed by [`ShardedStore::commit_partitioned`] — the buckets are
    /// never physically merged, which is what makes the pass scale.
    pub fn partition_writes_parallel(
        &self,
        batches: Vec<Vec<(Key, Value)>>,
        threads: usize,
    ) -> Vec<Vec<Vec<(Key, Value)>>> {
        // Each worker must have enough pairs to amortise its scoped-thread
        // setup and private bucket matrix; below this the parallel pass was
        // measurably *slower* than the serial one (partition_speedup
        // 0.96–1.00 at 4–8 shards in the recorded bench trajectory).
        const MIN_PAIRS_PER_WORKER: usize = 16 * 1024;
        let total_pairs: usize = batches.iter().map(Vec::len).sum();
        let threads = threads
            .max(1)
            .min(batches.len().max(1))
            .min((total_pairs / MIN_PAIRS_PER_WORKER).max(1));
        if threads == 1 {
            return vec![self.partition_writes(batches)];
        }
        // Contiguous ranges of batches with ~equal pair counts, preserving
        // batch order across ranges.
        let per_worker_target = total_pairs.div_ceil(threads).max(1);
        let mut runs: Vec<Vec<Vec<(Key, Value)>>> = Vec::with_capacity(threads);
        let mut run: Vec<Vec<(Key, Value)>> = Vec::new();
        let mut run_pairs = 0usize;
        for batch in batches {
            run_pairs += batch.len();
            run.push(batch);
            if run_pairs >= per_worker_target && runs.len() + 1 < threads {
                runs.push(std::mem::take(&mut run));
                run_pairs = 0;
            }
        }
        if !run.is_empty() {
            runs.push(run);
        }

        type BucketMatrix = Vec<Vec<(Key, Value)>>;
        let slots: Vec<Mutex<Option<BucketMatrix>>> =
            runs.into_iter().map(|r| Mutex::new(Some(r))).collect();
        let outputs: Vec<Mutex<Option<BucketMatrix>>> =
            (0..slots.len()).map(|_| Mutex::new(None)).collect();
        for_each_index_parallel(slots.len(), threads, |w| {
            // lint: allow(panic) — for_each_index_parallel visits each index exactly once by construction
            let run = slots[w].lock().take().expect("each run partitioned once");
            *outputs[w].lock() = Some(self.partition_writes(run));
        });
        outputs
            .into_iter()
            // lint: allow(panic) — every slot was filled by the parallel loop above
            .map(|slot| slot.into_inner().expect("each run partitioned once"))
            .collect()
    }

    /// Commit the bucket matrices of
    /// [`ShardedStore::partition_writes_parallel`]: each shard's lock is
    /// taken once, the shard consumes its bucket from every chunk in chunk
    /// order (= original batch order), and distinct shards commit in
    /// parallel on up to `threads` workers.
    pub fn commit_chunked(&self, chunks: Vec<Vec<Vec<(Key, Value)>>>, threads: usize) {
        for chunk in &chunks {
            assert_eq!(
                chunk.len(),
                self.num_shards,
                "one bucket per shard required"
            );
        }
        for_each_index_parallel(self.num_shards, threads, |shard_idx| {
            let pairs: usize = chunks.iter().map(|chunk| chunk[shard_idx].len()).sum();
            if pairs == 0 {
                return;
            }
            self.write_counts[shard_idx].fetch_add(pairs as u64, Ordering::Relaxed);
            let mut shard = self.shards[shard_idx].lock();
            shard.entries.reserve(pairs);
            for chunk in &chunks {
                for &(key, value) in &chunk[shard_idx] {
                    debug_assert_eq!(self.shard_of(&key), shard_idx);
                    shard.push(key, value);
                }
            }
        });
    }

    /// Commit shard-partitioned batches, locking each shard exactly once and
    /// committing distinct shards in parallel on up to `threads` workers.
    ///
    /// `per_shard[s]` must contain only keys whose [`ShardedStore::shard_of`]
    /// is `s` (as produced by [`ShardedStore::partition_writes`]); this is
    /// debug-asserted.
    pub fn commit_partitioned(&self, per_shard: Vec<Vec<(Key, Value)>>, threads: usize) {
        assert_eq!(
            per_shard.len(),
            self.num_shards,
            "one batch per shard required"
        );
        // Below this many pairs the scoped-thread setup costs more than the
        // pushes themselves (late algorithm phases commit tiny rounds);
        // commit serially instead.
        const PARALLEL_COMMIT_THRESHOLD: usize = 4 * 1024;
        let total_pairs: usize = per_shard.iter().map(Vec::len).sum();
        let threads = if total_pairs < PARALLEL_COMMIT_THRESHOLD {
            1
        } else {
            threads.min(
                per_shard
                    .iter()
                    .filter(|batch| !batch.is_empty())
                    .count()
                    .max(1),
            )
        };
        for_each_index_parallel(self.num_shards, threads, |shard_idx| {
            let batch = &per_shard[shard_idx];
            if batch.is_empty() {
                return;
            }
            debug_assert!(batch.iter().all(|(key, _)| self.shard_of(key) == shard_idx));
            self.write_counts[shard_idx].fetch_add(batch.len() as u64, Ordering::Relaxed);
            let mut shard = self.shards[shard_idx].lock();
            shard.entries.reserve(batch.len());
            for &(key, value) in batch {
                shard.push(key, value);
            }
        });
    }

    /// First value stored under `key`, if any.
    pub fn get(&self, key: &Key) -> Option<Value> {
        let shard = self.shards[self.shard_of(key)].lock();
        shard.entries.get(key).map(|slot| slot.as_slice()[0])
    }

    /// The `index`-th value stored under `key` (zero-based), if present.
    pub fn get_indexed(&self, key: &Key, index: usize) -> Option<Value> {
        let shard = self.shards[self.shard_of(key)].lock();
        shard
            .entries
            .get(key)
            .and_then(|slot| slot.as_slice().get(index).copied())
    }

    /// How many values are stored under `key`.
    pub fn multiplicity(&self, key: &Key) -> usize {
        let shard = self.shards[self.shard_of(key)].lock();
        shard
            .entries
            .get(key)
            .map_or(0, |slot| slot.as_slice().len())
    }

    /// Total number of distinct keys across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// `true` if no key has been written.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().entries.is_empty())
    }

    /// Total number of writes accepted so far.
    pub fn total_writes(&self) -> u64 {
        self.write_counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard write load so far.
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardLoad {
                shard: i,
                keys: s.lock().entries.len() as u64,
                writes: self.write_counts[i].load(Ordering::Relaxed),
                reads: 0,
            })
            .collect()
    }

    /// Freeze the store into an immutable [`Snapshot`] readable by the next
    /// round, consuming the writable store.
    ///
    /// The freeze is **in-place**: the write-side shard maps (and every slot
    /// in them) are reused as the snapshot's frozen maps outright — see
    /// [`freeze_shard`].  Shards are shrunk in parallel on up to one worker
    /// per available CPU.
    pub fn freeze(self) -> Snapshot {
        self.freeze_with_threads(default_parallelism())
    }

    /// [`ShardedStore::freeze`] with an explicit worker-thread cap.
    pub fn freeze_with_threads(self, threads: usize) -> Snapshot {
        let num_shards = self.num_shards;
        let mut writes = Vec::with_capacity(num_shards);
        let mut maps = Vec::with_capacity(num_shards);
        for (shard, count) in self.shards.into_iter().zip(self.write_counts) {
            maps.push(shard.into_inner().entries);
            writes.push(count.into_inner());
        }

        let total_keys: usize = maps.iter().map(|m| m.len()).sum();
        let threads = threads.max(1).min(num_shards);
        // Below this size the scoped-thread setup costs more than the
        // multi-value shrink pass.
        const PARALLEL_FREEZE_THRESHOLD: usize = 8 * 1024;
        let frozen = if threads == 1 || total_keys < PARALLEL_FREEZE_THRESHOLD {
            maps.into_iter().map(freeze_shard).collect()
        } else {
            let slots: Vec<Mutex<Option<FxHashMap<Key, Slot>>>> =
                maps.into_iter().map(|m| Mutex::new(Some(m))).collect();
            let outputs: Vec<Mutex<Option<FxHashMap<Key, Slot>>>> =
                (0..num_shards).map(|_| Mutex::new(None)).collect();
            for_each_index_parallel(num_shards, threads, |i| {
                // lint: allow(panic) — for_each_index_parallel visits each index exactly once by construction
                let map = slots[i].lock().take().expect("each shard frozen once");
                *outputs[i].lock() = Some(freeze_shard(map));
            });
            outputs
                .into_iter()
                // lint: allow(panic) — every slot was filled by the parallel loop above
                .map(|slot| slot.into_inner().expect("each shard frozen once"))
                .collect()
        };
        Snapshot::from_parts(frozen, writes)
    }

    /// Snapshot-style statistics of the writable store (reads are always 0).
    pub fn stats(&self) -> StoreStats {
        StoreStats::from_loads(self.shard_loads())
    }
}

/// Run `work(i)` for every index in `0..count`, on up to `threads` scoped
/// workers claiming indices from a shared atomic cursor.
///
/// The shared worker pool behind the shard-parallel commit and freeze
/// paths; `threads <= 1` (or a single index) degrades to a plain loop with
/// no thread setup.
fn for_each_index_parallel(count: usize, threads: usize, work: impl Fn(usize) + Sync) {
    let threads = threads.max(1).min(count.max(1));
    if threads == 1 {
        for i in 0..count {
            work(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let work = &work;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                work(i);
            });
        }
    });
}

/// Worker threads available to this process, resolving to 1 when the
/// platform cannot say.
///
/// The single source of truth for CPU-count fallbacks across the workspace
/// (runtime thread resolution, freeze parallelism, bench defaults).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Freeze one writable shard map **in place**.
///
/// The write-side and frozen layouts share the [`Slot`] type, so freezing no
/// longer rebuilds the map: the allocation (and every inline singleton slot)
/// is reused as-is, and the only work is dropping the spare `Vec` capacity
/// of the rare multi-value slots ([`crate::slot::freeze_map_in_place`]).
fn freeze_shard(mut map: FxHashMap<Key, Slot>) -> FxHashMap<Key, Slot> {
    crate::slot::freeze_map_in_place(&mut map);
    map
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("num_shards", &self.num_shards)
            .field("keys", &self.len())
            .field("total_writes", &self.total_writes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyTag;

    fn k(a: u64) -> Key {
        Key::of(KeyTag::Scalar, a)
    }

    #[test]
    fn write_then_read_single_value() {
        let store = ShardedStore::new(8);
        store.write(k(1), Value::scalar(42));
        assert_eq!(store.get(&k(1)), Some(Value::scalar(42)));
        assert_eq!(store.get(&k(2)), None);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn multi_value_keys_are_index_addressable() {
        let store = ShardedStore::new(4);
        for i in 0..5u64 {
            store.write(k(7), Value::scalar(i * 10));
        }
        assert_eq!(store.multiplicity(&k(7)), 5);
        for i in 0..5usize {
            assert_eq!(
                store.get_indexed(&k(7), i),
                Some(Value::scalar(i as u64 * 10))
            );
        }
        assert_eq!(store.get_indexed(&k(7), 5), None);
        // `get` returns the first value, matching the model's (x, 1) query.
        assert_eq!(store.get(&k(7)), Some(Value::scalar(0)));
    }

    #[test]
    fn querying_missing_key_returns_empty_response() {
        let store = ShardedStore::new(2);
        assert_eq!(store.get(&k(999)), None);
        assert_eq!(store.multiplicity(&k(999)), 0);
        assert_eq!(store.get_indexed(&k(999), 0), None);
    }

    #[test]
    fn write_counts_are_tracked_per_shard() {
        let store = ShardedStore::new(4);
        for i in 0..100u64 {
            store.write(k(i), Value::scalar(i));
        }
        assert_eq!(store.total_writes(), 100);
        let loads = store.shard_loads();
        assert_eq!(loads.len(), 4);
        assert_eq!(loads.iter().map(|l| l.writes).sum::<u64>(), 100);
        assert!(loads.iter().all(|l| l.reads == 0));
    }

    #[test]
    fn freeze_preserves_contents() {
        let store = ShardedStore::new(3);
        store.write(k(1), Value::scalar(10));
        store.write(k(1), Value::scalar(11));
        store.write(k(2), Value::pair(3, 4));
        let snap = store.freeze();
        assert_eq!(snap.get(&k(1)), Some(Value::scalar(10)));
        assert_eq!(snap.get_indexed(&k(1), 1), Some(Value::scalar(11)));
        assert_eq!(snap.get(&k(2)), Some(Value::pair(3, 4)));
        assert_eq!(snap.get(&k(3)), None);
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn parallel_freeze_equals_serial_freeze() {
        let build = || {
            let store = ShardedStore::new(16);
            for i in 0..20_000u64 {
                store.write(k(i % 5_000), Value::scalar(i));
            }
            store
        };
        let serial = build().freeze_with_threads(1);
        let parallel = build().freeze_with_threads(8);
        assert_eq!(serial.len(), parallel.len());
        for i in 0..5_000u64 {
            assert_eq!(serial.multiplicity(&k(i)), parallel.multiplicity(&k(i)));
            for idx in 0..serial.multiplicity(&k(i)) {
                assert_eq!(
                    serial.get_indexed(&k(i), idx),
                    parallel.get_indexed(&k(i), idx)
                );
            }
        }
    }

    #[test]
    fn batch_write_preserves_order() {
        let store = ShardedStore::new(2);
        store.write_batch((0..10u64).map(|i| (k(5), Value::scalar(i))));
        for i in 0..10usize {
            assert_eq!(store.get_indexed(&k(5), i), Some(Value::scalar(i as u64)));
        }
    }

    #[test]
    fn partitioned_commit_matches_serial_writes() {
        let pairs: Vec<(Key, Value)> = (0..1_000u64)
            .map(|i| (k(i % 37), Value::scalar(i)))
            .collect();

        let serial = ShardedStore::new(8);
        for &(key, value) in &pairs {
            serial.write(key, value);
        }

        let parallel = ShardedStore::new(8);
        let per_shard = parallel.partition_writes(std::iter::once(pairs.clone()));
        parallel.commit_partitioned(per_shard, 4);

        assert_eq!(serial.total_writes(), parallel.total_writes());
        assert_eq!(serial.len(), parallel.len());
        for i in 0..37u64 {
            assert_eq!(serial.multiplicity(&k(i)), parallel.multiplicity(&k(i)));
            for idx in 0..serial.multiplicity(&k(i)) {
                assert_eq!(
                    serial.get_indexed(&k(i), idx),
                    parallel.get_indexed(&k(i), idx),
                    "key {i} index {idx}"
                );
            }
        }
    }

    #[test]
    fn parallel_partition_pass_matches_serial_partition() {
        // Many machine batches with heavy key collisions: the chunked pass
        // must replay the exact (batch, write) order per key.  The workload
        // is large enough that the small-input fallback does not kick in.
        let batches: Vec<Vec<(Key, Value)>> = (0..64u64)
            .map(|machine| {
                (0..2_048u64)
                    .map(|i| {
                        (
                            k((machine * 2_048 + i) % 23),
                            Value::scalar(machine * 1_000_000 + i),
                        )
                    })
                    .collect()
            })
            .collect();

        let serial = ShardedStore::new(8);
        let per_shard = serial.partition_writes(batches.clone());
        serial.commit_partitioned(per_shard, 1);

        for threads in [2, 4, 8] {
            let parallel = ShardedStore::new(8);
            let chunks = parallel.partition_writes_parallel(batches.clone(), threads);
            parallel.commit_chunked(chunks, threads);
            assert_eq!(serial.total_writes(), parallel.total_writes());
            assert_eq!(serial.len(), parallel.len());
            for key in 0..23u64 {
                assert_eq!(serial.multiplicity(&k(key)), parallel.multiplicity(&k(key)));
                for idx in 0..serial.multiplicity(&k(key)) {
                    assert_eq!(
                        serial.get_indexed(&k(key), idx),
                        parallel.get_indexed(&k(key), idx),
                        "key {key} index {idx} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_partition_falls_back_to_serial_on_small_inputs() {
        let store = ShardedStore::new(8);
        // 64 batches but far too few pairs to pay for worker threads: the
        // pass must produce the single chunk of the serial path.
        let batches: Vec<Vec<(Key, Value)>> = (0..64u64)
            .map(|machine| vec![(k(machine), Value::scalar(machine))])
            .collect();
        let chunks = store.partition_writes_parallel(batches, 8);
        assert_eq!(chunks.len(), 1, "small inputs must partition serially");
        store.commit_chunked(chunks, 8);
        assert_eq!(store.total_writes(), 64);
        // A single worker likewise never splits, whatever the input size.
        let big: Vec<Vec<(Key, Value)>> = (0..4u64)
            .map(|m| (0..10_000u64).map(|i| (k(i), Value::scalar(m))).collect())
            .collect();
        let chunks = store.partition_writes_parallel(big, 1);
        assert_eq!(chunks.len(), 1);
    }

    #[test]
    fn parallel_partition_handles_degenerate_shapes() {
        let store = ShardedStore::new(4);
        // No batches at all.
        let chunks = store.partition_writes_parallel(Vec::new(), 4);
        store.commit_chunked(chunks, 4);
        assert!(store.is_empty());
        // More threads than batches.
        let chunks = store.partition_writes_parallel(vec![vec![(k(1), Value::scalar(1))]], 8);
        store.commit_chunked(chunks, 8);
        assert_eq!(store.get(&k(1)), Some(Value::scalar(1)));
        assert_eq!(store.total_writes(), 1);
    }

    #[test]
    fn partition_writes_respects_batch_then_write_order() {
        let store = ShardedStore::new(4);
        // Two "machines" writing the same key: machine order must win.
        let batches = vec![
            vec![(k(9), Value::scalar(0)), (k(9), Value::scalar(1))],
            vec![(k(9), Value::scalar(2))],
        ];
        let per_shard = store.partition_writes(batches);
        store.commit_partitioned(per_shard, 2);
        for i in 0..3usize {
            assert_eq!(store.get_indexed(&k(9), i), Some(Value::scalar(i as u64)));
        }
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let store = ShardedStore::new(0);
        assert_eq!(store.num_shards(), 1);
        store.write(k(1), Value::scalar(1));
        assert_eq!(store.get(&k(1)), Some(Value::scalar(1)));
    }

    #[test]
    fn concurrent_writes_from_many_threads_all_land() {
        let store = std::sync::Arc::new(ShardedStore::new(16));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        store.write(k(t * 10_000 + i), Value::scalar(i));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(store.total_writes(), 8000);
        assert_eq!(store.len(), 8000);
    }

    #[test]
    fn concurrent_partitioned_commits_from_many_threads_all_land() {
        let store = std::sync::Arc::new(ShardedStore::new(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let store = store.clone();
                std::thread::spawn(move || {
                    let pairs: Vec<(Key, Value)> = (0..1000u64)
                        .map(|i| (k(t * 10_000 + i), Value::scalar(i)))
                        .collect();
                    let per_shard = store.partition_writes(std::iter::once(pairs));
                    store.commit_partitioned(per_shard, 2);
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(store.total_writes(), 4000);
        assert_eq!(store.len(), 4000);
    }
}

//! The writable, sharded store for the *current* round.
//!
//! In round *i* every machine may issue up to `O(S)` writes; each write is a
//! constant-size key-value pair destined for `D_i`.  The paper assumes the
//! DDS is "handled by P machines, each having O(S) space" with key-value
//! pairs "randomly and independently assigned to the machines handling the
//! DDS" (Section 2.1).  [`ShardedStore`] models those DDS machines as
//! `num_shards` hash-addressed shards, each protected by its own lock and
//! each counting the traffic it served, so the load-balance claims of
//! Lemma 2.1 can be measured rather than assumed.

use crate::hashing::{hash_words, FxHashMap};
use crate::key::{Key, Value};
use crate::snapshot::Snapshot;
use crate::stats::{ShardLoad, StoreStats};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One shard of the distributed store: a map from keys to (multi-)values.
#[derive(Default)]
struct Shard {
    entries: FxHashMap<Key, Vec<Value>>,
}

/// The writable key-value store backing one AMPC round.
///
/// Multi-value semantics follow Section 2 of the paper: if `k > 1` pairs are
/// written under the same key `x`, the individual values are addressable as
/// `(x, 1), …, (x, k)` — here via [`ShardedStore::get_indexed`] /
/// [`Snapshot::get_indexed`] — with the indices assigned in commit order.
pub struct ShardedStore {
    shards: Vec<Mutex<Shard>>,
    write_counts: Vec<AtomicU64>,
    num_shards: usize,
}

impl ShardedStore {
    /// Create a store with `num_shards` shards (at least 1).
    pub fn new(num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        ShardedStore {
            shards: (0..num_shards).map(|_| Mutex::new(Shard::default())).collect(),
            write_counts: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
            num_shards,
        }
    }

    /// Number of shards ("DDS machines").
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    #[inline]
    fn shard_of(&self, key: &Key) -> usize {
        (hash_words(key.tag.code(), key.a, key.b) % self.num_shards as u64) as usize
    }

    /// Append `value` under `key`.
    ///
    /// Writing the same key repeatedly builds up the multi-value list; the
    /// commit order of a single writer is preserved.
    pub fn write(&self, key: Key, value: Value) {
        let shard_idx = self.shard_of(&key);
        self.write_counts[shard_idx].fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shards[shard_idx].lock();
        shard.entries.entry(key).or_default().push(value);
    }

    /// Write a batch of pairs, preserving their order.
    pub fn write_batch(&self, pairs: impl IntoIterator<Item = (Key, Value)>) {
        for (k, v) in pairs {
            self.write(k, v);
        }
    }

    /// First value stored under `key`, if any.
    pub fn get(&self, key: &Key) -> Option<Value> {
        let shard = self.shards[self.shard_of(key)].lock();
        shard.entries.get(key).and_then(|vs| vs.first().copied())
    }

    /// The `index`-th value stored under `key` (zero-based), if present.
    pub fn get_indexed(&self, key: &Key, index: usize) -> Option<Value> {
        let shard = self.shards[self.shard_of(key)].lock();
        shard.entries.get(key).and_then(|vs| vs.get(index).copied())
    }

    /// How many values are stored under `key`.
    pub fn multiplicity(&self, key: &Key) -> usize {
        let shard = self.shards[self.shard_of(key)].lock();
        shard.entries.get(key).map_or(0, |vs| vs.len())
    }

    /// Total number of distinct keys across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// `true` if no key has been written.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().entries.is_empty())
    }

    /// Total number of writes accepted so far.
    pub fn total_writes(&self) -> u64 {
        self.write_counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Per-shard write load so far.
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardLoad {
                shard: i,
                keys: s.lock().entries.len() as u64,
                writes: self.write_counts[i].load(Ordering::Relaxed),
                reads: 0,
            })
            .collect()
    }

    /// Freeze the store into an immutable [`Snapshot`] readable by the next
    /// round, consuming the writable store.
    pub fn freeze(self) -> Snapshot {
        let num_shards = self.num_shards;
        let mut shards = Vec::with_capacity(num_shards);
        let mut writes = Vec::with_capacity(num_shards);
        for (shard, count) in self.shards.into_iter().zip(self.write_counts) {
            shards.push(shard.into_inner().entries);
            writes.push(count.into_inner());
        }
        Snapshot::from_parts(shards, writes)
    }

    /// Snapshot-style statistics of the writable store (reads are always 0).
    pub fn stats(&self) -> StoreStats {
        StoreStats::from_loads(self.shard_loads())
    }
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("num_shards", &self.num_shards)
            .field("keys", &self.len())
            .field("total_writes", &self.total_writes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyTag;

    fn k(a: u64) -> Key {
        Key::of(KeyTag::Scalar, a)
    }

    #[test]
    fn write_then_read_single_value() {
        let store = ShardedStore::new(8);
        store.write(k(1), Value::scalar(42));
        assert_eq!(store.get(&k(1)), Some(Value::scalar(42)));
        assert_eq!(store.get(&k(2)), None);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn multi_value_keys_are_index_addressable() {
        let store = ShardedStore::new(4);
        for i in 0..5u64 {
            store.write(k(7), Value::scalar(i * 10));
        }
        assert_eq!(store.multiplicity(&k(7)), 5);
        for i in 0..5usize {
            assert_eq!(store.get_indexed(&k(7), i), Some(Value::scalar(i as u64 * 10)));
        }
        assert_eq!(store.get_indexed(&k(7), 5), None);
        // `get` returns the first value, matching the model's (x, 1) query.
        assert_eq!(store.get(&k(7)), Some(Value::scalar(0)));
    }

    #[test]
    fn querying_missing_key_returns_empty_response() {
        let store = ShardedStore::new(2);
        assert_eq!(store.get(&k(999)), None);
        assert_eq!(store.multiplicity(&k(999)), 0);
        assert_eq!(store.get_indexed(&k(999), 0), None);
    }

    #[test]
    fn write_counts_are_tracked_per_shard() {
        let store = ShardedStore::new(4);
        for i in 0..100u64 {
            store.write(k(i), Value::scalar(i));
        }
        assert_eq!(store.total_writes(), 100);
        let loads = store.shard_loads();
        assert_eq!(loads.len(), 4);
        assert_eq!(loads.iter().map(|l| l.writes).sum::<u64>(), 100);
        assert!(loads.iter().all(|l| l.reads == 0));
    }

    #[test]
    fn freeze_preserves_contents() {
        let store = ShardedStore::new(3);
        store.write(k(1), Value::scalar(10));
        store.write(k(1), Value::scalar(11));
        store.write(k(2), Value::pair(3, 4));
        let snap = store.freeze();
        assert_eq!(snap.get(&k(1)), Some(Value::scalar(10)));
        assert_eq!(snap.get_indexed(&k(1), 1), Some(Value::scalar(11)));
        assert_eq!(snap.get(&k(2)), Some(Value::pair(3, 4)));
        assert_eq!(snap.get(&k(3)), None);
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn batch_write_preserves_order() {
        let store = ShardedStore::new(2);
        store.write_batch((0..10u64).map(|i| (k(5), Value::scalar(i))));
        for i in 0..10usize {
            assert_eq!(store.get_indexed(&k(5), i), Some(Value::scalar(i as u64)));
        }
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let store = ShardedStore::new(0);
        assert_eq!(store.num_shards(), 1);
        store.write(k(1), Value::scalar(1));
        assert_eq!(store.get(&k(1)), Some(Value::scalar(1)));
    }

    #[test]
    fn concurrent_writes_from_many_threads_all_land() {
        let store = std::sync::Arc::new(ShardedStore::new(16));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        store.write(k(t * 10_000 + i), Value::scalar(i));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(store.total_writes(), 8000);
        assert_eq!(store.len(), 8000);
    }
}

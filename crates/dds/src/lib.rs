//! # ampc-dds — Distributed Data Store substrate for the AMPC model
//!
//! The AMPC model (Behnezhad et al., SPAA 2019) extends MPC by writing every
//! message produced in round *i* into a **distributed data store** `D_i`.
//! In round *i + 1* all machines get random *read* access to `D_i`, and the
//! keys a machine reads may depend on the values returned by its earlier
//! reads in the same round ("adaptivity").
//!
//! This crate implements the data-store side of that model as an in-process,
//! sharded, epoch-versioned key-value store:
//!
//! * [`Key`] / [`Value`] — constant-size key-value pairs, exactly as the model
//!   requires (both consist of a constant number of machine words).
//! * [`ShardedStore`] — the *writable* store for the current round.  Writes
//!   are hashed to one of `P` shards; every shard tracks how many reads and
//!   writes it served so that the contention analysis of the paper
//!   (Lemma 2.1) can be validated empirically.
//! * [`Snapshot`] — an immutable, read-only view of a completed round.
//!   Machines in round *i* read from the snapshot of `D_{i-1}`; the snapshot
//!   never changes while a round is in flight, which is exactly the property
//!   the paper's fault-tolerance argument relies on.
//! * [`DdsChain`] — the sequence `D_0, D_1, …` of stores produced by a run.
//! * [`backend`] — the [`SnapshotView`] / [`DdsBackend`] trait pair that
//!   makes the store surface pluggable: [`LocalBackend`] wraps the chain
//!   above, while [`ChannelBackend`] and [`TcpBackend`] serve the same
//!   surface over the message-passing wire protocol (see below).
//! * [`contention`] — the weighted balls-into-bins experiment behind
//!   Lemma 2.1 of the paper.
//!
//! # Epoch lifecycle: freeze → publish → read
//!
//! An epoch moves through three stages, all sharing **one representation**
//! — the write-side shard maps are the frozen maps:
//!
//! 1. **Accumulate** — machines buffer writes; the runtime commits them into
//!    the writable [`ShardedStore`], grouped by destination shard so each
//!    shard lock is taken once per batch, with distinct shards committed in
//!    parallel ([`ShardedStore::commit_partitioned`]).  Singleton keys are
//!    stored inline; only multi-value keys allocate.
//! 2. **Freeze, in place** — epoch advance no longer rebuilds anything:
//!    [`ShardedStore::freeze`] reuses every shard map allocation outright
//!    and merely shrinks the spare capacity of the rare multi-value slots
//!    (the write and frozen sides share the [`slot`] layout, which costs no
//!    extra width — the discriminant hides in the `Vec` pointer niche).
//!    Shards are shrunk in parallel for large epochs.
//! 3. **Publish & serve** — the frozen maps are immutable from here on, so
//!    they are published behind one `Arc` per epoch and served lock-free.
//!    On [`LocalBackend`] that `Arc` is the [`Snapshot`] itself (cloned to
//!    every machine thread); on [`ChannelBackend`] each owner thread hands
//!    its frozen shard group's `Arc` to the backend in its `Advance` reply,
//!    so point and batched reads resolve against the shared maps with
//!    **zero channel traffic** — only commits, advances, and driver-side
//!    loads/dumps remain message-passing.  Reads are counted in per-shard
//!    atomics inside the published epoch, keeping the Lemma 2.1 contention
//!    accounting observable from both sides.
//!
//! Views hand-for-hand outlive the stores that made them: a snapshot taken
//! at epoch `i` stays valid and byte-identical across later epochs and
//! after its backend is dropped (pinned by `tests/backend_conformance.rs`).
//!
//! # The wire protocol
//!
//! The write-side backend surface is small enough to be a *network
//! protocol*, and since the transport split it literally is one, layered in
//! three modules:
//!
//! * [`proto`] — the protocol as data: serializable [`proto::Request`] /
//!   [`proto::Reply`] types (`Commit` / `Advance` / `Loads` / `Dump` /
//!   `TotalWrites`), a byte codec built on the constant-size pair encoding
//!   of [`codec`], a framed epoch-snapshot payload ([`proto::EpochFrame`])
//!   for fetching frozen maps across a process boundary, and
//!   length-prefixed framing with a hard size cap.
//! * [`transport`] — one connection between a backend and one shard-group
//!   owner, itself split into three layers: `transport::codec` (framing
//!   over pooled, reused buffers — zero steady-state allocations, one
//!   vectored header+payload write per frame), the session layer (the
//!   [`Transport`] / [`transport::ServerTransport`] trait pair, with
//!   [`MpscTransport`] — typed in-process channels, zero-copy `Arc` epoch
//!   publication — and [`TcpTransport`] — localhost sockets speaking the
//!   codec — shipping in-tree), and `transport::dispatch` (the owner state
//!   machine with the idempotency that makes replay safe).  The TCP path is
//!   **pipelined**: a client may keep up to a window of requests in flight
//!   per socket, and the server runs each connection as reader → dispatch →
//!   writer stages, decoding request `N + 1` while applying `N` and
//!   flushing the reply to `N - 1` (bounded at
//!   [`transport::PIPELINE_DEPTH`] frames per stage queue; replies stay
//!   strictly FIFO with requests).  Transports also honor request-level
//!   fault injection ([`RequestFaults`]: scheduled drop-then-retry and
//!   connection severs) and turn dead peers into typed [`TransportError`]s
//!   instead of hangs.
//! * [`remote`] — the client and server of the protocol:
//!   [`RemoteBackend`]`<T>` drives any transport behind the [`DdsBackend`]
//!   surface; the owner loop is transport-generic.  [`ChannelBackend`] is
//!   `RemoteBackend<MpscTransport>`, [`TcpBackend`] is
//!   `RemoteBackend<TcpTransport>`, and the conformance + determinism
//!   suites hold both (and [`LocalBackend`]) to byte-identical behaviour.
//! * [`serve`] — the standalone owner *process*: [`DdsServer`] accepts any
//!   number of concurrent leased [`TcpBackend`] clients, each
//!   `(session, worker)` pair served by its own isolated owner
//!   (`quickstart --serve` / `--connect` runs it end to end).
//!
//! Reads never touch the wire: every view holds the frozen epoch locally
//! (shared `Arc` or fetched replica) and probes it lock-free, so the
//! protocol carries only the write-side and driver-side traffic — exactly
//! the deployment shape the paper assumes for its RDMA/Bigtable-style DHT.
//!
//! # Connection lifecycle: leases, reconnect, replay
//!
//! The store, not the workers, owns liveness.  Every TCP connection opens
//! with a [`proto::Request::Lease`] naming `(session, worker)`; the owner
//! answers [`proto::Reply::LeaseGranted`] and from then on runs the lease
//! state machine *grant → (implicit) renew → expire → reclaim* — expiry
//! counts down only while the session is **disconnected**, so a slow round
//! on a healthy socket never loses its lease, while a dead client's session
//! is reclaimed (pending commits freed) once its ttl elapses.  The client
//! side heals transparently: any socket failure triggers reconnect with
//! capped exponential backoff ([`TcpOptions`]), a replayed lease handshake,
//! and in-order replay of every request still awaiting a reply — the whole
//! pipeline of them, under pipelining.  Replay is safe because every
//! request is idempotent at the owner — `Commit` is deduplicated over a
//! window of recent sequence numbers deep enough to absorb a full replayed
//! pipeline, `Advance` re-publishes the already-frozen epoch,
//! `Loads`/`Dump`/`TotalWrites` are pure reads.  A clean shutdown drains
//! both sides before the goodbye releases the lease, and expiry never
//! counts down against a connected client, even one whose pipelined
//! replies are still being flushed.  A reconnect that finds its session
//! reclaimed surfaces as the typed [`TransportError::LeaseLost`].  The
//! full state machine is drawn in [`serve`], the client policy and
//! pipelining semantics in [`transport`]; `tests/reconnect.rs` proves
//! mid-round severs — including severs with a full pipeline outstanding —
//! heal byte-identically across thread counts.
//!
//! # Cluster topology
//!
//! One serving process scales to many clients; [`cluster`] scales the
//! store itself to many serving processes.  A cluster is `N` owner
//! processes started with [`serve_cluster`], each owning a **contiguous
//! shard range** (`[i·S/N, (i+1)·S/N)` for owner `i` of `N` over `S`
//! shards), discovered through the **shard-map handshake**: every lease
//! grant carries the cluster's epoch-stamped [`proto::ShardMap`] (owner
//! endpoints × shard ranges), and [`ClusterBackend`] validates that all
//! owners advertise the identical contiguous map before routing a single
//! request.  Commits route to the owning endpoint by range lookup;
//! `Loads` / `TotalWrites` / `Dump` fan out and aggregate.
//!
//! Epoch advance is the one step that must be atomic *across* processes,
//! and becomes a client-coordinated **two-phase barrier**: phase 1 sends
//! [`proto::Request::FreezeEpoch`] to every owner — each parks its
//! writable epoch as *prepared*, invisible to `Loads`/`Dump`, while
//! already accepting the next epoch's commits — and only after **all**
//! freeze acks does phase 2 send [`proto::Request::PublishEpoch`], so no
//! client can ever observe a mixed epoch.  Both phases follow the same
//! **per-owner replay rules** as every other request: a freeze replayed
//! after reconnect re-acks the prepared epoch, a publish replayed after
//! reconnect re-publishes the identical frozen data (a
//! prepared-but-unpublished epoch survives in the owner's session state),
//! and commit retransmissions are deduplicated per `(session, worker)`
//! window so concurrent clients of one owner cannot evict each other's
//! replay state.  `cluster(n)` legs of the conformance, determinism, and
//! reconnect suites hold the whole construction byte-identical to the
//! single-process backends, including with an owner severed mid-barrier.
//!
//! The pre-refactor `Vec<Value>`-per-key layout survives as
//! [`legacy::LegacyStore`], an executable specification the property tests
//! compare against.
//!
//! # Machine-checked invariants
//!
//! Several of the guarantees above are *cross-file* properties that no
//! single `#[test]` or compiler lint can see whole.  They are enforced by
//! `ampc-lint` (`cargo run -p ampc-lint`, wired into CI), a
//! workspace-native static analyzer that parses this crate and `ampc`
//! directly and fails the build with `file:line` diagnostics:
//!
//! * **proto-conformance** — the [`proto::Request`] / [`proto::Reply`]
//!   enums, their `TAG_*` wire constants, the `fn handle` match in
//!   `transport::dispatch`, and the [`proto::REPLAY_POLICY`] table must
//!   stay mutually total: every request variant has a unique tag used by
//!   both encode and decode, a dispatch arm, and a declared replay policy
//!   ([`proto::ReplayPolicy`]).  Deleting any one of those is a lint
//!   failure, so "every request is idempotent at the owner" is a checked
//!   claim, not a comment.
//! * **panic-path** — non-test code in `dds` and `ampc` may not call
//!   `unwrap()` / `expect(` / `panic!` / `unimplemented!` / `todo!`
//!   unannotated.  Intentional panics (owner-side protocol violations
//!   harvested into [`TransportError::PeerClosed`], provably-infallible
//!   decodes) carry a `// lint: allow(panic) — <reason>` on the preceding
//!   line; an allow without a reason is itself a finding.
//! * **const-consistency** — the numeric relationships the replay design
//!   depends on: the commit dedup window covers at least two full
//!   pipelines (`COMMIT_REPLAY_WINDOW ≥ 2 × PIPELINE_DEPTH`), the frame
//!   cap in [`proto`] equals the pool-retention cap in `transport::codec`,
//!   and `MAX_CLUSTER_OWNERS` matches the owner-count arms the `ampc`
//!   runtime monomorphizes.
//! * **blocking-discipline** — no `thread::sleep` or unbounded reads on
//!   the dispatch/session/serve hot paths outside annotated backoff
//!   (`// lint: allow(blocking) — <reason>`); `clippy.toml` bans
//!   `thread::sleep` workspace-wide as the compiler-visible half.

#![warn(missing_docs)]

pub mod backend;
pub mod channel;
pub mod cluster;
pub mod codec;
pub mod contention;
pub mod epoch;
pub mod hashing;
pub mod key;
pub mod legacy;
pub mod proto;
pub mod remote;
pub mod serve;
mod slot;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod transport;

pub use backend::{DdsBackend, LocalBackend, SnapshotView};
pub use channel::{ChannelBackend, ChannelSnapshot};
pub use cluster::ClusterBackend;
pub use codec::{decode_value, encode_value};
pub use contention::{simulate_balls_into_bins, BallsInBinsReport};
pub use epoch::DdsChain;
pub use hashing::{FxBuildHasher, FxHashMap, FxHashSet};
pub use key::{Key, KeyTag, Value};
pub use remote::{FrozenEpoch, RemoteBackend, RemoteSnapshot, TcpBackend};
pub use serve::{serve, serve_cluster, ClusterRole, DdsServer};
pub use snapshot::Snapshot;
pub use stats::{ShardLoad, StoreStats};
pub use store::{default_parallelism, ShardedStore};
pub use transport::{
    MpscTransport, RequestFaults, TcpOptions, TcpTransport, Transport, TransportError,
};

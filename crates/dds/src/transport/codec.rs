//! Codec layer: length-prefixed frames over pooled, reused buffers.
//!
//! [`crate::proto`] defines the byte format; this module owns the *buffer
//! discipline* around it, so the serve path allocates nothing per frame in
//! steady state:
//!
//! * [`FrameReader`] / [`FrameWriter`] — one per connection side.  Each
//!   reuses a single scratch buffer across frames: it grows to the largest
//!   frame the connection has seen and is reused from then on.  Writes go
//!   out through [`crate::proto::write_frame`]'s single vectored
//!   header+payload syscall.
//! * [`FramePool`] — a small shared pool of encoded-frame buffers for the
//!   pipelined server, where the *dispatch* stage encodes a reply and the
//!   *writer* stage flushes it on another thread: the buffer travels down
//!   the reply queue and comes back to the pool once written, instead of
//!   being allocated and freed per reply.
//!
//! `crates/dds/tests/framing_alloc.rs` pins the zero-allocation property
//! with a counting allocator.

use crate::proto::{
    encode_reply_into, encode_request_into, read_frame, write_frame, Reply, Request,
};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::sync::Arc;

/// Read side of one connection: a reusable payload scratch buffer.
#[derive(Default)]
pub struct FrameReader {
    payload: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty scratch (it grows on first use).
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Read the next frame from `reader` into the scratch and return its
    /// payload.  Steady-state allocation-free once the scratch has grown to
    /// the connection's working frame size.
    pub fn read<R: Read>(&mut self, reader: &mut R) -> std::io::Result<&[u8]> {
        read_frame(reader, &mut self.payload)?;
        Ok(&self.payload)
    }
}

/// Write side of one connection: encodes into a reusable scratch buffer and
/// emits each frame with one vectored write.
#[derive(Default)]
pub struct FrameWriter {
    payload: Vec<u8>,
}

impl FrameWriter {
    /// A writer with an empty scratch (it grows on first use).
    pub fn new() -> FrameWriter {
        FrameWriter::default()
    }

    /// Encode `request` into the scratch and write it as one frame.
    pub fn send_request<W: Write>(
        &mut self,
        writer: &mut W,
        request: &Request,
    ) -> std::io::Result<()> {
        encode_request_into(&mut self.payload, request);
        write_frame(writer, &self.payload)
    }

    /// Encode `reply` into the scratch and write it as one frame.
    pub fn send_reply<W: Write>(&mut self, writer: &mut W, reply: &Reply) -> std::io::Result<()> {
        encode_reply_into(&mut self.payload, reply);
        write_frame(writer, &self.payload)
    }
}

/// Buffers a [`FramePool`] retains at most; beyond this, returned buffers
/// are simply freed.  A pipelined connection needs two or three in rotation
/// (one being encoded, one in the queue, one being written), so a small cap
/// bounds the memory a burst of large epoch frames can pin.
const POOL_CAP: usize = 8;

/// Largest buffer capacity the pool will retain — the same number as
/// [`crate::proto::MAX_FRAME_BYTES`], because no legal frame can need more:
/// a returned buffer that somehow grew past the frame cap is freed rather
/// than pinned for a payload size the codec would reject anyway.  The
/// `ampc-lint` const-consistency pass holds the two caps identical.
const MAX_RETAINED_FRAME_BYTES: usize = 256 << 20;

/// A shared pool of encoded-frame buffers, for handing serialized frames
/// between pipeline stages without a fresh allocation per frame.
///
/// Cloning shares the pool.  `take` pops a warm buffer (or starts an empty
/// one); `put` returns a buffer, cleared, capacity retained.
#[derive(Clone, Default)]
pub struct FramePool {
    buffers: Arc<Mutex<Vec<Vec<u8>>>>,
}

impl FramePool {
    /// An empty pool.
    pub fn new() -> FramePool {
        FramePool::default()
    }

    /// Pop a reusable buffer, or start an empty one if the pool is dry.
    pub fn take(&self) -> Vec<u8> {
        self.buffers.lock().pop().unwrap_or_default()
    }

    /// Return a buffer to the pool (cleared, capacity retained) unless the
    /// pool is already at capacity or the buffer outgrew the largest legal
    /// frame.
    pub fn put(&self, mut buffer: Vec<u8>) {
        if buffer.capacity() > MAX_RETAINED_FRAME_BYTES {
            return;
        }
        buffer.clear();
        let mut buffers = self.buffers.lock();
        if buffers.len() < POOL_CAP {
            buffers.push(buffer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{Key, KeyTag, Value};
    use crate::proto::decode_request;

    fn commit() -> Request {
        Request::Commit {
            epoch: 1,
            seq: 2,
            batches: vec![(0, vec![(Key::of(KeyTag::Scalar, 3), Value::scalar(4))])],
        }
    }

    #[test]
    fn reader_and_writer_round_trip_reusing_scratch() {
        let mut wire = Vec::new();
        let mut writer = FrameWriter::new();
        writer.send_request(&mut wire, &commit()).unwrap();
        writer.send_request(&mut wire, &Request::Goodbye).unwrap();

        let mut reader = FrameReader::new();
        let mut stream: &[u8] = &wire;
        let payload = reader.read(&mut stream).unwrap();
        assert_eq!(decode_request(payload), Ok(commit()));
        // The second (smaller) frame reuses the same scratch; the slice is
        // sized to the frame, not to the scratch capacity.
        let payload = reader.read(&mut stream).unwrap();
        assert_eq!(decode_request(payload), Ok(Request::Goodbye));
        assert!(stream.is_empty());
    }

    #[test]
    fn pool_recycles_buffers_and_caps_retention() {
        let pool = FramePool::new();
        let mut buffer = pool.take();
        buffer.extend_from_slice(b"some encoded frame");
        let capacity = buffer.capacity();
        pool.put(buffer);
        let again = pool.take();
        assert!(again.is_empty(), "returned buffers come back cleared");
        assert_eq!(again.capacity(), capacity, "…with their capacity intact");
        pool.put(again);

        // Flooding the pool beyond its cap frees the excess instead of
        // hoarding it.
        for _ in 0..3 * POOL_CAP {
            pool.put(Vec::with_capacity(64));
        }
        assert!(pool.buffers.lock().len() <= POOL_CAP);
    }

    /// A writer that accepts exactly one byte per call, forcing the
    /// vectored write in `write_frame` down its short-write path on every
    /// single byte of header and payload.
    struct OneByteWriter(Vec<u8>);

    impl Write for OneByteWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }

        // Inherit the default `write_vectored`, which forwards to `write`
        // of the first non-empty slice — exactly the "OS took fewer bytes
        // than offered" shape the fallback must absorb.

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_vectored_writes_still_produce_exact_frames() {
        let mut short = OneByteWriter(Vec::new());
        let mut writer = FrameWriter::new();
        writer.send_request(&mut short, &commit()).unwrap();

        let mut full = Vec::new();
        writer.send_request(&mut full, &commit()).unwrap();
        assert_eq!(short.0, full, "byte-identical regardless of write sizes");

        let mut reader = FrameReader::new();
        let mut stream: &[u8] = &short.0;
        let payload = reader.read(&mut stream).unwrap();
        assert_eq!(decode_request(payload), Ok(commit()));
    }

    /// A writer that dies after `n` accepted bytes — `write_frame` must
    /// surface `WriteZero`, not spin.
    struct DyingWriter {
        remaining: usize,
    }

    impl Write for DyingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.remaining);
            self.remaining -= n;
            Ok(n)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writers_that_stop_accepting_bytes_error_out() {
        for remaining in 0..8 {
            let mut dying = DyingWriter { remaining };
            let mut writer = FrameWriter::new();
            let err = writer.send_request(&mut dying, &commit()).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::WriteZero, "{remaining}");
        }
    }
}

//! Transports carrying the [`crate::proto`] protocol between a backend and
//! its shard-group owners — split into three layers:
//!
//! * [`codec`] — byte-level framing over **pooled, reused buffers**: a
//!   [`codec::FrameReader`] / [`codec::FrameWriter`] pair per connection
//!   side reuses one scratch buffer across frames (zero steady-state
//!   allocations), and every frame goes out through a single vectored
//!   header+payload write.  [`codec::FramePool`] recycles encoded-reply
//!   buffers between the dispatch and reply stages of a pipelined server.
//! * [`session`] (this module's re-exports) — one *connection* and its
//!   lifecycle: the lease handshake, reconnect with capped backoff, and
//!   in-order replay of outstanding requests ([`TcpTransport`] /
//!   [`TcpServer`]), plus the in-process [`MpscTransport`].
//! * [`dispatch`] — request application against the owner state machine
//!   (`dispatch::Worker`), including the idempotency that makes replay
//!   safe: commit deduplication over a bounded window of recent sequence
//!   numbers and advance republication of the already-frozen epoch.
//!
//! A transport is one *connection* (logically: the TCP transport survives
//! reconnects): the backend holds the client half ([`Transport`]), the owner
//! thread (or process) serves the server half ([`ServerTransport`]).
//!
//! # Pipelining
//!
//! Requests and replies pair up positionally (FIFO per connection), so a
//! client may issue many requests before receiving — each tagged with its
//! idempotency sequence number.  The TCP server runs each connection as
//! three stages: a *reader* thread decodes request `N + 1` while the owner
//! thread *dispatches* request `N`, and a *writer* thread flushes the reply
//! to `N - 1` — so the socket, the codec and the state machine all stay
//! busy at once.  The stage queues are bounded
//! ([`PIPELINE_DEPTH`] frames each way), which is the server's
//! maximum decode-ahead window and its backpressure: a client that floods
//! faster than the owner applies eventually blocks in the socket, exactly
//! like an unpipelined server, only `2 × PIPELINE_DEPTH` frames later.
//!
//! Ordering guarantees are unchanged from the one-in-flight path: requests
//! are applied in arrival order, replies are sent in application order, and
//! the reply to request `N` is written before the reply to `N + 1`.
//! Pipelining composes with reconnect (below) because the client's replay
//! queue holds *every* request whose reply is outstanding, in order — a
//! sever with six commits in flight replays all six under the lease, and
//! the dispatch layer's deduplication window acknowledges the already-
//! applied prefix without re-applying it.
//!
//! Two implementations ship in-tree:
//!
//! * [`MpscTransport`] — in-process channels.  Requests travel as typed
//!   values (no serialization), and the `Advance` reply exercises the
//!   transport's *shared-memory capability*: the owner publishes the frozen
//!   epoch as an `Arc` ([`ClientReply::SharedEpoch`]) instead of
//!   serializing it, which is the zero-copy fast path
//!   [`crate::ChannelBackend`] has always had.
//! * [`TcpTransport`] — sockets speaking length-prefixed [`crate::proto`]
//!   frames (`std::net`, no external dependencies).  Every message
//!   round-trips through the byte codec; `Advance` replies carry the full
//!   [`crate::proto::EpochFrame`] so the client can rebuild a local replica
//!   of the frozen maps.
//!
//! # Connection lifecycle: lease → serve → reconnect → expire
//!
//! The first frame of every TCP connection is a [`Request::Lease`]
//! identifying `(session, worker)` and asking for a lease of `ttl_ms`
//! milliseconds; the server answers [`crate::proto::Reply::LeaseGranted`]
//! before any other reply.  From then on the *owner* owns liveness:
//!
//! * while the socket is **connected**, requests renew the lease implicitly
//!   (a slow round is not a dead client — expiry is never enforced against
//!   a healthy connection, not even one whose pipelined replies are still
//!   being flushed);
//! * when the socket **drops without a [`Request::Goodbye`]**, the owner
//!   holds the session open and waits for a reconnect until the lease
//!   expires, then reclaims the session (pending commits included);
//! * a **clean shutdown** sends `Goodbye` (the client's `Drop` does), so
//!   the owner releases the session immediately.  Under pipelining both
//!   sides drain first: the client receives every outstanding reply before
//!   its goodbye goes out, and the server flushes every queued reply before
//!   releasing the session — a clean shutdown never orphans an in-flight
//!   request.
//!
//! The client side mirrors this: any I/O failure on send or receive
//! triggers **automatic reconnection** with capped exponential backoff
//! ([`TcpOptions`]).  On reconnect the client replays the lease handshake
//! and then *every request whose reply is still outstanding*, in order.
//! That replay is safe because every request is idempotent at the owner:
//! `Commit` is deduplicated by sequence number (over a window deep enough
//! for a full pipeline of outstanding commits), `Advance` re-publishes the
//! already-frozen epoch, and `Loads` / `Dump` / `TotalWrites` are pure
//! reads.  A reconnect that lands on an owner which already reclaimed the
//! session (lease expired) surfaces as the typed
//! [`TransportError::LeaseLost`] — continuing silently would resurrect a
//! session whose pending state is gone.
//!
//! # Fault injection
//!
//! [`RequestFaults`] schedules request-level faults.  Two classes exist:
//!
//! * **drops** — "lose the reply of the `Commit` targeting epoch 3 on
//!   worker 1".  The request is delivered, its reply is dropped in transit,
//!   and the transport retransmits the identical request — exactly the
//!   drop-then-retry a real RPC layer performs when an acknowledgement goes
//!   missing.  The owner receives the request **twice** and must apply it
//!   exactly once.
//! * **severs** — "cut the TCP connection right before the `Commit`
//!   targeting epoch 3 on worker 1".  The socket is shut down mid-round;
//!   the transport's reconnect machinery must bring the connection back and
//!   replay the outstanding requests idempotently.  Only [`TcpTransport`]
//!   honors severs (in-process channels have no connection to cut);
//!   in-process transports leave the schedule untouched.
//!
//! The cross-backend suites assert results are byte-identical with and
//! without faults, which fails loudly if the idempotence ever regresses.
//!
//! # Failure surface
//!
//! Every client operation returns a typed [`TransportError`] instead of
//! hanging, panicking inside the transport thread, or dying on a broken
//! channel.  Socket errors are classified (`PeerClosed` vs `Io`),
//! `set_nodelay` failures are propagated on the client and logged once on
//! the server (never silently discarded), and when an owner thread panics,
//! the backend joins it and attaches the panic payload to the
//! [`TransportError::PeerClosed`] it surfaces — see [`crate::RemoteBackend`].

pub mod codec;
pub(crate) mod dispatch;
mod session;

pub use session::{
    fresh_session_id, MpscServer, MpscTransport, TcpOptions, TcpServer, TcpTransport,
    PIPELINE_DEPTH,
};
pub(crate) use session::{read_lease_frame, LeaseFrame, ServeHandoff};

use crate::proto::{ProtoError, Reply, Request, RequestKind};
use crate::remote::FrozenEpoch;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Typed failure of a transport operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The owner side of the connection is gone (and, for TCP, stayed gone
    /// through every reconnect attempt).  If the owner thread died
    /// panicking, `panic` carries its payload (attached by the backend,
    /// which owns the join handle).
    PeerClosed {
        /// Worker whose connection closed.
        worker: usize,
        /// Panic payload of the dead owner, when one could be harvested.
        panic: Option<String>,
    },
    /// An I/O error on the connection (after reconnect attempts, for TCP).
    Io {
        /// Worker whose connection failed.
        worker: usize,
        /// Stringified `std::io::Error`.
        message: String,
    },
    /// A frame arrived but did not decode.
    Proto {
        /// Worker whose frame was malformed.
        worker: usize,
        /// The decode failure.
        error: ProtoError,
    },
    /// A well-formed reply of the wrong variant for the pending request.
    Protocol {
        /// Worker that answered out of protocol.
        worker: usize,
        /// Description of the mismatch.
        message: String,
    },
    /// A reconnect reached the owner, but the owner had already reclaimed
    /// the session: the lease expired while the client was away.  The
    /// session's pending commits are gone, so the client must not continue.
    LeaseLost {
        /// Worker whose lease expired.
        worker: usize,
        /// The session that was reclaimed.
        session: u64,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::PeerClosed {
                worker,
                panic: Some(message),
            } => write!(f, "DDS owner {worker} panicked: {message}"),
            TransportError::PeerClosed {
                worker,
                panic: None,
            } => write!(f, "DDS owner {worker} closed the connection"),
            TransportError::Io { worker, message } => {
                write!(f, "I/O error talking to DDS owner {worker}: {message}")
            }
            TransportError::Proto { worker, error } => {
                write!(f, "malformed frame from DDS owner {worker}: {error}")
            }
            TransportError::Protocol { worker, message } => {
                write!(f, "protocol violation from DDS owner {worker}: {message}")
            }
            TransportError::LeaseLost { worker, session } => write!(
                f,
                "DDS owner {worker} reclaimed session {session:#x}: the lease expired before the client reconnected"
            ),
        }
    }
}

impl std::error::Error for TransportError {}

// ---------------------------------------------------------------------------
// Request-level fault injection
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct FaultsInner {
    /// Scheduled one-shot reply drops: (kind, epoch, worker).
    drops: Mutex<HashSet<(RequestKind, usize, usize)>>,
    /// Scheduled one-shot connection severs: (kind, epoch, worker).
    severs: Mutex<HashSet<(RequestKind, usize, usize)>>,
    /// Requests dropped (and retried) so far.
    dropped: AtomicU64,
    /// Connections severed (and re-established) so far.
    severed: AtomicU64,
}

/// A schedule of request-level faults, shared between a backend's transports.
///
/// Each scheduled entry fires once.  **Drops** deliver the matching request,
/// lose its *reply* in transit, and retransmit the identical request — the
/// retry a real RPC layer issues when an acknowledgement goes missing; the
/// owner sees the request twice and must treat the second copy idempotently
/// (commit deduplication by sequence number, advance replay of the
/// already-frozen epoch).  **Severs** cut the TCP connection immediately
/// before the matching request is transmitted — the mid-round socket loss a
/// real deployment must absorb; the transport reconnects with backoff,
/// replays the lease handshake and the outstanding requests, and the run
/// must stay byte-identical.  Only the write-side requests (`Commit`,
/// `Advance`) are addressable — they are the ones a real deployment must
/// retry; reads are served from immutable local epochs and never cross the
/// wire.
///
/// Cloning shares the schedule (transports of one backend consult one
/// ledger).
#[derive(Clone, Debug, Default)]
pub struct RequestFaults {
    inner: Arc<FaultsInner>,
}

impl RequestFaults {
    /// An empty schedule.
    pub fn none() -> Self {
        RequestFaults::default()
    }

    /// Schedule the `kind` request targeting `epoch` on `worker` to lose
    /// its reply in transit, forcing a retransmission of the request.
    pub fn schedule_drop(&self, kind: RequestKind, epoch: usize, worker: usize) {
        self.inner.drops.lock().insert((kind, epoch, worker));
    }

    /// Schedule the connection to `worker` to be severed right before the
    /// `kind` request targeting `epoch` is transmitted.  Only transports
    /// with a connection to cut ([`TcpTransport`]) consult sever entries.
    pub fn schedule_sever(&self, kind: RequestKind, epoch: usize, worker: usize) {
        self.inner.severs.lock().insert((kind, epoch, worker));
    }

    /// Consume a scheduled drop for these coordinates, if one exists,
    /// counting it as fired.
    pub fn should_drop(&self, kind: RequestKind, epoch: usize, worker: usize) -> bool {
        let fired = self.inner.drops.lock().remove(&(kind, epoch, worker));
        if fired {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Consume a scheduled sever for these coordinates, if one exists,
    /// counting it as fired.
    pub fn should_sever(&self, kind: RequestKind, epoch: usize, worker: usize) -> bool {
        let fired = self.inner.severs.lock().remove(&(kind, epoch, worker));
        if fired {
            self.inner.severed.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Faults fired so far (one lost reply + retransmission each).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Connections severed (and re-established) so far.
    pub fn severed(&self) -> u64 {
        self.inner.severed.load(Ordering::Relaxed)
    }

    /// `true` if no drops or severs remain scheduled.
    pub fn is_empty(&self) -> bool {
        self.inner.drops.lock().is_empty() && self.inner.severs.lock().is_empty()
    }
}

/// The fault-injection coordinates of a request, if it is addressable.
fn fault_coordinates(request: &Request) -> Option<(RequestKind, usize)> {
    match request {
        Request::Commit { epoch, .. } => Some((RequestKind::Commit, *epoch)),
        Request::Advance { epoch } => Some((RequestKind::Advance, *epoch)),
        Request::FreezeEpoch { epoch } => Some((RequestKind::FreezeEpoch, *epoch)),
        Request::PublishEpoch { epoch } => Some((RequestKind::PublishEpoch, *epoch)),
        _ => None,
    }
}

/// Best-effort extraction of a panic payload's message (panics carry
/// `String` or `&str` payloads in practice).
///
/// Shared by the backend's owner-thread harvesting and the runtime's
/// round-boundary `catch_unwind`, so the two failure paths can never
/// diverge in how they read a payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
}

// ---------------------------------------------------------------------------
// The transport traits
// ---------------------------------------------------------------------------

/// What a client receives for one request.
pub enum ClientReply {
    /// A decoded wire reply.
    Wire(Reply),
    /// The frozen epoch published as shared memory — the zero-copy fast
    /// path of in-process transports ([`MpscTransport`]).  Wire transports
    /// deliver [`Reply::Epoch`] instead.
    SharedEpoch(Arc<FrozenEpoch>),
}

/// What an owner hands its transport to answer one request.
pub enum OwnerReply {
    /// An ordinary wire reply.
    Wire(Reply),
    /// A freshly frozen epoch.  Shared-memory transports forward the `Arc`
    /// as-is ([`ClientReply::SharedEpoch`]); wire transports serialize it
    /// into a [`Reply::Epoch`] frame.
    Epoch(Arc<FrozenEpoch>),
}

/// Client half of one backend↔owner connection.
pub trait Transport: Send + Sized + 'static {
    /// Backend label reported by `DdsBackend::backend_name` (`"channel"`
    /// for [`MpscTransport`], `"remote"` for [`TcpTransport`]).
    const NAME: &'static str;

    /// The server half handed to the owner thread.
    type Server: ServerTransport;

    /// Establish one connection for `worker`, returning both halves.
    fn connect(worker: usize) -> (Self, Self::Server);

    /// Install the fault schedule this transport consults on every send.
    fn install_faults(&mut self, faults: RequestFaults);

    /// Transmit one request.  If the fault schedule matches, the scheduled
    /// fault is injected (reply lost + retransmission, or connection
    /// severed + reconnect) — the caller still receives exactly one reply.
    /// Does not wait for that reply, so callers may pipeline several sends
    /// before receiving.
    fn send(&mut self, request: Request) -> Result<(), TransportError>;

    /// Receive the reply to the oldest unanswered request.
    fn recv(&mut self) -> Result<ClientReply, TransportError>;
}

/// Server (owner) half of one backend↔owner connection.
pub trait ServerTransport: Send + 'static {
    /// Next request, or `None` when the client is gone for good (clean
    /// goodbye, channel hangup, or an expired lease) — the owner exits.
    fn recv_request(&mut self) -> Option<Request>;

    /// Answer the current request; `false` when the client is gone.
    /// Reconnecting transports report `true` on a lost reply — the client
    /// replays the request after reconnecting, so serving continues.
    fn send_reply(&mut self, reply: OwnerReply) -> bool;

    /// Session id of the client whose request [`Self::recv_request`] last
    /// returned.  Dispatch keys its commit-replay windows by this, so two
    /// clients multiplexed onto one owner keep isolated replay memory.
    /// Transports that serve exactly one anonymous client report `0`.
    fn session(&self) -> u64 {
        0
    }
}

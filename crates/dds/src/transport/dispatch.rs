//! Dispatch layer: applying decoded requests against the owner state.
//!
//! [`Worker`] is the single-threaded state machine of one shard-group
//! owner.  It is transport-generic — the identical loop runs behind
//! in-process channels, paired sockets and `ampc_dds::serve` sessions — and
//! it owns the *idempotency* that makes the session layer's replay safe:
//!
//! * `Commit` requests are deduplicated over a bounded window of recently
//!   applied sequence numbers, kept **per `(session, worker)`**: each
//!   session that reaches this worker gets its own window, so two clients
//!   of one owner can never evict each other's replay memory.  The window
//!   must be at least as deep as the client's maximum pipeline of
//!   outstanding commits: a reconnect replays *all* of them, and every
//!   already-applied one must be re-acknowledged from the window rather
//!   than re-applied.  (A single-entry "last seq" memory — sufficient when
//!   one request was in flight at a time — would re-apply every replayed
//!   commit but the newest.)
//! * `Advance` retransmissions re-publish the already-frozen epoch.
//! * `FreezeEpoch` / `PublishEpoch` — the cluster's two-phase barrier —
//!   are each idempotent: a replayed freeze of a prepared (or published)
//!   epoch is re-acked, a replayed publish re-sends the published frame,
//!   and a prepared-but-unpublished epoch survives a reconnect and is
//!   publishable afterwards.
//! * `Loads` / `Dump` / `TotalWrites` are pure reads.
//!
//! Connection-lifecycle requests (`Lease`, `Goodbye`) are consumed entirely
//! by the session layer and never reach dispatch.

use crate::hashing::FxHashMap;
use crate::key::Key;
use crate::proto::{Reply, Request};
use crate::remote::FrozenEpoch;
use crate::slot::Slot;
use crate::stats::ShardLoad;
use crate::transport::{OwnerReply, ServerTransport};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Commit acknowledgements remembered for deduplication.  Must exceed the
/// deepest request pipeline a client can have outstanding
/// (`session::PIPELINE_DEPTH` decode-ahead plus the frames buffered in the
/// sockets), so a reconnect's full replay is absorbed without re-applying.
const COMMIT_REPLAY_WINDOW: usize = 256;

/// The single-threaded state of one shard-group owner, serving
/// [`crate::proto`] requests over any [`ServerTransport`].
pub(crate) struct Worker {
    /// Global shard ids owned by this worker (ascending).
    shard_ids: Vec<usize>,
    /// Writable maps of the current epoch, one per owned shard.
    writable: Vec<FxHashMap<Key, Slot>>,
    /// Writes accepted into the current epoch, per owned shard.
    writable_writes: Vec<u64>,
    /// Published epochs, in order; the owner keeps its own handle so it can
    /// serve `Loads` / `Dump` for epochs whose views are long gone.
    frozen: Vec<Arc<FrozenEpoch>>,
    /// An epoch frozen by `FreezeEpoch` but not yet released by
    /// `PublishEpoch` — phase 1 of the two-phase barrier parks it here, so
    /// it is never observable through `Loads` / `Dump` (which only see
    /// `frozen`) until every owner has acked its freeze and the coordinator
    /// publishes.
    prepared: Option<Arc<FrozenEpoch>>,
    /// Total writes accepted across all epochs.
    total_writes: u64,
    /// `(seq, accepted)` of recently applied commits, oldest first, bounded
    /// by [`COMMIT_REPLAY_WINDOW`] **per session**: a retransmitted commit
    /// (its ack lost in transit, or a severed pipeline replayed) is
    /// re-acknowledged from here without being re-applied — at-least-once
    /// delivery, exactly-once application.  Keyed by session so that when
    /// one worker serves several clients, their seq spaces stay isolated
    /// and one client's burst cannot evict another's replay window.
    recent_commits: FxHashMap<u64, VecDeque<(u64, u64)>>,
}

impl Worker {
    pub(crate) fn new(shard_ids: Vec<usize>) -> Worker {
        Worker {
            writable: (0..shard_ids.len()).map(|_| FxHashMap::default()).collect(),
            writable_writes: vec![0; shard_ids.len()],
            shard_ids,
            frozen: Vec::new(),
            prepared: None,
            total_writes: 0,
            recent_commits: FxHashMap::default(),
        }
    }

    /// Serve requests until the client goes away.  Transport-generic: the
    /// identical loop runs behind in-process channels and sockets.  Behind
    /// the pipelined TCP server this loop *is* the dispatch stage — the
    /// reader stage decodes ahead and the writer stage flushes behind, so
    /// `recv_request` and `send_reply` only touch bounded in-process
    /// queues.
    pub(crate) fn serve<S: ServerTransport>(mut self, mut transport: S) {
        while let Some(request) = transport.recv_request() {
            let session = transport.session();
            let reply = self.handle(session, request);
            if !transport.send_reply(reply) {
                break;
            }
        }
    }

    /// A completed epoch, validated (protocol violations are owner bugs or a
    /// confused client and panic — the transport layer turns the dead
    /// connection into a typed error on the client side).
    fn completed(&self, epoch: usize, what: &str) -> &Arc<FrozenEpoch> {
        assert!(
            epoch < self.frozen.len(),
            "owner asked to {what} unknown epoch {epoch} ({} completed)",
            self.frozen.len()
        );
        &self.frozen[epoch]
    }

    /// Freeze the writable maps in place and hand them over as one epoch;
    /// shared by `Advance` (freeze + publish in one step) and
    /// `FreezeEpoch` (phase 1 of the barrier, which parks the result).
    fn freeze_writable(&mut self) -> Arc<FrozenEpoch> {
        let shard_count = self.shard_ids.len();
        // In-place freeze: reuse the writable maps as the frozen maps,
        // only shrinking the rare multi-value slots.
        let mut shards = std::mem::replace(
            &mut self.writable,
            (0..shard_count).map(|_| FxHashMap::default()).collect(),
        );
        for map in &mut shards {
            crate::slot::freeze_map_in_place(map);
        }
        let writes = std::mem::replace(&mut self.writable_writes, vec![0; shard_count]);
        Arc::new(FrozenEpoch {
            shards,
            writes,
            reads: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Index of the epoch commits currently build: the published count,
    /// plus one if an epoch is frozen-but-unpublished (its successor is
    /// already accepting writes while the barrier completes).
    fn writable_epoch(&self) -> usize {
        self.frozen.len() + usize::from(self.prepared.is_some())
    }

    fn handle(&mut self, session: u64, request: Request) -> OwnerReply {
        match request {
            Request::Commit {
                epoch,
                seq,
                batches,
            } => {
                // Deduplicate before validating the epoch: a replayed
                // pipeline can carry commits of an epoch that has since
                // been frozen, and those must be re-acked, not asserted on.
                let window = self.recent_commits.entry(session).or_default();
                if let Some(&(_, accepted)) = window.iter().find(|&&(applied, _)| applied == seq) {
                    return OwnerReply::Wire(Reply::Committed { epoch, accepted });
                }
                assert_eq!(
                    epoch,
                    self.writable_epoch(),
                    "commit must target the writable epoch"
                );
                let mut accepted = 0u64;
                for (local, pairs) in batches {
                    accepted += pairs.len() as u64;
                    self.writable_writes[local] += pairs.len() as u64;
                    self.total_writes += pairs.len() as u64;
                    let map = &mut self.writable[local];
                    map.reserve(pairs.len());
                    for (key, value) in pairs {
                        match map.entry(key) {
                            std::collections::hash_map::Entry::Occupied(mut slot) => {
                                slot.get_mut().push(value)
                            }
                            std::collections::hash_map::Entry::Vacant(slot) => {
                                slot.insert(Slot::One(value));
                            }
                        }
                    }
                }
                let window = self
                    .recent_commits
                    .get_mut(&session)
                    // lint: allow(panic) — infallible: the entry was inserted a few lines up
                    .expect("window created above");
                window.push_back((seq, accepted));
                if window.len() > COMMIT_REPLAY_WINDOW {
                    window.pop_front();
                }
                OwnerReply::Wire(Reply::Committed { epoch, accepted })
            }
            Request::Advance { epoch } => {
                assert!(
                    self.prepared.is_none(),
                    "advance while an epoch is prepared: a connection must \
                     speak either the one-shot advance or the two-phase \
                     barrier, not both"
                );
                if epoch + 1 == self.frozen.len() {
                    // Retransmission of the advance that froze the last
                    // epoch (its reply was lost): republish it unchanged.
                    // lint: allow(panic) — infallible: frozen.len() == epoch + 1 ≥ 1 in this branch
                    let replay = self.frozen.last().expect("a frozen epoch exists").clone();
                    return OwnerReply::Epoch(replay);
                }
                assert_eq!(
                    epoch,
                    self.frozen.len(),
                    "advance must freeze the writable epoch"
                );
                let epoch = self.freeze_writable();
                self.frozen.push(epoch.clone());
                OwnerReply::Epoch(epoch)
            }
            Request::FreezeEpoch { epoch } => {
                if self.prepared.is_some() {
                    // A replayed freeze of the epoch already parked: re-ack
                    // without touching the writable maps (which now belong
                    // to the next epoch).
                    assert_eq!(
                        epoch,
                        self.frozen.len(),
                        "freeze replay must name the prepared epoch"
                    );
                    return OwnerReply::Wire(Reply::EpochFrozen { epoch });
                }
                if epoch + 1 == self.frozen.len() {
                    // Freeze and publish both completed before the replay
                    // arrived (the sever hit after the barrier finished).
                    return OwnerReply::Wire(Reply::EpochFrozen { epoch });
                }
                assert_eq!(
                    epoch,
                    self.frozen.len(),
                    "freeze must target the writable epoch"
                );
                self.prepared = Some(self.freeze_writable());
                OwnerReply::Wire(Reply::EpochFrozen { epoch })
            }
            Request::PublishEpoch { epoch } => {
                if epoch + 1 == self.frozen.len() {
                    // Retransmission of a publish whose reply was lost:
                    // re-send the identical frame.
                    // lint: allow(panic) — infallible: frozen.len() == epoch + 1 ≥ 1 in this branch
                    let replay = self.frozen.last().expect("a frozen epoch exists").clone();
                    return OwnerReply::Epoch(replay);
                }
                assert_eq!(
                    epoch,
                    self.frozen.len(),
                    "publish must name the prepared epoch"
                );
                let prepared = self
                    .prepared
                    .take()
                    // lint: allow(panic) — owner-side protocol violation: panics are the owner's error surface, harvested into TransportError::PeerClosed at the round boundary
                    .expect("publish without a prepared freeze");
                self.frozen.push(prepared.clone());
                OwnerReply::Epoch(prepared)
            }
            Request::Loads { epoch } => {
                let epoch = self.completed(epoch, "report loads of");
                let loads = self
                    .shard_ids
                    .iter()
                    .enumerate()
                    .map(|(local, &shard)| ShardLoad {
                        shard,
                        keys: epoch.shards[local].len() as u64,
                        writes: epoch.writes[local],
                        reads: epoch.reads[local].load(Ordering::Relaxed),
                    })
                    .collect();
                OwnerReply::Wire(Reply::Loads(loads))
            }
            Request::Dump { epoch } => {
                let epoch = self.completed(epoch, "dump");
                let mut entries = Vec::new();
                for shard in &epoch.shards {
                    for (key, slot) in shard {
                        entries.push((*key, slot.as_slice().to_vec()));
                    }
                }
                OwnerReply::Wire(Reply::Dump(entries))
            }
            Request::TotalWrites => OwnerReply::Wire(Reply::TotalWrites(self.total_writes)),
            // Connection-lifecycle requests are consumed by the transport /
            // serve layer and must never reach the owner state machine; one
            // arriving here is a protocol bug, surfaced like any other
            // owner-side violation (panic, harvested into a typed error).
            Request::Lease { .. } | Request::Goodbye => {
                // lint: allow(panic) — owner-side protocol violation: panics are the owner's error surface, harvested into TransportError::PeerClosed at the round boundary
                panic!("connection-lifecycle request leaked into the owner state machine")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{KeyTag, Value};

    fn commit(seq: u64, epoch: usize, pairs: u64) -> Request {
        Request::Commit {
            epoch,
            seq,
            batches: vec![(
                0,
                (0..pairs)
                    .map(|i| (Key::of(KeyTag::Scalar, seq * 100 + i), Value::scalar(i)))
                    .collect(),
            )],
        }
    }

    fn accepted(reply: OwnerReply) -> u64 {
        match reply {
            OwnerReply::Wire(Reply::Committed { accepted, .. }) => accepted,
            _ => panic!("expected a commit ack"),
        }
    }

    #[test]
    fn replayed_pipelines_are_reacked_from_the_window_not_reapplied() {
        let mut worker = Worker::new(vec![0]);
        // A pipeline of six commits lands…
        for seq in 0..6 {
            assert_eq!(accepted(worker.handle(0, commit(seq, 0, 3))), 3);
        }
        assert_eq!(worker.total_writes, 18);
        // …then the connection severs and the client replays all six (its
        // acks were in flight).  Every one must be re-acked with the
        // original count, none re-applied — a single-entry "last seq"
        // memory would only catch seq 5.
        for seq in 0..6 {
            assert_eq!(accepted(worker.handle(0, commit(seq, 0, 3))), 3);
        }
        assert_eq!(worker.total_writes, 18, "replay must not double-apply");

        // Fresh sequence numbers still apply normally after the replay.
        assert_eq!(accepted(worker.handle(0, commit(6, 0, 2))), 2);
        assert_eq!(worker.total_writes, 20);
    }

    #[test]
    fn replayed_commits_of_a_frozen_epoch_are_reacked() {
        let mut worker = Worker::new(vec![0]);
        assert_eq!(accepted(worker.handle(0, commit(0, 0, 4))), 4);
        // The epoch freezes while the commit's ack is lost in flight…
        let OwnerReply::Epoch(_) = worker.handle(0, Request::Advance { epoch: 0 }) else {
            panic!("advance must publish the epoch");
        };
        // …and the replayed commit still names epoch 0.  The window must
        // re-ack it (the epoch assert would otherwise reject the replay).
        assert_eq!(accepted(worker.handle(0, commit(0, 0, 4))), 4);
        assert_eq!(worker.total_writes, 4);
    }

    #[test]
    fn the_window_is_bounded() {
        let mut worker = Worker::new(vec![0]);
        for seq in 0..(2 * COMMIT_REPLAY_WINDOW as u64) {
            worker.handle(0, commit(seq, 0, 1));
        }
        let window = &worker.recent_commits[&0];
        assert_eq!(window.len(), COMMIT_REPLAY_WINDOW);
        // The retained half is the most recent — the half a replay can
        // still name.
        assert_eq!(
            window.front().map(|&(seq, _)| seq),
            Some(COMMIT_REPLAY_WINDOW as u64)
        );
    }

    #[test]
    fn concurrent_sessions_cannot_evict_each_others_replay_windows() {
        // Two clients of one owner, overlapping seq spaces.  Session B
        // bursts a full window's worth of commits; session A's older seqs
        // must still be re-acked from A's own window — with a single
        // shared window, B's burst would have evicted them and the replay
        // would double-apply.
        let mut worker = Worker::new(vec![0]);
        for seq in 0..4 {
            assert_eq!(accepted(worker.handle(7, commit(seq, 0, 2))), 2);
        }
        for seq in 0..COMMIT_REPLAY_WINDOW as u64 {
            assert_eq!(accepted(worker.handle(8, commit(seq, 0, 1))), 1);
        }
        let before = worker.total_writes;
        // Both clients sever and replay concurrently (interleaved).
        for seq in 0..4 {
            assert_eq!(
                accepted(worker.handle(7, commit(seq, 0, 2))),
                2,
                "session 7's replay of seq {seq} must re-ack, not re-apply"
            );
            assert_eq!(accepted(worker.handle(8, commit(seq, 0, 1))), 1);
        }
        assert_eq!(
            worker.total_writes, before,
            "neither session's replay may double-apply"
        );
    }

    #[test]
    fn freeze_then_publish_equals_advance_and_is_idempotent() {
        let mut worker = Worker::new(vec![0]);
        assert_eq!(accepted(worker.handle(0, commit(0, 0, 3))), 3);

        // Phase 1: the epoch freezes but stays unpublished — Loads/Dump
        // must not see it yet (no mixed epoch is ever observable).
        let OwnerReply::Wire(Reply::EpochFrozen { epoch: 0 }) =
            worker.handle(0, Request::FreezeEpoch { epoch: 0 })
        else {
            panic!("freeze must be acked");
        };
        assert_eq!(worker.frozen.len(), 0, "prepared epochs are not published");

        // A replayed freeze (reply lost, connection replayed) re-acks.
        let OwnerReply::Wire(Reply::EpochFrozen { epoch: 0 }) =
            worker.handle(0, Request::FreezeEpoch { epoch: 0 })
        else {
            panic!("freeze replay must be re-acked");
        };
        assert_eq!(worker.frozen.len(), 0);

        // Commits for the *next* epoch are already accepted while the
        // barrier is still completing.
        assert_eq!(accepted(worker.handle(0, commit(1, 1, 2))), 2);

        // Phase 2 publishes the prepared epoch…
        let OwnerReply::Epoch(published) = worker.handle(0, Request::PublishEpoch { epoch: 0 })
        else {
            panic!("publish must answer with the epoch");
        };
        assert_eq!(published.writes, vec![3]);
        assert_eq!(worker.frozen.len(), 1);

        // …and a replayed publish after a reconnect re-sends the same
        // frame (a prepared-but-unpublished epoch must be re-publishable
        // idempotently; an already-published one re-publishes).
        let OwnerReply::Epoch(replayed) = worker.handle(0, Request::PublishEpoch { epoch: 0 })
        else {
            panic!("publish replay must answer with the epoch");
        };
        assert!(Arc::ptr_eq(&published, &replayed));
        assert_eq!(worker.frozen.len(), 1, "replay must not double-publish");

        // A replayed freeze of the now-published epoch is also re-acked.
        let OwnerReply::Wire(Reply::EpochFrozen { epoch: 0 }) =
            worker.handle(0, Request::FreezeEpoch { epoch: 0 })
        else {
            panic!("freeze replay after publish must be re-acked");
        };
        assert_eq!(worker.frozen.len(), 1);
    }

    #[test]
    #[should_panic(expected = "publish without a prepared freeze")]
    fn publish_without_freeze_is_a_protocol_violation() {
        let mut worker = Worker::new(vec![0]);
        worker.handle(0, Request::PublishEpoch { epoch: 0 });
    }
}

//! Session layer: one *connection* and its lifecycle.
//!
//! The types here own everything between the codec and the owner state
//! machine: the lease handshake, reconnection with capped backoff, in-order
//! replay of outstanding requests, and the pipelined per-connection stages
//! of the TCP server (reader thread → dispatch → writer thread).  The
//! protocol semantics — leases, replay idempotency, fault injection — are
//! documented on [the parent module](super).

use super::codec::{FramePool, FrameReader, FrameWriter};
use super::{
    fault_coordinates, ClientReply, OwnerReply, RequestFaults, ServerTransport, Transport,
    TransportError,
};
use crate::proto::{
    decode_reply, decode_request, encode_reply_into, read_frame, write_frame, ProtoError, Reply,
    Request, ShardMap,
};
use std::collections::VecDeque;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Frames each stage queue of a pipelined server connection buffers: the
/// reader decodes up to this many requests ahead of dispatch, and dispatch
/// queues up to this many encoded replies ahead of the writer.  This is the
/// server's maximum decode-ahead window *and* its backpressure: a client
/// that floods faster than the owner applies eventually blocks in the
/// socket, exactly like an unpipelined server, only `2 × PIPELINE_DEPTH`
/// frames later.
pub const PIPELINE_DEPTH: usize = 64;

/// Deepest pipeline of outstanding requests one client may hold.  Must stay
/// below the dispatch layer's commit-deduplication window (256): a sever
/// replays *every* outstanding request, and each already-applied commit
/// must still be inside the window to be re-acked instead of re-applied.
const MAX_PIPELINE: usize = 128;

// ---------------------------------------------------------------------------
// MpscTransport — in-process channels, zero-copy epoch publication
// ---------------------------------------------------------------------------

/// In-process transport over `std::sync::mpsc` channels.
///
/// Requests travel as typed values; `Advance` replies carry the frozen epoch
/// as a shared `Arc` (the zero-copy capability wire transports lack).
pub struct MpscTransport {
    worker: usize,
    requests: Sender<Request>,
    replies: Receiver<OwnerReply>,
    faults: RequestFaults,
}

/// Server half of an [`MpscTransport`].
pub struct MpscServer {
    requests: Receiver<Request>,
    replies: Sender<OwnerReply>,
}

impl MpscTransport {
    fn transmit(&mut self, request: Request) -> Result<(), TransportError> {
        self.requests
            .send(request)
            .map_err(|_| TransportError::PeerClosed {
                worker: self.worker,
                panic: None,
            })
    }
}

impl Transport for MpscTransport {
    const NAME: &'static str = "channel";
    type Server = MpscServer;

    fn connect(worker: usize) -> (Self, MpscServer) {
        let (request_tx, request_rx) = channel();
        let (reply_tx, reply_rx) = channel();
        (
            MpscTransport {
                worker,
                requests: request_tx,
                replies: reply_rx,
                faults: RequestFaults::none(),
            },
            MpscServer {
                requests: request_rx,
                replies: reply_tx,
            },
        )
    }

    fn install_faults(&mut self, faults: RequestFaults) {
        self.faults = faults;
    }

    fn send(&mut self, request: Request) -> Result<(), TransportError> {
        // Severs are not consulted: an in-process channel has no connection
        // to cut, so scheduled severs stay untouched (and unfired) here.
        if let Some((kind, epoch)) = fault_coordinates(&request) {
            if self.faults.should_drop(kind, epoch, self.worker) {
                // Fault: the request is delivered but its reply is lost in
                // transit.  Transmit the first copy, discard the reply the
                // backend will never "see", and fall through to the
                // retransmission below — whose reply is the one the caller
                // receives.  The owner must handle the duplicate
                // idempotently.
                self.transmit(request.clone())?;
                let _lost_reply = self.recv()?;
            }
        }
        self.transmit(request)
    }

    fn recv(&mut self) -> Result<ClientReply, TransportError> {
        match self.replies.recv() {
            Ok(OwnerReply::Wire(reply)) => Ok(ClientReply::Wire(reply)),
            Ok(OwnerReply::Epoch(epoch)) => Ok(ClientReply::SharedEpoch(epoch)),
            Err(_) => Err(TransportError::PeerClosed {
                worker: self.worker,
                panic: None,
            }),
        }
    }
}

impl ServerTransport for MpscServer {
    fn recv_request(&mut self) -> Option<Request> {
        self.requests.recv().ok()
    }

    fn send_reply(&mut self, reply: OwnerReply) -> bool {
        self.replies.send(reply).is_ok()
    }
}

// ---------------------------------------------------------------------------
// TcpTransport — sockets, length-prefixed proto frames, reconnect + lease
// ---------------------------------------------------------------------------

/// Source of fresh session ids: one per backend instance, shared by its
/// per-owner connections.  The process id keeps concurrent client
/// *processes* of one serving process apart; the counter keeps backends of
/// one process apart.
static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);

/// Allocate a session id no other backend of this process (and, with high
/// probability, no other client process) is using.
pub fn fresh_session_id() -> u64 {
    let counter = NEXT_SESSION.fetch_add(1, Ordering::Relaxed);
    ((std::process::id() as u64) << 32) ^ counter
}

/// Connection-lifecycle options of a [`TcpTransport`]: the lease it
/// requests and the reconnect/backoff policy it retries under.
#[derive(Clone, Debug)]
pub struct TcpOptions {
    /// Session id sent in the lease handshake.  All of one backend's
    /// connections share it; `worker` tells them apart.
    pub session: u64,
    /// Shard count of the client's routing topology (0 = unspecified; a
    /// paired in-process server ignores it, `ampc_dds::serve` uses it to
    /// derive the owner's shard group).
    pub num_shards: usize,
    /// Owner count of the client's routing topology (0 = unspecified).
    pub workers: usize,
    /// Lease duration requested from the owner.  The owner starts the
    /// countdown when the connection drops, not while it is idle; `0`
    /// requests a lease that never expires.
    pub ttl_ms: u64,
    /// Reconnect attempts before a send/receive failure is surfaced.
    pub reconnect_attempts: u32,
    /// Backoff before the second reconnect attempt (the first is
    /// immediate); doubles per attempt up to [`TcpOptions::max_backoff`].
    pub initial_backoff: Duration,
    /// Cap on the exponential backoff between reconnect attempts.
    pub max_backoff: Duration,
}

impl TcpOptions {
    /// Default options under a fresh session id: 30 s lease, 8 reconnect
    /// attempts backing off 1 ms → 2 ms → … capped at 100 ms.
    pub fn fresh() -> TcpOptions {
        TcpOptions {
            session: fresh_session_id(),
            num_shards: 0,
            workers: 0,
            ttl_ms: 30_000,
            reconnect_attempts: 8,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
        }
    }

    /// Builder-style: set the requested lease duration in milliseconds
    /// (`0` = never expires).
    pub fn with_ttl_ms(mut self, ttl_ms: u64) -> TcpOptions {
        self.ttl_ms = ttl_ms;
        self
    }

    /// Builder-style: set the routing topology announced in the lease.
    pub fn with_topology(mut self, num_shards: usize, workers: usize) -> TcpOptions {
        self.num_shards = num_shards;
        self.workers = workers;
        self
    }
}

/// Socket transport speaking length-prefixed [`crate::proto`] frames.
///
/// Every message round-trips through the byte codec, so running the
/// conformance suites over this transport is an end-to-end proof of the wire
/// format.  `Advance` replies carry the serialized
/// [`crate::proto::EpochFrame`]; the client rebuilds a local replica of the
/// frozen maps from it.
///
/// The transport owns the connection lifecycle: the lease handshake on
/// every (re)connect, capped-exponential-backoff reconnection on any socket
/// failure, and idempotent replay of the requests whose replies are still
/// outstanding — see the [module docs](super).  Sends do not wait for
/// replies, so callers may pipeline up to `MAX_PIPELINE` requests before
/// receiving.
pub struct TcpTransport {
    worker: usize,
    endpoint: SocketAddr,
    options: TcpOptions,
    stream: TcpStream,
    /// Reusable frame-decode scratch (codec layer).
    frames: FrameReader,
    /// Reusable frame-encode scratch (codec layer).
    encoder: FrameWriter,
    /// Requests transmitted but not yet answered, oldest first — exactly
    /// what a reconnect must replay.
    pending: VecDeque<Request>,
    /// A lease handshake is in flight: the next frame read must be the
    /// grant, consumed before ordinary replies.
    await_grant: bool,
    /// Whether the pending grant must report `resumed` (reconnects) or
    /// fresh state (first connection).
    expect_resumed: bool,
    /// The cluster shard map carried by the most recent lease grant
    /// (`None` when the owner serves standalone).
    shard_map: Option<ShardMap>,
    faults: RequestFaults,
}

impl TcpTransport {
    /// Establish a fresh connection pair through a private loopback
    /// listener: the in-process owner keeps the listener, so a severed
    /// client can reconnect to the same owner.
    pub fn connect_pair(
        worker: usize,
        options: TcpOptions,
    ) -> Result<(TcpTransport, TcpServer), TransportError> {
        let io_err = |message: String| TransportError::Io { worker, message };
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|err| io_err(format!("binding a loopback DDS owner socket: {err}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|err| io_err(format!("configuring the owner listener: {err}")))?;
        let addr = listener
            .local_addr()
            .map_err(|err| io_err(format!("reading the owner socket address: {err}")))?;
        let client = TcpTransport::connect_to(addr, worker, options)?;
        Ok((client, TcpServer::from_listener(listener, worker)))
    }

    /// Connect to an already-listening owner at `endpoint` — the entry
    /// point of a multi-process deployment (see `ampc_dds::serve`).
    ///
    /// The lease handshake frame is written immediately; its grant is
    /// verified on the first receive, so connecting cannot deadlock with an
    /// owner that has not entered its serve loop yet.
    pub fn connect_to(
        endpoint: impl ToSocketAddrs,
        worker: usize,
        options: TcpOptions,
    ) -> Result<TcpTransport, TransportError> {
        let io_err = |message: String| TransportError::Io { worker, message };
        let endpoint = endpoint
            .to_socket_addrs()
            .map_err(|err| io_err(format!("resolving the DDS owner address: {err}")))?
            .next()
            .ok_or_else(|| io_err("the DDS owner address resolved to nothing".to_string()))?;
        let stream = TcpStream::connect(endpoint)
            .map_err(|err| io_err(format!("connecting to the DDS owner: {err}")))?;
        // The protocol is small framed RPCs; Nagle only adds latency.  A
        // failure here would silently skew every latency measurement, so it
        // is propagated, not discarded.
        stream
            .set_nodelay(true)
            .map_err(|err| io_err(format!("setting TCP_NODELAY: {err}")))?;
        let mut transport = TcpTransport {
            worker,
            endpoint,
            options,
            stream,
            frames: FrameReader::new(),
            encoder: FrameWriter::new(),
            pending: VecDeque::new(),
            await_grant: true,
            expect_resumed: false,
            shard_map: None,
            faults: RequestFaults::none(),
        };
        let lease = transport.lease_request();
        transport
            .encoder
            .send_request(&mut transport.stream, &lease)
            .map_err(|err| transport.classify(&err))?;
        Ok(transport)
    }

    /// The lease handshake frame for this connection.
    fn lease_request(&self) -> Request {
        Request::Lease {
            session: self.options.session,
            worker: self.worker as u64,
            num_shards: self.options.num_shards as u64,
            workers: self.options.workers as u64,
            ttl_ms: self.options.ttl_ms,
        }
    }

    /// Classify a socket error: vanished peers become [`TransportError::PeerClosed`],
    /// everything else keeps its diagnostic as [`TransportError::Io`].
    fn classify(&self, err: &std::io::Error) -> TransportError {
        match err.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::NotConnected
            | std::io::ErrorKind::BrokenPipe => TransportError::PeerClosed {
                worker: self.worker,
                panic: None,
            },
            _ => TransportError::Io {
                worker: self.worker,
                message: err.to_string(),
            },
        }
    }

    /// One reconnection attempt: dial, handshake the lease, replay every
    /// outstanding request in order.
    fn try_reestablish(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.endpoint)?;
        stream.set_nodelay(true)?;
        self.stream = stream;
        self.await_grant = true;
        self.expect_resumed = true;
        let lease = self.lease_request();
        self.encoder.send_request(&mut self.stream, &lease)?;
        for request in &self.pending {
            self.encoder.send_request(&mut self.stream, request)?;
        }
        Ok(())
    }

    /// Bring the connection back after `cause`, retrying with capped
    /// exponential backoff.  Returns `cause` if the owner stays
    /// unreachable through every attempt.
    fn recover(&mut self, cause: TransportError) -> Result<(), TransportError> {
        let mut backoff = self.options.initial_backoff;
        for attempt in 0..self.options.reconnect_attempts {
            if attempt > 0 {
                #[allow(clippy::disallowed_methods)]
                // lint: allow(blocking) — reconnect backoff: capped exponential wait on an already-severed connection, not the serve hot path
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(self.options.max_backoff);
            }
            if self.try_reestablish().is_ok() {
                return Ok(());
            }
        }
        Err(cause)
    }

    /// Transmit one request, recording it as outstanding; any write failure
    /// triggers the reconnect-and-replay path (which retransmits this
    /// request too).
    fn transmit(&mut self, request: Request) -> Result<(), TransportError> {
        assert!(
            self.pending.len() < MAX_PIPELINE,
            "a client may pipeline at most {MAX_PIPELINE} outstanding requests \
             (the owner's replay-deduplication window must cover them all)"
        );
        self.pending.push_back(request);
        // lint: allow(panic) — infallible: the request was pushed on the line above
        let request = self.pending.back().expect("just pushed");
        if let Err(err) = self.encoder.send_request(&mut self.stream, request) {
            let cause = self.classify(&err);
            self.recover(cause)?;
        }
        Ok(())
    }

    /// Read and decode the next frame (I/O error outer, decode error inner).
    fn next_reply(&mut self) -> std::io::Result<Result<Reply, ProtoError>> {
        let payload = self.frames.read(&mut self.stream)?;
        Ok(decode_reply(payload))
    }

    /// Drive the handshake to completion: read (and verify) the pending
    /// lease grant without consuming any ordinary reply.  A no-op on a
    /// connection whose grant was already absorbed.  Cluster clients call
    /// this right after connecting, because the grant carries the shard
    /// map they must route by ([`Self::shard_map`]).
    pub fn finish_handshake(&mut self) -> Result<(), TransportError> {
        while self.await_grant {
            self.pump(true)?;
        }
        Ok(())
    }

    /// The cluster shard map advertised by the owner's most recent lease
    /// grant, if any (populated once the handshake completes).
    pub fn shard_map(&self) -> Option<&ShardMap> {
        self.shard_map.as_ref()
    }

    /// Read the next ordinary reply, consuming (and verifying) any pending
    /// lease grant first and reconnecting through socket failures.
    fn recv_reply(&mut self) -> Result<Reply, TransportError> {
        let reply = self.pump(false)?;
        // lint: allow(panic) — infallible: pump(false) only returns Ok(None) when drain_only is set
        Ok(reply.expect("pump only stops early when asked to"))
    }

    /// The receive loop shared by [`Self::recv_reply`] and
    /// [`Self::finish_handshake`]: reconnect through socket failures,
    /// verify and absorb lease grants, and either stop once the grant is
    /// in (`stop_after_grant`, returning `None`) or keep reading until an
    /// ordinary reply arrives.
    fn pump(&mut self, stop_after_grant: bool) -> Result<Option<Reply>, TransportError> {
        // Loop guard, not retry policy: [`TcpOptions::reconnect_attempts`]
        // bounds the dials within one recovery; this bounds how many
        // *successful* recoveries one receive may burn through, so a
        // flapping owner (accepts the reconnect, then dies again before
        // answering) cannot spin this loop forever.  An unreachable owner
        // never gets here — `recover` surfaces its error on the first cycle.
        const MAX_RECOVERY_CYCLES: u32 = 4;
        let mut recoveries = 0u32;
        loop {
            let decoded = match self.next_reply() {
                Ok(decoded) => decoded,
                Err(err) => {
                    let cause = self.classify(&err);
                    recoveries += 1;
                    if recoveries > MAX_RECOVERY_CYCLES {
                        return Err(cause);
                    }
                    self.recover(cause)?;
                    continue;
                }
            };
            let reply = decoded.map_err(|error| TransportError::Proto {
                worker: self.worker,
                error,
            })?;
            if self.await_grant {
                let Reply::LeaseGranted {
                    session,
                    resumed,
                    shard_map,
                    ..
                } = reply
                else {
                    return Err(TransportError::Protocol {
                        worker: self.worker,
                        message: format!("expected a lease grant, got {reply:?}"),
                    });
                };
                if session != self.options.session {
                    return Err(TransportError::Protocol {
                        worker: self.worker,
                        message: format!(
                            "lease grant for session {session:#x}, expected {:#x}",
                            self.options.session
                        ),
                    });
                }
                if self.expect_resumed && !resumed {
                    return Err(TransportError::LeaseLost {
                        worker: self.worker,
                        session,
                    });
                }
                if !self.expect_resumed && resumed {
                    return Err(TransportError::Protocol {
                        worker: self.worker,
                        message: format!("session {session:#x} collided with existing state"),
                    });
                }
                self.shard_map = shard_map;
                self.await_grant = false;
                if stop_after_grant {
                    return Ok(None);
                }
                continue;
            }
            return Ok(Some(reply));
        }
    }

    /// The underlying socket (tests assert TCP_NODELAY is actually set, so
    /// latency numbers are never Nagle-dependent).
    #[cfg(test)]
    pub(crate) fn socket(&self) -> &TcpStream {
        &self.stream
    }
}

impl Transport for TcpTransport {
    const NAME: &'static str = "remote";
    type Server = TcpServer;

    fn connect(worker: usize) -> (Self, TcpServer) {
        // Loopback rendezvous: the connect lands in the listener's backlog,
        // so binding, connecting and accepting from one thread cannot
        // deadlock.  Setup failures have no transport thread to surface
        // through yet, so they are a loud construction panic.
        TcpTransport::connect_pair(worker, TcpOptions::fresh())
            // lint: allow(panic) — construction-time setup failure: no transport thread exists yet to carry a typed error
            .unwrap_or_else(|err| panic!("DDS transport setup failed: {err}"))
    }

    fn install_faults(&mut self, faults: RequestFaults) {
        self.faults = faults;
    }

    fn send(&mut self, request: Request) -> Result<(), TransportError> {
        if let Some((kind, epoch)) = fault_coordinates(&request) {
            if self.faults.should_sever(kind, epoch, self.worker) {
                // Fault: the connection dies mid-round, right before this
                // request goes out — possibly with a pipeline of earlier
                // requests still unanswered.  The write below fails, and
                // the transport must reconnect, replay the lease handshake
                // and *every* outstanding request in order, and carry on —
                // byte-identical.
                let _ = self.stream.shutdown(Shutdown::Both);
            }
            if self.faults.should_drop(kind, epoch, self.worker) {
                // Fault: the frame is delivered but its reply is lost in
                // transit.  Write the first copy, discard the reply frame
                // the backend will never "see", then retransmit the
                // identical frame below — the owner must deduplicate.
                self.transmit(request.clone())?;
                let _lost_reply = self.recv()?;
            }
        }
        self.transmit(request)
    }

    fn recv(&mut self) -> Result<ClientReply, TransportError> {
        let reply = self.recv_reply()?;
        self.pending.pop_front();
        Ok(ClientReply::Wire(reply))
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Clean shutdown drains the pipeline first: every outstanding reply
        // is received before the goodbye goes out, so the lease is never
        // released with requests still in flight.  Replies that cannot be
        // read (dead socket) end the drain — the lease expiry covers that
        // case.  Stray lease grants (from a reconnect mid-drain) answer no
        // pending request and are skipped.
        while !self.pending.is_empty() {
            match self.next_reply() {
                Ok(Ok(Reply::LeaseGranted { .. })) => {}
                Ok(Ok(_)) => {
                    self.pending.pop_front();
                }
                Ok(Err(_)) | Err(_) => break,
            }
        }
        // Best-effort: tell the owner not to hold the lease open for a
        // reconnect that will never come.
        let _ = self
            .encoder
            .send_request(&mut self.stream, &Request::Goodbye);
    }
}

// ---------------------------------------------------------------------------
// TcpServer — the owner side: pipelined per-connection stages
// ---------------------------------------------------------------------------

/// Where a [`TcpServer`] gets (re)connections from.
enum StreamSource {
    /// A private loopback listener (paired in-process mode): the server
    /// accepts and handshakes incoming connections itself.
    Listener(TcpListener),
    /// A shared acceptor (`ampc_dds::serve`): connections arrive with the
    /// lease already read, routed by `(session, worker)`.
    Mailbox(Receiver<ServeHandoff>),
}

/// One routed connection handed to a [`TcpServer`] by a shared acceptor.
pub(crate) struct ServeHandoff {
    /// The accepted, lease-validated stream.
    pub(crate) stream: TcpStream,
    /// Session the lease named (echoed in the grant).
    pub(crate) session: u64,
    /// Lease duration the client asked for, milliseconds (0 = infinite).
    pub(crate) ttl_ms: u64,
}

/// The decoded contents of a connection's opening [`Request::Lease`] frame.
pub(crate) struct LeaseFrame {
    pub(crate) session: u64,
    pub(crate) worker: u64,
    pub(crate) num_shards: u64,
    pub(crate) workers: u64,
    pub(crate) ttl_ms: u64,
}

/// Read and decode the opening lease frame of a fresh connection, under
/// [`HANDSHAKE_TIMEOUT`] so a wedged or hostile pre-lease client cannot
/// hold its acceptor hostage.  `None` means "drop the connection": garbage,
/// a timeout, or a first frame that is not a lease.  Shared by the paired
/// in-process [`TcpServer`] and the `ampc_dds::serve` acceptor — one
/// handshake, one implementation.
pub(crate) fn read_lease_frame(stream: &TcpStream) -> Option<LeaseFrame> {
    let mut reader = stream;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT)).ok()?;
    let mut payload = Vec::new();
    read_frame(&mut reader, &mut payload).ok()?;
    stream.set_read_timeout(None).ok()?;
    match decode_request(&payload) {
        Ok(Request::Lease {
            session,
            worker,
            num_shards,
            workers,
            ttl_ms,
        }) => Some(LeaseFrame {
            session,
            worker,
            num_shards,
            workers,
            ttl_ms,
        }),
        _ => None,
    }
}

/// Warn exactly once, process-wide, when a server-side socket cannot set
/// TCP_NODELAY.  The connection still works; only latency is at stake, so
/// the server keeps serving — but never silently.
fn warn_nodelay_once(err: &std::io::Error) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!("ampc-dds: failed to set TCP_NODELAY on an owner socket ({err}); latency numbers may be Nagle-dependent");
    });
}

/// What the reader stage hands the dispatch stage, one per decoded frame.
enum ConnEvent {
    /// A well-formed request, in arrival order.
    Request(Request),
    /// A frame that arrived but did not decode — a protocol bug whose
    /// diagnostic must surface on the dispatch thread (the backend harvests
    /// the owner thread's panic, not the reader's).
    Malformed(ProtoError),
    /// The socket died without a goodbye (EOF, reset): the session stays
    /// open for a reconnect.
    Disconnected,
}

/// One live pipelined connection of a [`TcpServer`]: a *reader* thread
/// decoding ahead of dispatch, and a *writer* thread flushing encoded
/// replies behind it.  Both queues are bounded at [`PIPELINE_DEPTH`].
struct Conn {
    /// The dispatch side's handle on the socket, used only to shut the
    /// connection down at teardown (the stages own clones).
    stream: TcpStream,
    /// Decoded requests from the reader stage, in arrival order.
    events: Receiver<ConnEvent>,
    /// Encoded reply frames to the writer stage, in dispatch order.
    replies: SyncSender<Vec<u8>>,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
}

impl Conn {
    /// Spawn the reader and writer stages over clones of `stream`.
    fn start(stream: TcpStream, pool: FramePool) -> std::io::Result<Conn> {
        let read_half = stream.try_clone()?;
        let write_half = stream.try_clone()?;
        let (event_tx, event_rx) = sync_channel(PIPELINE_DEPTH);
        let (reply_tx, reply_rx) = sync_channel::<Vec<u8>>(PIPELINE_DEPTH);
        let reader = std::thread::Builder::new()
            .name("dds-conn-reader".to_string())
            .spawn(move || {
                let mut stream = read_half;
                let mut frames = FrameReader::new();
                loop {
                    let event = match frames.read(&mut stream) {
                        Ok(payload) => match decode_request(payload) {
                            Ok(request) => ConnEvent::Request(request),
                            Err(error) => ConnEvent::Malformed(error),
                        },
                        Err(_) => ConnEvent::Disconnected,
                    };
                    let last = !matches!(event, ConnEvent::Request(_));
                    // A full queue blocks here — the decode-ahead window —
                    // until dispatch drains or teardown drops the receiver.
                    if event_tx.send(event).is_err() || last {
                        return;
                    }
                }
            })?;
        let writer = std::thread::Builder::new()
            .name("dds-conn-writer".to_string())
            .spawn(move || {
                let mut stream = write_half;
                let mut broken = false;
                while let Ok(payload) = reply_rx.recv() {
                    // A write failure is a disconnect the reader stage also
                    // sees; keep draining (the client replays unanswered
                    // requests after reconnecting) and recycle the buffers.
                    if !broken && write_frame(&mut stream, &payload).is_err() {
                        broken = true;
                    }
                    pool.put(payload);
                }
            });
        let writer = match writer {
            Ok(writer) => writer,
            Err(err) => {
                // Unblock and reap the already-running reader before
                // reporting the spawn failure.
                let _ = stream.shutdown(Shutdown::Both);
                drop(event_rx);
                let _ = reader.join();
                return Err(err);
            }
        };
        Ok(Conn {
            stream,
            events: event_rx,
            replies: reply_tx,
            reader,
            writer,
        })
    }

    /// Stop both stages and reap their threads.  With `flush`, every queued
    /// reply is written out first (clean goodbye); without, the socket is
    /// shut down immediately (disconnect) and queued replies are discarded
    /// into the pool.
    fn teardown(self, flush: bool) {
        let Conn {
            stream,
            events,
            replies,
            reader,
            writer,
        } = self;
        if !flush {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Closing the reply queue lets the writer drain and exit.
        drop(replies);
        let _ = writer.join();
        // Now end the reader's blocking read, and drop the event queue so a
        // reader blocked mid-send returns too.
        let _ = stream.shutdown(Shutdown::Both);
        drop(events);
        let _ = reader.join();
    }
}

/// Server half of a [`TcpTransport`]: the owner side of the connection
/// lifecycle, pipelined per connection.
///
/// The server validates the lease handshake of every incoming connection,
/// answers renewals, survives disconnects by waiting (up to the lease
/// deadline) for a reconnect, and treats [`Request::Goodbye`] as the
/// client's clean release of the session — after flushing every queued
/// reply, so a drained pipeline is never cut short.  `recv_request` returns
/// `None` — ending the owner's serve loop — only on goodbye, lease expiry,
/// or a vanished stream source.
///
/// Each live connection runs as three stages (reader thread → dispatch →
/// writer thread, see [`Conn`]): the owner applies request `N` while the
/// reader decodes `N + 1` and the writer flushes the reply to `N - 1`.
pub struct TcpServer {
    source: StreamSource,
    worker: usize,
    conn: Option<Conn>,
    /// Encoded-reply buffers recycled between dispatch and writer stages.
    pool: FramePool,
    /// Granted lease duration; zero means the lease never expires.
    ttl: Duration,
    /// When the connection dropped (the expiry countdown's epoch); `None`
    /// while connected or before the first connection.  The countdown never
    /// runs against a live socket — not even one whose pipelined replies
    /// are still being flushed.
    disconnected_at: Option<Instant>,
    /// Whether this session served a connection before — what the grant
    /// reports as `resumed`.
    served_before: bool,
    /// Session id of the connection currently (or last) served; dispatch
    /// keys its per-session replay windows by this.
    session: u64,
    /// Cluster topology advertised in every lease grant (`None` when the
    /// owner serves standalone).
    shard_map: Option<ShardMap>,
    /// The client said goodbye (or the lease expired): serving is over.
    finished: bool,
}

/// How long an accepting server waits for the lease handshake frame of a
/// brand-new connection before dropping it.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);

/// Poll interval of the nonblocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

impl TcpServer {
    /// A server accepting (re)connections from its own loopback listener.
    pub(crate) fn from_listener(listener: TcpListener, worker: usize) -> TcpServer {
        TcpServer {
            source: StreamSource::Listener(listener),
            worker,
            conn: None,
            pool: FramePool::new(),
            ttl: Duration::ZERO,
            disconnected_at: None,
            served_before: false,
            session: 0,
            shard_map: None,
            finished: false,
        }
    }

    /// A server fed routed connections by a shared acceptor
    /// (`ampc_dds::serve`).
    pub(crate) fn from_mailbox(mailbox: Receiver<ServeHandoff>, worker: usize) -> TcpServer {
        TcpServer {
            source: StreamSource::Mailbox(mailbox),
            worker,
            conn: None,
            pool: FramePool::new(),
            ttl: Duration::ZERO,
            disconnected_at: None,
            served_before: false,
            session: 0,
            shard_map: None,
            finished: false,
        }
    }

    /// Advertise a cluster shard map in every lease grant this server
    /// issues (`ampc_dds::serve` sets this when serving as a cluster node).
    pub(crate) fn with_shard_map(mut self, shard_map: Option<ShardMap>) -> TcpServer {
        self.shard_map = shard_map;
        self
    }

    /// The expiry deadline of the current disconnect, if the lease expires
    /// at all.
    fn deadline(&self) -> Option<Instant> {
        match (self.disconnected_at, self.ttl) {
            (Some(at), ttl) if ttl > Duration::ZERO => Some(at + ttl),
            _ => None,
        }
    }

    /// Adopt a freshly (re)connected stream: start its pipeline stages,
    /// grant the lease and begin serving it.
    fn adopt(&mut self, stream: TcpStream, session: u64, ttl_ms: u64) {
        if let Err(err) = stream.set_nodelay(true) {
            warn_nodelay_once(&err);
        }
        self.ttl = Duration::from_millis(ttl_ms);
        self.disconnected_at = None;
        self.session = session;
        let resumed = self.served_before;
        self.served_before = true;
        match Conn::start(stream, self.pool.clone()) {
            Ok(conn) => {
                self.conn = Some(conn);
                self.grant(session, resumed);
            }
            // Could not spawn the stage threads: treat it as an immediate
            // disconnect (the client will reconnect and re-handshake).
            Err(_) => self.mark_disconnected(),
        }
    }

    /// Queue the lease grant; a failed queue is just a disconnect (the
    /// client will reconnect and re-handshake).
    fn grant(&mut self, session: u64, resumed: bool) {
        let reply = Reply::LeaseGranted {
            session,
            ttl_ms: self.ttl.as_millis() as u64,
            resumed,
            shard_map: self.shard_map.clone(),
        };
        self.queue_reply(&reply);
    }

    /// Encode `reply` into a pooled buffer and hand it to the writer stage.
    /// Blocks when [`PIPELINE_DEPTH`] replies are already queued — the
    /// dispatch stage's backpressure.
    fn queue_reply(&mut self, reply: &Reply) {
        if self.conn.is_none() {
            // Already disconnected: the reply is lost, but the client will
            // replay its request after reconnecting — keep serving.
            return;
        }
        let mut payload = self.pool.take();
        encode_reply_into(&mut payload, reply);
        let failed = self
            .conn
            .as_ref()
            .is_some_and(|conn| conn.replies.send(payload).is_err());
        if failed {
            self.mark_disconnected();
        }
    }

    fn mark_disconnected(&mut self) {
        if let Some(conn) = self.conn.take() {
            conn.teardown(false);
        }
        if self.disconnected_at.is_none() {
            self.disconnected_at = Some(Instant::now());
        }
    }

    /// Read and validate the lease handshake of a brand-new connection.
    /// Returns `None` (dropping the connection) on garbage, a timeout, or a
    /// lease addressed to a different worker.
    fn read_handshake(&self, stream: &TcpStream) -> Option<(u64, u64)> {
        let lease = read_lease_frame(stream)?;
        (lease.worker as usize == self.worker).then_some((lease.session, lease.ttl_ms))
    }

    /// Wait for a (re)connection until the lease deadline.  `false` ends
    /// the serve loop: the lease expired, or the stream source is gone.
    fn await_stream(&mut self) -> bool {
        let deadline = self.deadline();
        match &self.source {
            StreamSource::Listener(listener) => loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // Accepted sockets must block; the listener itself
                        // stays nonblocking for the deadline poll.
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        let Some((session, ttl_ms)) = self.read_handshake(&stream) else {
                            continue; // not our client; drop and keep waiting
                        };
                        self.adopt(stream, session, ttl_ms);
                        return true;
                    }
                    Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                        if deadline.is_some_and(|deadline| Instant::now() >= deadline) {
                            return false; // lease expired: reclaim
                        }
                        #[allow(clippy::disallowed_methods)]
                        // lint: allow(blocking) — reconnect-wait poll: a disconnected session waiting out its lease, bounded by ACCEPT_POLL per spin and the lease deadline overall
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => return false, // listener broken: give up
                }
            },
            StreamSource::Mailbox(mailbox) => {
                let handoff = match deadline {
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            return false;
                        }
                        match mailbox.recv_timeout(deadline - now) {
                            Ok(handoff) => handoff,
                            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                                return false
                            }
                        }
                    }
                    None => match mailbox.recv() {
                        Ok(handoff) => handoff,
                        Err(_) => return false,
                    },
                };
                self.adopt(handoff.stream, handoff.session, handoff.ttl_ms);
                true
            }
        }
    }
}

impl ServerTransport for TcpServer {
    fn recv_request(&mut self) -> Option<Request> {
        loop {
            if self.finished {
                return None;
            }
            if self.conn.is_none() && !self.await_stream() {
                self.finished = true;
                return None;
            }
            let Some(conn) = self.conn.as_ref() else {
                continue; // adoption failed; wait for a reconnect
            };
            match conn.events.recv() {
                // Mid-stream renewal: refresh the lease, grant, keep going.
                // `resumed` is definitionally true here — a renewal arrives
                // on a connection that already holds its grant, so the
                // session's state is intact (clients only validate the flag
                // during the handshake, never on a renewal).
                Ok(ConnEvent::Request(Request::Lease {
                    session, ttl_ms, ..
                })) => {
                    self.ttl = Duration::from_millis(ttl_ms);
                    self.grant(session, true);
                }
                // Clean shutdown: the goodbye frame arrives *behind* every
                // pipelined request on the socket, so all of them have been
                // dispatched and their replies queued by the time it is
                // popped here.  Flush those replies, then release the
                // session.
                Ok(ConnEvent::Request(Request::Goodbye)) => {
                    if let Some(conn) = self.conn.take() {
                        conn.teardown(true);
                    }
                    self.finished = true;
                    return None;
                }
                Ok(ConnEvent::Request(request)) => return Some(request),
                // A frame that arrives but does not decode is a protocol
                // bug and must keep its diagnostic — the panic is harvested
                // into the typed `TransportError::PeerClosed` the backend
                // surfaces.  It is raised here, on the dispatch thread,
                // because the backend joins the owner thread (not the
                // connection's reader stage).
                Ok(ConnEvent::Malformed(error)) => {
                    // lint: allow(panic) — owner-side protocol violation: the panic is the owner's error surface, harvested into TransportError::PeerClosed by the backend join
                    panic!("malformed request frame from the backend: {error}")
                }
                // EOF or reset without a goodbye: hold the session and
                // wait (up to the lease deadline) for a reconnect.
                Ok(ConnEvent::Disconnected) | Err(_) => self.mark_disconnected(),
            }
        }
    }

    fn send_reply(&mut self, reply: OwnerReply) -> bool {
        let reply = match reply {
            OwnerReply::Wire(reply) => reply,
            // The wire has no shared memory: serialize the frozen epoch.
            OwnerReply::Epoch(epoch) => Reply::Epoch(epoch.to_frame()),
        };
        // A lost reply (disconnect) is not the end of the session: the
        // reconnect replay re-asks and the owner re-answers idempotently.
        self.queue_reply(&reply);
        true
    }

    fn session(&self) -> u64 {
        self.session
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        // Reap the stage threads of a connection dropped mid-serve (e.g. an
        // owner panic unwinding): without this, a reader blocked on a live
        // socket would linger until the peer closed it.
        if let Some(conn) = self.conn.take() {
            conn.teardown(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{Key, KeyTag, Value};
    use crate::proto::RequestKind;

    fn echo_server<S: ServerTransport>(mut server: S) -> std::thread::JoinHandle<usize> {
        std::thread::spawn(move || {
            let mut served = 0;
            while let Some(request) = server.recv_request() {
                let reply = match request {
                    Request::Commit { epoch, batches, .. } => Reply::Committed {
                        epoch,
                        accepted: batches.iter().map(|(_, pairs)| pairs.len() as u64).sum(),
                    },
                    Request::TotalWrites => Reply::TotalWrites(served),
                    _ => Reply::TotalWrites(0),
                };
                if !server.send_reply(OwnerReply::Wire(reply)) {
                    break;
                }
                served += 1;
            }
            served as usize
        })
    }

    fn commit_request(epoch: usize) -> Request {
        Request::Commit {
            epoch,
            seq: epoch as u64,
            batches: vec![(0, vec![(Key::of(KeyTag::Scalar, 1), Value::scalar(2))])],
        }
    }

    fn exercise_transport<T: Transport>() {
        let (mut client, server) = T::connect(0);
        let handle = echo_server(server);

        // Pipelined sends, FIFO replies.
        client.send(commit_request(0)).unwrap();
        client.send(Request::TotalWrites).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::Committed { epoch, accepted }) => {
                assert_eq!((epoch, accepted), (0, 1));
            }
            _ => panic!("commit must be acknowledged first"),
        }
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::TotalWrites(n)) => assert_eq!(n, 1),
            _ => panic!("total-writes reply expected"),
        }

        drop(client);
        assert_eq!(handle.join().unwrap(), 2);
    }

    #[test]
    fn mpsc_transport_round_trips() {
        exercise_transport::<MpscTransport>();
    }

    #[test]
    fn tcp_transport_round_trips() {
        exercise_transport::<TcpTransport>();
    }

    #[test]
    fn pipelined_bursts_round_trip_in_order() {
        let (mut client, server) = TcpTransport::connect(0);
        let handle = echo_server(server);

        // A deep burst of sends before any receive: the reader stage
        // decodes ahead of dispatch, the writer stage flushes behind it,
        // and the replies come back strictly FIFO.
        const BURST: usize = 24;
        for epoch in 0..BURST {
            client.send(commit_request(epoch)).unwrap();
        }
        for expected in 0..BURST {
            match client.recv().unwrap() {
                ClientReply::Wire(Reply::Committed { epoch, accepted }) => {
                    assert_eq!((epoch, accepted), (expected, 1));
                }
                _ => panic!("pipelined replies must arrive in request order"),
            }
        }

        drop(client);
        assert_eq!(handle.join().unwrap(), BURST);
    }

    #[test]
    fn goodbye_drains_the_full_pipeline() {
        let (mut client, server) = TcpTransport::connect(0);
        let handle = echo_server(server);

        // Send a pipeline and drop the client without receiving anything:
        // the clean shutdown must drain every outstanding reply before its
        // goodbye releases the lease, and the server must dispatch every
        // request before honoring the goodbye — nothing dropped.
        const BURST: usize = 12;
        for epoch in 0..BURST {
            client.send(commit_request(epoch)).unwrap();
        }
        drop(client);
        assert_eq!(handle.join().unwrap(), BURST, "no request may be dropped");
    }

    fn exercise_faults<T: Transport>() {
        let (mut client, server) = T::connect(3);
        let handle = echo_server(server);
        let faults = RequestFaults::none();
        faults.schedule_drop(RequestKind::Commit, 5, 3);
        faults.schedule_drop(RequestKind::Commit, 5, 4); // wrong worker: never fires
        client.install_faults(faults.clone());

        // The fault delivers the request, loses its reply, and retransmits:
        // the caller still sees exactly one reply per send.
        client.send(commit_request(5)).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::Committed { epoch, .. }) => assert_eq!(epoch, 5),
            _ => panic!("the retransmission's reply must reach the caller"),
        }
        assert_eq!(faults.dropped(), 1);

        // The fault fired once; a second identical request is untouched.
        client.send(commit_request(5)).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::Committed { .. }) => {}
            _ => panic!("second commit must be delivered"),
        }
        assert_eq!(faults.dropped(), 1);
        assert!(!faults.is_empty(), "the wrong-worker drop stays scheduled");

        drop(client);
        // The server really received the duplicate — 2 copies of the
        // faulted commit plus the clean one.  Deduplicating the copy is
        // the owner's job (`dispatch::Worker`), pinned by its own tests.
        assert_eq!(handle.join().unwrap(), 3, "duplicate must hit the wire");
    }

    #[test]
    fn mpsc_transport_honors_request_faults() {
        exercise_faults::<MpscTransport>();
    }

    #[test]
    fn tcp_transport_honors_request_faults() {
        exercise_faults::<TcpTransport>();
    }

    #[test]
    fn severed_tcp_connections_reconnect_and_replay() {
        let (mut client, server) = TcpTransport::connect(2);
        let handle = echo_server(server);
        let faults = RequestFaults::none();
        faults.schedule_sever(RequestKind::Commit, 1, 2);
        faults.schedule_sever(RequestKind::Advance, 2, 2);
        client.install_faults(faults.clone());

        // Warm the connection so the sever cuts an established stream.
        client.send(commit_request(0)).unwrap();
        let _ = client.recv().unwrap();

        // The sever cuts the socket right before the commit: the transport
        // must reconnect, re-handshake and replay, and the caller still
        // sees exactly one reply.
        client.send(commit_request(1)).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::Committed { epoch, .. }) => assert_eq!(epoch, 1),
            other => panic!(
                "replayed commit must be acknowledged, got {:?}",
                match other {
                    ClientReply::Wire(reply) => format!("{reply:?}"),
                    ClientReply::SharedEpoch(_) => "shared epoch".to_string(),
                }
            ),
        }
        assert_eq!(faults.severed(), 1);

        // A second sever, addressed at an Advance, exercises the replay of
        // a different request kind over a fresh reconnect.
        client.send(Request::Advance { epoch: 2 }).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::TotalWrites(_)) => {} // echo server answer
            _ => panic!("the replayed advance must be answered"),
        }
        assert_eq!(faults.severed(), 2);
        assert!(faults.is_empty());

        drop(client);
        // The echo server saw each request exactly once: severs cut the
        // connection *before* the frame goes out, so nothing is duplicated.
        assert_eq!(handle.join().unwrap(), 3);
    }

    #[test]
    fn severed_pipelines_replay_every_outstanding_request() {
        let (mut client, server) = TcpTransport::connect(4);
        let handle = echo_server(server);
        let faults = RequestFaults::none();
        faults.schedule_sever(RequestKind::Commit, 3, 4);
        client.install_faults(faults.clone());

        // Warm the connection so the sever cuts an established stream.
        client.send(commit_request(0)).unwrap();
        let _ = client.recv().unwrap();

        // Two commits go out with their replies unconsumed…
        client.send(commit_request(1)).unwrap();
        client.send(commit_request(2)).unwrap();
        // …and the third severs the socket with both still outstanding.
        // The reconnect must replay 1, 2 *and* 3, in order, and the caller
        // still receives exactly one FIFO reply per send.
        client.send(commit_request(3)).unwrap();
        for expected in 1..=3 {
            match client.recv().unwrap() {
                ClientReply::Wire(Reply::Committed { epoch, .. }) => assert_eq!(epoch, expected),
                _ => panic!("replayed pipeline must be acknowledged in order"),
            }
        }
        assert_eq!(faults.severed(), 1);

        drop(client);
        // At-least-once on the wire: commits 1 and 2 reached the server
        // before the sever (TCP delivers buffered bytes ahead of the FIN)
        // and again in the replay — the echo server, which deduplicates
        // nothing, counts 1 warm-up + 2 first copies + 3 replays.
        // Exactly-once *application* of such duplicates is the dispatch
        // layer's job, pinned by `dispatch::Worker`'s tests.
        assert_eq!(handle.join().unwrap(), 6);
    }

    #[test]
    fn mpsc_transports_ignore_scheduled_severs() {
        let (mut client, server) = MpscTransport::connect(0);
        let handle = echo_server(server);
        let faults = RequestFaults::none();
        faults.schedule_sever(RequestKind::Commit, 0, 0);
        client.install_faults(faults.clone());
        client.send(commit_request(0)).unwrap();
        let _ = client.recv().unwrap();
        // No connection to cut: the sever neither fires nor is consumed.
        assert_eq!(faults.severed(), 0);
        assert!(!faults.is_empty());
        drop(client);
        assert_eq!(handle.join().unwrap(), 1);
    }

    #[test]
    fn tcp_nodelay_is_set_on_both_halves() {
        let (client, mut server) = TcpTransport::connect(0);
        // Nagle would let latency depend on frame coalescing; the latency
        // series in BENCH_commit.json assume it is off.
        assert!(
            client.socket().nodelay().unwrap_or(false),
            "client socket must have TCP_NODELAY set"
        );
        // Drive the handshake from a second thread so the server can adopt
        // the connection, then inspect its socket.
        let driver = std::thread::spawn(move || {
            let request = server.recv_request();
            (server, request)
        });
        let mut client = client;
        client.send(Request::TotalWrites).unwrap();
        let (server, request) = driver.join().unwrap();
        assert_eq!(request, Some(Request::TotalWrites));
        assert!(
            server
                .conn
                .as_ref()
                .is_some_and(|conn| conn.stream.nodelay().unwrap_or(false)),
            "server socket must have TCP_NODELAY set"
        );
    }

    #[test]
    fn expired_leases_end_the_serve_loop() {
        let options = TcpOptions::fresh().with_ttl_ms(50);
        let (client, mut server) = TcpTransport::connect_pair(7, options).unwrap();
        // Serve one round-trip, then cut the connection without a goodbye:
        // the server must wait out the 50 ms lease and then give up — not
        // hang.
        let driver = std::thread::spawn(move || {
            let first = server.recv_request();
            if first.is_some() {
                server.send_reply(OwnerReply::Wire(Reply::TotalWrites(0)));
            }
            let second = server.recv_request();
            (first, second)
        });
        let mut client = client;
        client.send(Request::TotalWrites).unwrap();
        match client.recv().unwrap() {
            ClientReply::Wire(Reply::TotalWrites(0)) => {}
            _ => panic!("round-trip before the sever must succeed"),
        }
        // Abrupt death: no goodbye frame.
        client.stream.shutdown(Shutdown::Both).unwrap();
        std::mem::forget(client);
        let (first, second) = driver.join().unwrap();
        assert_eq!(first, Some(Request::TotalWrites));
        assert_eq!(second, None, "the lease must expire and end serving");
    }

    #[test]
    fn goodbye_releases_the_session_immediately() {
        let (client, mut server) = TcpTransport::connect(5);
        let started = Instant::now();
        let driver = std::thread::spawn(move || server.recv_request());
        drop(client); // sends the goodbye frame
        assert_eq!(driver.join().unwrap(), None);
        // No lease wait: the goodbye ends serving at once (well under the
        // 30 s default ttl).
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn dead_peer_is_a_typed_error() {
        let (mut client, server) = MpscTransport::connect(7);
        drop(server);
        let err = client.send(Request::TotalWrites).unwrap_err();
        assert_eq!(
            err,
            TransportError::PeerClosed {
                worker: 7,
                panic: None
            }
        );

        // For TCP the listener dies with the server half, so reconnect
        // attempts are refused and the original failure surfaces — by the
        // reply read at the latest (the OS may buffer the first write).
        let (mut client, server) = TcpTransport::connect(7);
        drop(server);
        let result = client
            .send(Request::TotalWrites)
            .and_then(|()| client.recv().map(|_| ()));
        assert_eq!(
            result.unwrap_err(),
            TransportError::PeerClosed {
                worker: 7,
                panic: None
            }
        );
    }
}

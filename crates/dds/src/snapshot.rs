//! Immutable, read-only view of a completed round.
//!
//! The defining property of the AMPC model is that "the contents of `D_{i-1}`
//! do not change within round `i`" (Section 2.1, fault tolerance).  A
//! [`Snapshot`] enforces that property in the type system: once a
//! [`crate::ShardedStore`] is frozen it can only be read.  Reads are lock-free
//! (the underlying maps are never mutated) and still counted per shard so the
//! query-contention behaviour of the model can be observed.
//!
//! # Layout
//!
//! The frozen maps store [`crate::slot::Slot`] entries: the ~99% of keys
//! that hold a single value keep it **inline in the hash-map entry**, so a
//! point lookup is one hash probe with no pointer chase and no per-key heap
//! allocation; only multi-value keys reference a shrunk-to-fit
//! `Vec<Value>`.  The maps are the write-side shard maps themselves, frozen
//! **in place** at epoch advance (see [`crate::ShardedStore::freeze`]) — no
//! rebuild, no copy.  The pre-refactor layout (`Vec<Value>` per key, one
//! heap list per key) is kept reachable as [`crate::legacy::LegacyStore`]
//! for the equivalence property tests.

use crate::hashing::{hash_words, FxHashMap};
use crate::key::{Key, Value};
use crate::slot::Slot;
use crate::stats::{ShardLoad, StoreStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A frozen round of the DDS: `D_{i-1}` as seen by machines in round `i`.
///
/// Cloning a snapshot is cheap (it is an `Arc` around the shard data), which
/// is how the runtime hands the same read-only view to every machine thread.
#[derive(Clone)]
pub struct Snapshot {
    inner: Arc<SnapshotInner>,
}

struct SnapshotInner {
    shards: Vec<FxHashMap<Key, Slot>>,
    writes: Vec<u64>,
    reads: Vec<AtomicU64>,
}

impl Snapshot {
    /// Build a snapshot from per-shard frozen maps and their historical
    /// write counts.
    pub(crate) fn from_parts(shards: Vec<FxHashMap<Key, Slot>>, writes: Vec<u64>) -> Self {
        let reads = (0..shards.len()).map(|_| AtomicU64::new(0)).collect();
        Snapshot {
            inner: Arc::new(SnapshotInner {
                shards,
                writes,
                reads,
            }),
        }
    }

    /// An empty snapshot with `num_shards` shards (used as `D_{-1}` before
    /// any input is loaded).
    pub fn empty(num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        Snapshot::from_parts(vec![FxHashMap::default(); num_shards], vec![0; num_shards])
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    #[inline]
    fn shard_of(&self, key: &Key) -> usize {
        (hash_words(key.tag.code(), key.a, key.b) % self.inner.shards.len() as u64) as usize
    }

    #[inline]
    fn record_read(&self, shard: usize) {
        self.inner.reads[shard].fetch_add(1, Ordering::Relaxed);
    }

    /// First value stored under `key`, if any.  Counts as one query.
    pub fn get(&self, key: &Key) -> Option<Value> {
        let shard = self.shard_of(key);
        self.record_read(shard);
        self.inner.shards[shard].get(key).map(Slot::first)
    }

    /// Look up a batch of keys in one call.  Counts as `keys.len()` queries,
    /// exactly as if [`Snapshot::get`] had been called per key.
    ///
    /// `out` is **cleared first**, then filled with one entry per key, in
    /// key order.
    ///
    /// This is the read path behind the runtime's batched adaptive reads: a
    /// real deployment would pipeline the batch over the network, and the
    /// simulation amortizes the per-query read accounting over the batch
    /// (one counter update per shard run instead of one per key).
    pub fn get_many(&self, keys: &[Key], out: &mut Vec<Option<Value>>) {
        out.clear();
        out.resize(keys.len(), None);
        self.get_many_slice(keys, out);
    }

    /// [`Snapshot::get_many`] into a caller-provided slice, for hot loops
    /// that batch into fixed-size stack buffers.  `out[i]` receives the
    /// result for `keys[i]`.  Counts as `keys.len()` queries.
    ///
    /// # Panics
    /// If `out` is shorter than `keys`.
    pub fn get_many_slice(&self, keys: &[Key], out: &mut [Option<Value>]) {
        assert!(
            out.len() >= keys.len(),
            "output slice shorter than key batch"
        );
        // Coalesce read-counter updates over runs of same-shard keys; totals
        // are identical to per-key counting.
        let mut run_shard = usize::MAX;
        let mut run_len = 0u64;
        for (key, slot) in keys.iter().zip(out.iter_mut()) {
            let shard = self.shard_of(key);
            if shard != run_shard {
                if run_len > 0 {
                    self.inner.reads[run_shard].fetch_add(run_len, Ordering::Relaxed);
                }
                run_shard = shard;
                run_len = 0;
            }
            run_len += 1;
            *slot = self.inner.shards[shard].get(key).map(Slot::first);
        }
        if run_len > 0 {
            self.inner.reads[run_shard].fetch_add(run_len, Ordering::Relaxed);
        }
    }

    /// The `index`-th value stored under `key` (zero-based).  Counts as one
    /// query.
    pub fn get_indexed(&self, key: &Key, index: usize) -> Option<Value> {
        let shard = self.shard_of(key);
        self.record_read(shard);
        self.inner.shards[shard]
            .get(key)
            .and_then(|slot| slot.get(index))
    }

    /// All values stored under `key` (empty slice semantics if absent).
    ///
    /// Counts as `multiplicity(key)` queries, mirroring the model where each
    /// `(x, i)` lookup is a separate query.
    pub fn get_all(&self, key: &Key) -> Vec<Value> {
        let shard = self.shard_of(key);
        let values = self.inner.shards[shard]
            .get(key)
            .map(|slot| slot.as_slice().to_vec())
            .unwrap_or_default();
        self.inner.reads[shard].fetch_add(values.len().max(1) as u64, Ordering::Relaxed);
        values
    }

    /// Number of values stored under `key`.  Counts as one query.
    pub fn multiplicity(&self, key: &Key) -> usize {
        let shard = self.shard_of(key);
        self.record_read(shard);
        self.inner.shards[shard].get(key).map_or(0, Slot::len)
    }

    /// Number of distinct keys in the snapshot.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.len()).sum()
    }

    /// `true` if the snapshot holds no keys.
    pub fn is_empty(&self) -> bool {
        self.inner.shards.iter().all(|s| s.is_empty())
    }

    /// Per-shard loads (keys held, historical writes, reads served so far).
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        self.inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardLoad {
                shard: i,
                keys: s.len() as u64,
                writes: self.inner.writes[i],
                reads: self.inner.reads[i].load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Aggregate statistics over all shards.
    pub fn stats(&self) -> StoreStats {
        StoreStats::from_loads(self.shard_loads())
    }

    /// Total reads served by this snapshot so far.
    pub fn total_reads(&self) -> u64 {
        self.inner
            .reads
            .iter()
            .map(|r| r.load(Ordering::Relaxed))
            .sum()
    }

    /// Iterate over every `(key, values)` pair in the snapshot.
    ///
    /// This is *not* an AMPC-model operation (machines can only do point
    /// lookups); it exists for the driver side of algorithms — the part the
    /// paper implements "using standard MPC primitives" — and for tests.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &[Value])> {
        self.inner
            .shards
            .iter()
            .flat_map(|s| s.iter().map(|(k, slot)| (k, slot.as_slice())))
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("num_shards", &self.num_shards())
            .field("keys", &self.len())
            .field("total_reads", &self.total_reads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyTag;
    use crate::store::ShardedStore;

    fn k(a: u64) -> Key {
        Key::of(KeyTag::Scalar, a)
    }

    fn snapshot_with(pairs: &[(u64, u64)]) -> Snapshot {
        let store = ShardedStore::new(8);
        for &(key, val) in pairs {
            store.write(k(key), Value::scalar(val));
        }
        store.freeze()
    }

    #[test]
    fn empty_snapshot_has_no_keys() {
        let snap = Snapshot::empty(4);
        assert!(snap.is_empty());
        assert_eq!(snap.len(), 0);
        assert_eq!(snap.get(&k(0)), None);
        assert_eq!(snap.num_shards(), 4);
    }

    #[test]
    fn reads_are_counted() {
        let snap = snapshot_with(&[(1, 10), (2, 20)]);
        assert_eq!(snap.total_reads(), 0);
        let _ = snap.get(&k(1));
        let _ = snap.get(&k(2));
        let _ = snap.get(&k(3)); // misses still count as queries
        assert_eq!(snap.total_reads(), 3);
    }

    #[test]
    fn get_many_returns_per_key_results_and_counts_each_key() {
        let snap = snapshot_with(&[(1, 10), (2, 20), (3, 30)]);
        let keys = [k(1), k(999), k(3), k(2), k(2)];
        let mut out = Vec::new();
        snap.get_many(&keys, &mut out);
        assert_eq!(
            out,
            vec![
                Some(Value::scalar(10)),
                None,
                Some(Value::scalar(30)),
                Some(Value::scalar(20)),
                Some(Value::scalar(20)),
            ]
        );
        assert_eq!(snap.total_reads(), 5);
    }

    #[test]
    fn get_many_matches_individual_gets() {
        let snap = snapshot_with(&(0..500).map(|i| (i, i * 3)).collect::<Vec<_>>());
        let keys: Vec<Key> = (0..1_000u64).map(k).collect();
        let mut batched = Vec::new();
        snap.get_many(&keys, &mut batched);
        let individual: Vec<Option<Value>> = keys.iter().map(|key| snap.get(key)).collect();
        assert_eq!(batched, individual);
        // Both passes counted every key once.
        assert_eq!(snap.total_reads(), 2_000);
    }

    #[test]
    fn get_all_returns_every_value_in_order() {
        let store = ShardedStore::new(4);
        for i in 0..4u64 {
            store.write(k(9), Value::scalar(i));
        }
        let snap = store.freeze();
        let all = snap.get_all(&k(9));
        assert_eq!(
            all,
            vec![
                Value::scalar(0),
                Value::scalar(1),
                Value::scalar(2),
                Value::scalar(3)
            ]
        );
        assert_eq!(snap.get_all(&k(404)), Vec::<Value>::new());
    }

    #[test]
    fn snapshot_clone_shares_read_counters() {
        let snap = snapshot_with(&[(1, 1)]);
        let clone = snap.clone();
        let _ = clone.get(&k(1));
        assert_eq!(snap.total_reads(), 1);
    }

    #[test]
    fn iter_visits_all_keys() {
        let snap = snapshot_with(&[(1, 10), (2, 20), (3, 30)]);
        let mut seen: Vec<u64> = snap.iter().map(|(key, _)| key.a).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn shard_loads_cover_reads_and_writes() {
        let snap = snapshot_with(&[(1, 10), (2, 20), (3, 30)]);
        let _ = snap.get(&k(1));
        let loads = snap.shard_loads();
        assert_eq!(loads.iter().map(|l| l.writes).sum::<u64>(), 3);
        assert_eq!(loads.iter().map(|l| l.reads).sum::<u64>(), 1);
        assert_eq!(loads.iter().map(|l| l.keys).sum::<u64>(), 3);
    }
}

//! The standalone DDS owner process: [`DdsServer`] / [`serve`].
//!
//! `RemoteBackend::new` spawns its owners as threads of the client process —
//! fine for a simulation, useless for the multi-host deployment the AMPC
//! model actually assumes.  This module is the other half of that story: a
//! process that *only* owns shards, serving any number of concurrent
//! [`crate::TcpBackend`] clients over the [`crate::proto`] wire protocol
//! (`TcpBackend::connect_remote` on the client side, the
//! `quickstart --serve` / `--connect` example end to end).
//!
//! # Sessions
//!
//! Every client connection opens with a [`crate::proto::Request::Lease`]
//! naming `(session, worker)` plus the client's routing topology.  The
//! acceptor routes the connection to the per-`(session, worker)` owner —
//! spawning a fresh [`crate::remote::Worker`] for new coordinates, derived
//! from the announced topology — so concurrent clients coexist in fully
//! isolated sessions of one serving process.
//!
//! # The lease state machine
//!
//! ```text
//!        Lease frame                  socket drop (no Goodbye)
//!  (new) ───────────► GRANTED ─────────────────────────► EXPIRING
//!                      ▲   │ Goodbye                        │  reconnect
//!                      │   ▼                                │  (same session,
//!                      │ RELEASED (state freed now)         │   within ttl)
//!                      │                                    │
//!                      └────────────────────────────────────┘
//!                                         │ ttl elapsed
//!                                         ▼
//!                                     RECLAIMED (pending commits freed;
//!                                     a late reconnect gets resumed=false
//!                                     and the client aborts with
//!                                     TransportError::LeaseLost)
//! ```
//!
//! Expiry is only enforced while a session is *disconnected*: a slow round
//! on a healthy connection never loses its lease, while a dead client's
//! socket closes with its process and starts the countdown.  Reconnects
//! within the ttl resume the exact owner state — the commit sequence
//! deduplication and advance replay that make retransmission idempotent
//! also make resumption exact.

use crate::proto::{OwnerSlice, ShardMap};
use crate::transport::dispatch::Worker;
use crate::transport::{read_lease_frame, LeaseFrame, ServeHandoff, TcpServer};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval of the acceptor's nonblocking accept loop (also bounds
/// shutdown latency).
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Cap on concurrently in-flight handshake threads.  Each lives at most the
/// handshake timeout, so this bounds the thread cost of a pre-lease
/// connection flood; connections arriving beyond the cap are dropped, and a
/// legitimate client simply reconnects with backoff once the flood drains.
const MAX_INFLIGHT_HANDSHAKES: usize = 64;

/// This process's place in a DDS cluster: owner `node` of the topology
/// whose advertised endpoints are `peers` (indexed by node, every owner
/// passes the identical list).  Owner `i` of `n` owns the contiguous shard
/// range `[i*num_shards/n, (i+1)*num_shards/n)` — ranges, not the
/// interleaved per-worker split, so a client can route a shard with one
/// range lookup against the map every owner advertises in its lease grant.
#[derive(Clone, Debug)]
pub struct ClusterRole {
    /// This owner's index into `peers`.
    pub node: usize,
    /// Every owner's client-reachable endpoint, in node order.
    pub peers: Vec<String>,
    /// Stamp on the advertised [`ShardMap`]; all owners of one topology
    /// must advertise the same stamp.
    pub map_epoch: u64,
}

impl ClusterRole {
    /// The shard map this topology advertises for a `num_shards`-shard
    /// session: one contiguous slice per owner, in node order.
    pub fn shard_map(&self, num_shards: usize) -> ShardMap {
        let n = self.peers.len().max(1);
        ShardMap {
            epoch: self.map_epoch,
            owners: self
                .peers
                .iter()
                .enumerate()
                .map(|(i, endpoint)| OwnerSlice {
                    endpoint: endpoint.clone(),
                    start: (i * num_shards / n) as u64,
                    end: ((i + 1) * num_shards / n) as u64,
                })
                .collect(),
        }
    }

    /// The shards this owner holds out of a `num_shards`-shard session.
    fn shard_ids(&self, num_shards: usize) -> Vec<usize> {
        let n = self.peers.len().max(1);
        (self.node * num_shards / n..(self.node + 1) * num_shards / n).collect()
    }
}

/// One owner session: the mailbox feeding its serve thread new
/// (re)connections, plus liveness for reaping.
struct SessionEntry {
    streams: Sender<ServeHandoff>,
    alive: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

type SessionMap = HashMap<(u64, u64), SessionEntry>;

/// A running DDS owner process: accepts leased connections and serves each
/// `(session, worker)` pair with its own [`crate::remote::Worker`].
///
/// Created by [`serve`]; dropped or [`DdsServer::shutdown`] stops accepting
/// new connections and reaps finished sessions (sessions still serving a
/// live client keep running on their own threads until that client says
/// goodbye or its lease expires).
pub struct DdsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    sessions: Arc<Mutex<SessionMap>>,
    acceptor: Option<JoinHandle<()>>,
}

/// Bind `addr` and start serving DDS sessions on a background acceptor
/// thread.  Bind to port 0 for an ephemeral port and read it back with
/// [`DdsServer::local_addr`].
pub fn serve(addr: impl ToSocketAddrs) -> io::Result<DdsServer> {
    serve_on(TcpListener::bind(addr)?, None)
}

/// Bind `addr` and serve as owner `node` of the cluster whose endpoints are
/// `peers` (node-indexed; every owner passes the identical list).  Each
/// lease grant carries the cluster's shard map so clients can discover the
/// topology from any single owner.
pub fn serve_cluster(
    addr: impl ToSocketAddrs,
    node: usize,
    peers: Vec<String>,
) -> io::Result<DdsServer> {
    serve_cluster_listener(TcpListener::bind(addr)?, node, peers)
}

/// [`serve_cluster`] on a pre-bound listener — for spawners that must bind
/// every owner's ephemeral port *before* any peer list can be written down.
pub fn serve_cluster_listener(
    listener: TcpListener,
    node: usize,
    peers: Vec<String>,
) -> io::Result<DdsServer> {
    if node >= peers.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cluster node {node} out of range for {} peers", peers.len()),
        ));
    }
    serve_on(
        listener,
        Some(ClusterRole {
            node,
            peers,
            map_epoch: 1,
        }),
    )
}

fn serve_on(listener: TcpListener, role: Option<ClusterRole>) -> io::Result<DdsServer> {
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let sessions: Arc<Mutex<SessionMap>> = Arc::new(Mutex::new(HashMap::new()));
    let acceptor = {
        let stop = stop.clone();
        let sessions = sessions.clone();
        std::thread::Builder::new()
            .name("dds-serve-acceptor".to_string())
            .spawn(move || accept_loop(listener, stop, sessions, role))?
    };
    Ok(DdsServer {
        addr,
        stop,
        sessions,
        acceptor: Some(acceptor),
    })
}

impl DdsServer {
    /// The address the server is accepting on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions whose owner threads are currently alive (granted or
    /// expiring; released/reclaimed sessions are reaped lazily).
    pub fn active_sessions(&self) -> usize {
        self.sessions
            .lock()
            .values()
            .filter(|entry| entry.alive.load(Ordering::Relaxed))
            .count()
    }

    /// Stop accepting new connections and reap every finished session.
    ///
    /// Sessions still serving a live client are left running detached —
    /// they end when their client says goodbye or their lease expires; a
    /// serving process being torn down hard (SIGKILL, container stop) ends
    /// them with the process, which is exactly the fault the client-side
    /// reconnect machinery absorbs.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let mut sessions = self.sessions.lock();
        for (_, mut entry) in sessions.drain() {
            // Dropping the sender wakes a disconnected session out of its
            // mailbox wait; a finished one joins instantly.  Sessions bound
            // to a live socket are detached (see `shutdown`).
            if !entry.alive.load(Ordering::Relaxed) {
                if let Some(handle) = entry.handle.take() {
                    let _ = handle.join();
                }
            }
        }
    }
}

impl Drop for DdsServer {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

impl std::fmt::Debug for DdsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DdsServer")
            .field("addr", &self.addr)
            .field("active_sessions", &self.active_sessions())
            .finish()
    }
}

/// The accept loop: hand each connection to a short-lived handshake thread
/// that lease-validates it and routes it to its `(session, worker)` owner,
/// spawning the owner on first contact.  The handshake runs off the
/// acceptor so a wedged pre-lease connection (port scanner, half-open
/// socket) stalls nobody but itself — the handshake read timeout bounds
/// each thread's lifetime.
fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    sessions: Arc<Mutex<SessionMap>>,
    role: Option<ClusterRole>,
) {
    let inflight = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Accepted sockets must block — some platforms inherit the
                // listener's nonblocking flag, which would turn every
                // handshake read into an instant WouldBlock.
                if stream.set_nonblocking(false).is_err() {
                    continue; // unconfigurable socket: drop it
                }
                if inflight.fetch_add(1, Ordering::Relaxed) >= MAX_INFLIGHT_HANDSHAKES {
                    inflight.fetch_sub(1, Ordering::Relaxed);
                    continue; // handshake flood: shed this connection
                }
                let guard = InflightGuard(inflight.clone());
                let sessions = sessions.clone();
                let role = role.clone();
                let handshake = std::thread::Builder::new()
                    .name("dds-serve-handshake".to_string())
                    .spawn(move || {
                        let _guard = guard;
                        if let Some(lease) = read_lease_frame(&stream) {
                            route(&sessions, stream, lease, &role);
                        } // else: not a protocol client; drop it
                    });
                drop(handshake); // detached; lifetime bounded by the timeout
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                reap(&sessions);
                #[allow(clippy::disallowed_methods)]
                // lint: allow(blocking) — accept-loop idle poll: bounded by ACCEPT_POLL and only taken when no connection is pending; per-connection serving happens on other threads
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break, // listener broken: stop serving
        }
    }
}

/// Decrements the in-flight handshake count when its thread ends, however
/// it ends (spawn failure drops the guard immediately).
struct InflightGuard(Arc<std::sync::atomic::AtomicUsize>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Hand a lease-validated connection to its session owner, spawning the
/// owner thread if these coordinates are new (or were reclaimed).
fn route(
    sessions: &Arc<Mutex<SessionMap>>,
    stream: TcpStream,
    lease: LeaseFrame,
    role: &Option<ClusterRole>,
) {
    let key = (lease.session, lease.worker);
    let mut handoff = ServeHandoff {
        stream,
        session: lease.session,
        ttl_ms: lease.ttl_ms,
    };
    let stale;
    {
        let mut sessions = sessions.lock();
        if let Some(entry) = sessions.get(&key) {
            if entry.alive.load(Ordering::Relaxed) {
                match entry.streams.send(handoff) {
                    Ok(()) => return, // resumed: the owner adopts the reconnect
                    Err(std::sync::mpsc::SendError(returned)) => handoff = returned,
                }
            }
            // The owner exited (goodbye or expiry) between reaps: reclaim
            // the slot and start the session fresh.  A reconnecting client
            // sees the fresh session's `resumed = false` grant and aborts
            // with the typed `TransportError::LeaseLost` — exactly the
            // reclaim semantics.
            stale = sessions.remove(&key);
        } else {
            stale = None;
        }
        // Spawning stays under the lock — it is microseconds, and it keeps
        // two concurrent handshakes for the same coordinates from racing
        // their owners.
        spawn_session(&mut sessions, key, &lease, role);
        if let Some(entry) = sessions.get(&key) {
            let _ = entry.streams.send(handoff);
        }
    }
    // Joining the dead owner's thread happens outside the lock: teardown
    // must stall neither concurrent handshakes nor the acceptor's reap.
    if let Some(entry) = stale {
        join_finished(entry);
    }
}

/// Spawn the owner thread of a brand-new session.  In cluster mode the
/// role, not the lease's interleaved topology, decides which shards this
/// process owns — the lease's `num_shards` still sizes the session, and
/// every grant carries the cluster's shard map for that size.
fn spawn_session(
    sessions: &mut SessionMap,
    key: (u64, u64),
    lease: &LeaseFrame,
    role: &Option<ClusterRole>,
) {
    let num_shards = (lease.num_shards as usize).max(1);
    let workers = (lease.workers as usize).clamp(1, num_shards);
    let worker = (lease.worker as usize).min(workers.saturating_sub(1));
    let (shard_ids, shard_map) = match role {
        Some(role) => (role.shard_ids(num_shards), Some(role.shard_map(num_shards))),
        None => (
            (worker..num_shards)
                .step_by(workers)
                .collect::<Vec<usize>>(),
            None,
        ),
    };
    let (tx, rx) = channel::<ServeHandoff>();
    let alive = Arc::new(AtomicBool::new(true));
    let thread_alive = alive.clone();
    let handle = std::thread::Builder::new()
        .name(format!("dds-serve-{:x}-{}", key.0, key.1))
        .spawn(move || {
            // Clear the liveness flag even if the owner panics on a
            // protocol violation, so the slot can be reclaimed.
            struct AliveGuard(Arc<AtomicBool>);
            impl Drop for AliveGuard {
                fn drop(&mut self) {
                    self.0.store(false, Ordering::Relaxed);
                }
            }
            let _guard = AliveGuard(thread_alive);
            let server = TcpServer::from_mailbox(rx, worker).with_shard_map(shard_map);
            Worker::new(shard_ids).serve(server);
        });
    match handle {
        Ok(handle) => {
            sessions.insert(
                key,
                SessionEntry {
                    streams: tx,
                    alive,
                    handle: Some(handle),
                },
            );
        }
        Err(_) => drop(tx), // spawn failed: the client will retry and error
    }
}

/// Reap sessions whose owner threads have finished (goodbye or expiry).
/// Entries are unlinked under the lock, joined outside it — see `route`.
fn reap(sessions: &Arc<Mutex<SessionMap>>) {
    let finished: Vec<SessionEntry> = {
        let mut sessions = sessions.lock();
        let keys: Vec<(u64, u64)> = sessions
            .iter()
            .filter(|(_, entry)| !entry.alive.load(Ordering::Relaxed))
            .map(|(&key, _)| key)
            .collect();
        keys.into_iter()
            .filter_map(|key| sessions.remove(&key))
            .collect()
    };
    for entry in finished {
        join_finished(entry);
    }
}

fn join_finished(mut entry: SessionEntry) {
    if let Some(handle) = entry.handle.take() {
        // The owner may have panicked on a protocol violation; the panic
        // already ended the session, nothing to propagate here.
        let _ = handle.join();
    }
}

#[cfg(test)]
mod tests {
    // Tests pace races with short sleeps; the discipline only binds the
    // serve path.
    #![allow(clippy::disallowed_methods)]

    use super::*;
    use crate::backend::{DdsBackend, SnapshotView};
    use crate::key::{Key, KeyTag, Value};
    use crate::proto::{decode_reply, encode_request, read_frame, write_frame, Reply, Request};
    use crate::TcpBackend;
    use std::io::Write;

    fn k(a: u64) -> Key {
        Key::of(KeyTag::Scalar, a)
    }

    fn lease_frame(session: u64, worker: u64, ttl_ms: u64) -> Request {
        Request::Lease {
            session,
            worker,
            num_shards: 4,
            workers: 1,
            ttl_ms,
        }
    }

    fn send_request(stream: &mut TcpStream, request: &Request) {
        write_frame(stream, &encode_request(request)).unwrap();
        stream.flush().unwrap();
    }

    fn read_reply(stream: &mut TcpStream) -> Reply {
        let mut payload = Vec::new();
        read_frame(stream, &mut payload).unwrap();
        decode_reply(&payload).unwrap()
    }

    #[test]
    fn serve_hosts_isolated_concurrent_sessions() {
        let server = serve(("127.0.0.1", 0)).unwrap();
        let addr = server.local_addr();

        let mut alpha = TcpBackend::connect_remote(addr, 8, 2).unwrap();
        let mut beta = TcpBackend::connect_remote(addr, 8, 2).unwrap();

        alpha.commit_round(
            vec![(0..20u64).map(|i| (k(i), Value::scalar(i))).collect()],
            1,
        );
        beta.commit_round(vec![vec![(k(1), Value::scalar(999))]], 1);
        let alpha_view = alpha.advance(1);
        let beta_view = beta.advance(1);

        // Sessions are fully isolated: same keys, different stores.
        assert_eq!(alpha_view.get(&k(1)), Some(Value::scalar(1)));
        assert_eq!(beta_view.get(&k(1)), Some(Value::scalar(999)));
        assert_eq!(alpha_view.len(), 20);
        assert_eq!(beta_view.len(), 1);
        assert_eq!(alpha.total_writes(), 20);
        assert_eq!(beta.total_writes(), 1);
        assert_eq!(server.active_sessions(), 4, "2 clients × 2 workers");

        // Goodbyes release sessions immediately (no lease wait).
        drop(alpha);
        drop(beta);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.active_sessions() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.active_sessions(), 0);
        server.shutdown();
    }

    #[test]
    fn reconnect_within_ttl_resumes_owner_state() {
        let server = serve(("127.0.0.1", 0)).unwrap();
        let addr = server.local_addr();
        let session = 0xdead_beef;

        // First connection: lease, commit 3 pairs, then vanish abruptly
        // (no goodbye).
        let mut first = TcpStream::connect(addr).unwrap();
        send_request(&mut first, &lease_frame(session, 0, 60_000));
        assert_eq!(
            read_reply(&mut first),
            Reply::LeaseGranted {
                session,
                ttl_ms: 60_000,
                resumed: false,
                shard_map: None
            }
        );
        send_request(
            &mut first,
            &Request::Commit {
                epoch: 0,
                seq: 7,
                batches: vec![(0, vec![(k(1), Value::scalar(1)), (k(2), Value::scalar(2))])],
            },
        );
        assert_eq!(
            read_reply(&mut first),
            Reply::Committed {
                epoch: 0,
                accepted: 2
            }
        );
        first.shutdown(std::net::Shutdown::Both).unwrap();
        drop(first);

        // Reconnect within the lease: the grant reports resumption, the
        // replayed commit (same seq) is re-acked without re-applying, and
        // the owner's state is intact.
        let mut second = TcpStream::connect(addr).unwrap();
        send_request(&mut second, &lease_frame(session, 0, 60_000));
        assert_eq!(
            read_reply(&mut second),
            Reply::LeaseGranted {
                session,
                ttl_ms: 60_000,
                resumed: true,
                shard_map: None
            }
        );
        send_request(
            &mut second,
            &Request::Commit {
                epoch: 0,
                seq: 7,
                batches: vec![(0, vec![(k(1), Value::scalar(1)), (k(2), Value::scalar(2))])],
            },
        );
        assert_eq!(
            read_reply(&mut second),
            Reply::Committed {
                epoch: 0,
                accepted: 2
            },
            "the replayed commit must be re-acked, not re-applied"
        );
        send_request(&mut second, &Request::TotalWrites);
        assert_eq!(
            read_reply(&mut second),
            Reply::TotalWrites(2),
            "exactly-once application across the reconnect"
        );
        send_request(&mut second, &Request::Goodbye);
        server.shutdown();
    }

    #[test]
    fn expired_leases_reclaim_the_session() {
        let server = serve(("127.0.0.1", 0)).unwrap();
        let addr = server.local_addr();
        let session = 0x5e55;

        let mut first = TcpStream::connect(addr).unwrap();
        send_request(&mut first, &lease_frame(session, 0, 50));
        assert!(matches!(
            read_reply(&mut first),
            Reply::LeaseGranted { resumed: false, .. }
        ));
        send_request(
            &mut first,
            &Request::Commit {
                epoch: 0,
                seq: 1,
                batches: vec![(0, vec![(k(9), Value::scalar(9))])],
            },
        );
        let _ = read_reply(&mut first);
        first.shutdown(std::net::Shutdown::Both).unwrap();
        drop(first);

        // Wait out the 50 ms lease: the owner thread must exit and the
        // session be reaped.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.active_sessions() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.active_sessions(), 0, "expiry must reclaim");

        // A late reconnect gets a fresh session — resumed=false tells the
        // client its pending commits are gone (TransportError::LeaseLost
        // at the transport layer).
        let mut late = TcpStream::connect(addr).unwrap();
        send_request(&mut late, &lease_frame(session, 0, 50));
        assert!(matches!(
            read_reply(&mut late),
            Reply::LeaseGranted { resumed: false, .. }
        ));
        send_request(&mut late, &Request::TotalWrites);
        assert_eq!(
            read_reply(&mut late),
            Reply::TotalWrites(0),
            "reclaimed sessions start from scratch"
        );
        send_request(&mut late, &Request::Goodbye);
        server.shutdown();
    }

    #[test]
    fn expiry_never_races_a_pipelined_burst_on_a_live_connection() {
        let server = serve(("127.0.0.1", 0)).unwrap();
        let addr = server.local_addr();
        let session = 0xb0257;

        // A lease far shorter than the time this burst takes to be applied,
        // acknowledged and read back.  The countdown starts at *disconnect*,
        // never while the socket is up — not even while replies are still
        // being flushed toward a client that has not read them yet.
        let mut stream = TcpStream::connect(addr).unwrap();
        send_request(&mut stream, &lease_frame(session, 0, 50));
        assert!(matches!(
            read_reply(&mut stream),
            Reply::LeaseGranted { resumed: false, .. }
        ));

        const BURST: u64 = 32;
        for seq in 0..BURST {
            send_request(
                &mut stream,
                &Request::Commit {
                    epoch: 0,
                    seq,
                    batches: vec![(0, vec![(k(seq), Value::scalar(seq))])],
                },
            );
        }
        // Dwell several lease lifetimes with every ack unread: the replies
        // sit flushed in the socket while the connection idles.
        std::thread::sleep(Duration::from_millis(250));
        assert_eq!(
            server.active_sessions(),
            1,
            "a live connection must never be reclaimed, pipelined or idle"
        );
        for _ in 0..BURST {
            assert!(matches!(read_reply(&mut stream), Reply::Committed { .. }));
        }
        send_request(&mut stream, &Request::TotalWrites);
        assert_eq!(
            read_reply(&mut stream),
            Reply::TotalWrites(BURST),
            "every pipelined commit must be applied exactly once"
        );
        send_request(&mut stream, &Request::Goodbye);
        server.shutdown();
    }

    #[test]
    fn mid_stream_renewal_refreshes_the_ttl_and_reports_resumed() {
        let server = serve(("127.0.0.1", 0)).unwrap();
        let addr = server.local_addr();
        let session = 0x001e_a5ed;

        let mut stream = TcpStream::connect(addr).unwrap();
        send_request(&mut stream, &lease_frame(session, 0, 60_000));
        assert!(matches!(
            read_reply(&mut stream),
            Reply::LeaseGranted { resumed: false, .. }
        ));
        send_request(
            &mut stream,
            &Request::Commit {
                epoch: 0,
                seq: 1,
                batches: vec![(0, vec![(k(3), Value::scalar(3))])],
            },
        );
        let _ = read_reply(&mut stream);

        // An explicit renewal on the live connection: the grant reports
        // `resumed = true` (the session's state is by definition intact
        // mid-stream) and carries the refreshed ttl; the owner keeps
        // serving with its state untouched.
        send_request(&mut stream, &lease_frame(session, 0, 120_000));
        assert_eq!(
            read_reply(&mut stream),
            Reply::LeaseGranted {
                session,
                ttl_ms: 120_000,
                resumed: true,
                shard_map: None
            }
        );
        send_request(&mut stream, &Request::TotalWrites);
        assert_eq!(read_reply(&mut stream), Reply::TotalWrites(1));
        send_request(&mut stream, &Request::Goodbye);
        server.shutdown();
    }

    #[test]
    fn garbage_connections_do_not_stall_the_acceptor() {
        let server = serve(("127.0.0.1", 0)).unwrap();
        let addr = server.local_addr();
        // A connection that never sends a lease is dropped on handshake
        // timeout; a real client connecting afterwards is served normally.
        let _garbage = TcpStream::connect(addr).unwrap();
        let mut backend = TcpBackend::connect_remote(addr, 2, 1).unwrap();
        backend.commit_round(vec![vec![(k(1), Value::scalar(1))]], 1);
        let view = backend.advance(1);
        assert_eq!(view.get(&k(1)), Some(Value::scalar(1)));
        drop(backend);
        server.shutdown();
    }
}

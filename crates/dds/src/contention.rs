//! Weighted balls-into-bins simulation behind Lemma 2.1.
//!
//! Lemma 2.1 of the paper: consider `T` balls with integer weights in
//! `[0, P]` whose weights sum to `T`, thrown independently and uniformly at
//! random into `P` bins; if `S = T/P` and `P = O(S^{1-Ω(1)})` then the total
//! weight landing in every bin is `O(S)` with high probability.  The balls
//! are the key-value pairs, the weights are how many times each pair is
//! queried, and the bins are the DDS machines.
//!
//! [`simulate_balls_into_bins`] runs that experiment so the contention bench
//! can report the *measured* max-bin load next to the analytical `O(S)`
//! prediction, and [`BallsInBinsReport`] summarises one trial.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Outcome of one weighted balls-into-bins trial.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BallsInBinsReport {
    /// Number of bins (`P`, the DDS machines).
    pub bins: usize,
    /// Number of balls thrown (`T`, the key-value pairs).
    pub balls: usize,
    /// Total weight of all balls (equals `T` in the lemma's setting).
    pub total_weight: u64,
    /// Mean weight per bin, i.e. `S = T / P`.
    pub mean_load: f64,
    /// Maximum total weight observed in any bin.
    pub max_load: u64,
    /// `max_load / mean_load`; Lemma 2.1 predicts this stays O(1).
    pub imbalance: f64,
}

/// Throw weighted balls into bins uniformly at random and report the loads.
///
/// `weights[i]` is the weight of ball `i`.  The bin of each ball is chosen
/// independently of its weight, matching the lemma's assumption that the
/// queried keys are independent of the key-to-machine mapping.
pub fn simulate_balls_into_bins(weights: &[u64], bins: usize, seed: u64) -> BallsInBinsReport {
    assert!(bins > 0, "need at least one bin");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut loads = vec![0u64; bins];
    for &w in weights {
        let bin = rng.gen_range(0..bins);
        loads[bin] += w;
    }
    let total_weight: u64 = weights.iter().sum();
    let mean_load = total_weight as f64 / bins as f64;
    let max_load = loads.iter().copied().max().unwrap_or(0);
    let imbalance = if mean_load > 0.0 {
        max_load as f64 / mean_load
    } else {
        1.0
    };
    BallsInBinsReport {
        bins,
        balls: weights.len(),
        total_weight,
        mean_load,
        max_load,
        imbalance,
    }
}

/// Generate a weight vector matching the lemma's setting: `balls` balls whose
/// weights are integers in `[0, max_weight]` scaled so they sum to roughly
/// `balls` (the lemma has total weight `T` equal to the number of balls).
pub fn lemma21_weights(balls: usize, max_weight: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weights = Vec::with_capacity(balls);
    let mut remaining = balls as u64;
    for i in 0..balls {
        let left = balls - i;
        if left as u64 >= remaining {
            // Hand out 0/1 weights once the budget is tight.
            let w = u64::from(remaining > 0 && rng.gen_bool(remaining as f64 / left as f64));
            weights.push(w);
            remaining -= w;
        } else {
            let cap = max_weight.min(remaining);
            let w = rng.gen_range(0..=cap);
            weights.push(w);
            remaining -= w;
        }
    }
    // Dump any unassigned weight on the last ball (still ≤ max_weight + slack
    // only when balls are very few; callers use balls ≫ max_weight).
    if remaining > 0 {
        if let Some(last) = weights.last_mut() {
            *last += remaining;
        }
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_weights_balance_well() {
        let weights = vec![1u64; 100_000];
        let report = simulate_balls_into_bins(&weights, 100, 7);
        assert_eq!(report.total_weight, 100_000);
        assert!((report.mean_load - 1000.0).abs() < 1e-9);
        // With 100k unit balls in 100 bins the max load concentrates tightly.
        assert!(
            report.imbalance < 1.25,
            "imbalance too high: {}",
            report.imbalance
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let weights = vec![1u64; 1000];
        let a = simulate_balls_into_bins(&weights, 10, 42);
        let b = simulate_balls_into_bins(&weights, 10, 42);
        assert_eq!(a, b);
        let c = simulate_balls_into_bins(&weights, 10, 43);
        // Different seed should (almost surely) shuffle loads differently.
        assert!(a.max_load != c.max_load || a.imbalance != c.imbalance || a == c);
    }

    #[test]
    fn lemma21_weights_sum_to_ball_count() {
        for &(balls, max_w) in &[(1000usize, 10u64), (5000, 50), (100, 100)] {
            let weights = lemma21_weights(balls, max_w, 3);
            assert_eq!(weights.len(), balls);
            assert_eq!(weights.iter().sum::<u64>(), balls as u64);
        }
    }

    #[test]
    fn weighted_balls_still_obey_the_lemma_bound() {
        // P = O(S^{1 - δ}): pick P = 64, T = 65_536 so S = 1024 and P = S^0.6.
        let balls = 65_536usize;
        let bins = 64usize;
        let weights = lemma21_weights(balls, bins as u64, 11);
        let report = simulate_balls_into_bins(&weights, bins, 11);
        let s = balls as f64 / bins as f64;
        // Lemma 2.1: max load is O(S); empirically the constant is small.
        assert!(
            (report.max_load as f64) < 2.0 * s,
            "max load {} exceeded 2S = {}",
            report.max_load,
            2.0 * s
        );
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = simulate_balls_into_bins(&[1, 2, 3], 0, 0);
    }

    #[test]
    fn empty_ball_set_is_fine() {
        let report = simulate_balls_into_bins(&[], 8, 0);
        assert_eq!(report.max_load, 0);
        assert_eq!(report.total_weight, 0);
        assert_eq!(report.imbalance, 1.0);
    }
}

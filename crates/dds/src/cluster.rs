//! The multi-owner-process backend: [`ClusterBackend`].
//!
//! [`crate::serve`] scales one owner *process* to many concurrent clients;
//! this module scales the store itself to many owner processes.  A cluster
//! is `N` standalone [`crate::DdsServer`] processes (started with
//! [`crate::serve::serve_cluster`]), each owning one **contiguous range**
//! of the shard space, plus a client that routes every request to the
//! owner of its shards:
//!
//! * **Topology discovery** — every lease grant carries the cluster's
//!   [`ShardMap`] (owner endpoints × shard ranges, epoch-stamped).  The
//!   client connects to each configured endpoint, validates that every
//!   owner advertises the *same* contiguous map for the requested shard
//!   count, and routes by range lookup from then on.
//! * **Commits** — partitioned per owner by shard range and pipelined, one
//!   `Commit` per owning endpoint, exactly like [`RemoteBackend`] does per
//!   worker connection.
//! * **Reads** — unchanged from [`RemoteBackend`]: each advance rebuilds a
//!   local replica of every owner's frozen shard group, so the view is a
//!   plain [`RemoteSnapshot`] (with ranged routing) and reads never touch
//!   the wire.
//! * **Advance** — the one genuinely distributed step.  With one owner,
//!   `Advance` freezes and publishes atomically inside the owner; with
//!   many owners that atomicity has to be built, and this module builds it
//!   as a client-coordinated **two-phase barrier** — see below.
//!
//! # The two-phase advance barrier
//!
//! ```text
//!  phase 1: FreezeEpoch(e) ──► every owner      (all must ack…)
//!                 owner: park writable epoch e as `prepared`
//!                        — invisible to Loads/Dump, commits for e+1 accepted
//!  phase 2: PublishEpoch(e) ──► every owner     (…before any publish)
//!                 owner: prepared → published, reply with the epoch frame
//! ```
//!
//! No `PublishEpoch` is sent until **every** owner has acked its freeze, so
//! a client can never observe a mixed epoch: either no owner has published
//! `e` (any failure before the last freeze ack aborts the advance with a
//! typed error and nothing published), or every owner is guaranteed to
//! publish `e` eventually — `FreezeEpoch` and `PublishEpoch` are both
//! idempotent under replay, so an owner severed mid-barrier reconnects,
//! replays, and re-acks/re-publishes the identical frozen data.  A
//! prepared-but-unpublished epoch survives reconnection inside the owner's
//! session state and is re-publishable exactly once-semantically, however
//! many times the publish is retransmitted.
//!
//! Epoch frames are fetched **in parallel** (one thread per owner) during
//! phase 2: frame decode and replica rebuild dominate advance latency, and
//! they are per-owner independent.

use crate::backend::DdsBackend;
use crate::key::{Key, Value};
use crate::proto::{Reply, Request, ShardMap};
use crate::remote::{expect_transport, FrozenEpoch, RemoteSnapshot, Routing};
use crate::serve::{serve_cluster_listener, DdsServer};
use crate::stats::ShardLoad;
use crate::transport::{
    panic_message, ClientReply, RequestFaults, TcpOptions, TcpTransport, Transport, TransportError,
};
use crate::FxHashMap;
use std::net::TcpListener;
use std::sync::Arc;

/// A DDS backend over `OWNERS` standalone owner processes, each owning a
/// contiguous shard range.
///
/// Connect to running owners with [`ClusterBackend::connect_cluster`], or
/// spawn a self-contained local cluster with
/// [`ClusterBackend::spawn_local`] (which the `DdsBackend::with_shards`
/// surface uses, making `cluster(n)` a drop-in leg of the conformance and
/// determinism suites).  `OWNERS` is a const parameter so a test suite can
/// hold `cluster(2)` and `cluster(4)` side by side as distinct backends.
pub struct ClusterBackend<const OWNERS: usize = 2> {
    /// One leased connection per owner, in node order.  Declared before
    /// `servers` so goodbyes release every lease before the servers (if
    /// locally spawned) stop accepting.
    owners: Vec<TcpTransport>,
    /// Locally spawned owner processes (empty when connected to external
    /// endpoints); held for their lifetime, shut down on drop.
    servers: Vec<DdsServer>,
    /// Ranged routing derived from the validated shard map.
    routing: Routing,
    /// The topology every owner advertised.
    map: ShardMap,
    completed: usize,
    faults: RequestFaults,
    next_seq: u64,
}

impl<const OWNERS: usize> ClusterBackend<OWNERS> {
    /// Spawn a self-contained local cluster: `OWNERS` serving processes on
    /// ephemeral localhost ports, plus a client connected to all of them.
    ///
    /// Listeners are bound *before* any server starts, so every owner can
    /// be told the full peer list — the chicken-and-egg every ephemeral
    ///-port cluster spawner has to break.
    pub fn spawn_local(num_shards: usize) -> Result<Self, TransportError> {
        let num_shards = num_shards.max(1);
        let mut listeners = Vec::with_capacity(OWNERS);
        let mut peers = Vec::with_capacity(OWNERS);
        for node in 0..OWNERS {
            let listener =
                TcpListener::bind(("127.0.0.1", 0)).map_err(|err| TransportError::Io {
                    worker: node,
                    message: format!("binding cluster owner {node}: {err}"),
                })?;
            peers.push(
                listener
                    .local_addr()
                    .map_err(|err| TransportError::Io {
                        worker: node,
                        message: format!("reading cluster owner {node}'s address: {err}"),
                    })?
                    .to_string(),
            );
            listeners.push(listener);
        }
        let mut servers = Vec::with_capacity(OWNERS);
        for (node, listener) in listeners.into_iter().enumerate() {
            servers.push(
                serve_cluster_listener(listener, node, peers.clone()).map_err(|err| {
                    TransportError::Io {
                        worker: node,
                        message: format!("starting cluster owner {node}: {err}"),
                    }
                })?,
            );
        }
        let mut backend = Self::connect_cluster(&peers, num_shards)?;
        backend.servers = servers;
        Ok(backend)
    }

    /// Connect to `OWNERS` already-running cluster owners, one endpoint per
    /// node in node order (each started with [`crate::serve::serve_cluster`]
    /// over the identical peer list).
    ///
    /// Validates the topology before accepting it: every owner must
    /// advertise a shard map, all maps must be identical, contiguous, and
    /// sized for `num_shards` with one slice per connected owner.
    pub fn connect_cluster(
        endpoints: &[String],
        num_shards: usize,
    ) -> Result<Self, TransportError> {
        let num_shards = num_shards.max(1);
        if endpoints.len() != OWNERS {
            return Err(TransportError::Protocol {
                worker: 0,
                message: format!(
                    "cluster backend compiled for {OWNERS} owners got {} endpoints",
                    endpoints.len()
                ),
            });
        }
        let options = TcpOptions::fresh().with_topology(num_shards, OWNERS);
        let mut owners = Vec::with_capacity(OWNERS);
        for (node, endpoint) in endpoints.iter().enumerate() {
            use std::net::ToSocketAddrs;
            let addr = endpoint
                .to_socket_addrs()
                .map_err(|err| TransportError::Io {
                    worker: node,
                    message: format!("resolving cluster owner endpoint {endpoint:?}: {err}"),
                })?
                .next()
                .ok_or_else(|| TransportError::Io {
                    worker: node,
                    message: format!("cluster owner endpoint {endpoint:?} resolved to nothing"),
                })?;
            owners.push(TcpTransport::connect_to(addr, node, options.clone())?);
        }
        // Settle every handshake, then hold the advertised maps to one
        // validated truth.
        for owner in &mut owners {
            owner.finish_handshake()?;
        }
        let map = validated_shard_map(&owners, num_shards)?;
        let starts = map
            .owners
            .iter()
            .map(|slice| slice.start as usize)
            .collect();
        Ok(ClusterBackend {
            owners,
            servers: Vec::new(),
            routing: Routing::ranged(num_shards, starts),
            map,
            completed: 0,
            faults: RequestFaults::none(),
            next_seq: 0,
        })
    }

    /// The validated cluster topology.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Fallible [`DdsBackend::commit_round`]: partition the ordered batches
    /// by owning range, pipeline one `Commit` per owner, collect the acks.
    pub fn try_commit_round(
        &mut self,
        batches: Vec<Vec<(Key, Value)>>,
    ) -> Result<u64, TransportError> {
        type OwnerBuckets = Vec<(usize, Vec<(Key, Value)>)>;
        let mut buckets: Vec<OwnerBuckets> = vec![Vec::new(); OWNERS];
        let mut bucket_index: FxHashMap<(usize, usize), usize> = FxHashMap::default();
        for batch in batches {
            for (key, value) in batch {
                let (owner, local) = self.routing.route(&key);
                let slot = *bucket_index.entry((owner, local)).or_insert_with(|| {
                    buckets[owner].push((local, Vec::new()));
                    buckets[owner].len() - 1
                });
                buckets[owner][slot].1.push((key, value));
            }
        }
        let epoch = self.completed;
        let mut pending = Vec::with_capacity(OWNERS);
        for (owner, batches) in buckets.into_iter().enumerate() {
            if !batches.is_empty() {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.owners[owner].send(Request::Commit {
                    epoch,
                    seq,
                    batches,
                })?;
                pending.push(owner);
            }
        }
        let mut accepted = 0u64;
        for owner in pending {
            match self.recv_wire(owner)? {
                Reply::Committed { accepted: n, .. } => accepted += n,
                other => return Err(protocol(owner, "a commit ack", &other)),
            }
        }
        Ok(accepted)
    }

    /// Fallible [`DdsBackend::advance`]: the two-phase barrier of the
    /// [module docs](self).  Phase 1 freezes the writable epoch on every
    /// owner and waits for **all** acks; phase 2 publishes and fetches each
    /// owner's epoch frame on its own thread.
    pub fn try_advance(&mut self) -> Result<RemoteSnapshot, TransportError> {
        let epoch = self.completed;
        // Phase 1 — freeze everywhere.  Pipelined sends, then the ack
        // barrier: no owner is asked to publish until every owner holds
        // epoch `epoch` prepared, so a failure here aborts the advance with
        // nothing published anywhere.
        for owner in &mut self.owners {
            owner.send(Request::FreezeEpoch { epoch })?;
        }
        for owner in 0..OWNERS {
            match self.recv_wire(owner)? {
                Reply::EpochFrozen { epoch: acked } if acked == epoch => {}
                Reply::EpochFrozen { epoch: acked } => {
                    return Err(TransportError::Protocol {
                        worker: owner,
                        message: format!("froze epoch {acked}, expected {epoch}"),
                    })
                }
                other => return Err(protocol(owner, "a freeze ack", &other)),
            }
        }
        // Phase 2 — publish everywhere, fetching and rebuilding the frames
        // in parallel (replica rebuild dominates advance latency).
        let groups: Result<Vec<Arc<FrozenEpoch>>, TransportError> = std::thread::scope(|scope| {
            let fetchers: Vec<_> = self
                .owners
                .iter_mut()
                .enumerate()
                .map(|(node, owner)| {
                    scope.spawn(move || -> Result<Arc<FrozenEpoch>, TransportError> {
                        owner.send(Request::PublishEpoch { epoch })?;
                        match owner.recv()? {
                            ClientReply::Wire(Reply::Epoch(frame)) => {
                                Ok(Arc::new(FrozenEpoch::from_frame(frame)))
                            }
                            ClientReply::Wire(other) => {
                                Err(protocol(node, "a published epoch", &other))
                            }
                            ClientReply::SharedEpoch(shared) => Ok(shared),
                        }
                    })
                })
                .collect();
            fetchers
                .into_iter()
                .enumerate()
                .map(|(node, fetcher)| {
                    fetcher.join().unwrap_or_else(|payload| {
                        // A panicked fetcher is a dead owner connection,
                        // not a dead coordinator: surface it as the same
                        // typed error an owner crash produces elsewhere.
                        Err(TransportError::PeerClosed {
                            worker: node,
                            panic: panic_message(payload.as_ref()),
                        })
                    })
                })
                .collect()
        });
        self.completed += 1;
        Ok(RemoteSnapshot::published(
            self.routing.clone(),
            epoch,
            groups?,
        ))
    }

    /// Fallible [`DdsBackend::total_writes`]: fan out, sum the replies.
    pub fn try_total_writes(&mut self) -> Result<u64, TransportError> {
        for owner in &mut self.owners {
            owner.send(Request::TotalWrites)?;
        }
        let mut total = 0;
        for owner in 0..OWNERS {
            match self.recv_wire(owner)? {
                Reply::TotalWrites(writes) => total += writes,
                other => return Err(protocol(owner, "a total-writes reply", &other)),
            }
        }
        Ok(total)
    }

    /// Owner-served per-shard loads of completed epoch `epoch`, fanned out
    /// and merged in global shard order.
    pub fn epoch_loads(&mut self, epoch: usize) -> Result<Vec<ShardLoad>, TransportError> {
        for owner in &mut self.owners {
            owner.send(Request::Loads { epoch })?;
        }
        let mut loads = Vec::new();
        for owner in 0..OWNERS {
            match self.recv_wire(owner)? {
                Reply::Loads(owner_loads) => loads.extend(owner_loads),
                other => return Err(protocol(owner, "a loads reply", &other)),
            }
        }
        loads.sort_by_key(|load| load.shard);
        Ok(loads)
    }

    /// Owner-served dump of completed epoch `epoch` (no particular order).
    pub fn epoch_entries(
        &mut self,
        epoch: usize,
    ) -> Result<Vec<(Key, Vec<Value>)>, TransportError> {
        for owner in &mut self.owners {
            owner.send(Request::Dump { epoch })?;
        }
        let mut entries = Vec::new();
        for owner in 0..OWNERS {
            match self.recv_wire(owner)? {
                Reply::Dump(owner_entries) => entries.extend(owner_entries),
                other => return Err(protocol(owner, "a dump reply", &other)),
            }
        }
        Ok(entries)
    }

    fn recv_wire(&mut self, owner: usize) -> Result<Reply, TransportError> {
        match self.owners[owner].recv()? {
            ClientReply::Wire(reply) => Ok(reply),
            ClientReply::SharedEpoch(_) => Err(TransportError::Protocol {
                worker: owner,
                message: "unsolicited epoch publication".to_string(),
            }),
        }
    }
}

fn protocol(owner: usize, expected: &str, got: &Reply) -> TransportError {
    TransportError::Protocol {
        worker: owner,
        message: format!("expected {expected}, got {got:?}"),
    }
}

/// Settle on the one shard map every owner must advertise, or say exactly
/// which owner disagrees and how.
fn validated_shard_map(
    owners: &[TcpTransport],
    num_shards: usize,
) -> Result<ShardMap, TransportError> {
    let mut settled: Option<ShardMap> = None;
    for (node, owner) in owners.iter().enumerate() {
        let map = owner.shard_map().ok_or_else(|| TransportError::Protocol {
            worker: node,
            message: "owner granted a lease without a cluster shard map".to_string(),
        })?;
        if map.owners.len() != owners.len() {
            return Err(TransportError::Protocol {
                worker: node,
                message: format!(
                    "owner advertises {} owners, client connected to {}",
                    map.owners.len(),
                    owners.len()
                ),
            });
        }
        if map.num_shards() != num_shards || !map.is_contiguous() {
            return Err(TransportError::Protocol {
                worker: node,
                message: format!(
                    "owner's shard map does not tile [0, {num_shards}) contiguously: {:?}",
                    map.owners
                ),
            });
        }
        match &settled {
            None => settled = Some(map.clone()),
            Some(first) if first == map => {}
            Some(first) => {
                return Err(TransportError::Protocol {
                    worker: node,
                    message: format!(
                        "owners disagree on the topology: node 0 advertises {first:?}, \
                         node {node} advertises {map:?}"
                    ),
                })
            }
        }
    }
    settled.ok_or_else(|| TransportError::Protocol {
        worker: 0,
        message: "a cluster needs at least one owner".to_string(),
    })
}

impl<const OWNERS: usize> DdsBackend for ClusterBackend<OWNERS> {
    type View = RemoteSnapshot;

    fn with_shards(num_shards: usize, _threads: usize) -> Self {
        expect_transport(Self::spawn_local(num_shards))
    }

    fn num_shards(&self) -> usize {
        self.routing.num_shards()
    }

    fn empty_view(&self) -> RemoteSnapshot {
        RemoteSnapshot::empty(self.routing.clone())
    }

    fn commit_round(&mut self, batches: Vec<Vec<(Key, Value)>>, _threads: usize) {
        expect_transport(self.try_commit_round(batches));
    }

    fn advance(&mut self, _threads: usize) -> RemoteSnapshot {
        expect_transport(self.try_advance())
    }

    fn completed_epochs(&self) -> usize {
        self.completed
    }

    fn total_writes(&mut self) -> u64 {
        expect_transport(self.try_total_writes())
    }

    fn backend_name(&self) -> &'static str {
        "cluster"
    }

    fn install_request_faults(&mut self, faults: RequestFaults) {
        self.faults = faults.clone();
        for owner in &mut self.owners {
            owner.install_faults(faults.clone());
        }
    }

    fn dropped_requests(&self) -> u64 {
        self.faults.dropped()
    }

    fn severed_connections(&self) -> u64 {
        self.faults.severed()
    }
}

impl<const OWNERS: usize> std::fmt::Debug for ClusterBackend<OWNERS> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBackend")
            .field("owners", &OWNERS)
            .field("num_shards", &self.routing.num_shards())
            .field("local_servers", &self.servers.len())
            .field("completed_epochs", &self.completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SnapshotView;
    use crate::key::KeyTag;
    use crate::proto::RequestKind;
    use crate::serve::serve_cluster;

    fn k(a: u64) -> Key {
        Key::of(KeyTag::Scalar, a)
    }

    fn full_round<const N: usize>(backend: &mut ClusterBackend<N>) -> RemoteSnapshot {
        backend.commit_round(
            vec![
                (0..64u64).map(|i| (k(i % 24), Value::scalar(i))).collect(),
                vec![(k(3), Value::pair(7, 8))],
            ],
            1,
        );
        backend.advance(1)
    }

    #[test]
    fn a_local_cluster_serves_commits_and_advances() {
        let mut cluster = ClusterBackend::<3>::spawn_local(8).unwrap();
        let map = cluster.shard_map().clone();
        assert_eq!(map.owners.len(), 3);
        assert!(map.is_contiguous());
        assert_eq!(map.num_shards(), 8);

        let view = full_round(&mut cluster);
        assert_eq!(view.len(), 24);
        assert_eq!(view.get(&k(3)), Some(Value::scalar(3)));
        assert_eq!(view.get_all(&k(3)).len(), 4, "3, 27, 51 and the pair");
        assert_eq!(cluster.total_writes(), 65);

        // Owner-served dumps agree with the client-side replicas.
        let mut local = view.entries();
        let mut served = cluster.epoch_entries(0).unwrap();
        local.sort_by_key(|&(key, _)| key);
        served.sort_by_key(|&(key, _)| key);
        assert_eq!(local, served);

        // And the merged loads cover every global shard exactly once.
        let loads = cluster.epoch_loads(0).unwrap();
        assert_eq!(
            loads.iter().map(|load| load.shard).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cluster_results_match_a_single_owner_byte_for_byte() {
        let mut single = ClusterBackend::<1>::spawn_local(8).unwrap();
        let mut multi = ClusterBackend::<4>::spawn_local(8).unwrap();
        let single_view = full_round(&mut single);
        let multi_view = full_round(&mut multi);
        let mut lhs = single_view.entries();
        let mut rhs = multi_view.entries();
        lhs.sort_by_key(|&(key, _)| key);
        rhs.sort_by_key(|&(key, _)| key);
        assert_eq!(lhs, rhs);
        assert_eq!(single.total_writes(), multi.total_writes());
        // Same global shard space, so the per-shard write loads also agree.
        let lhs = single.epoch_loads(0).unwrap();
        let rhs = multi.epoch_loads(0).unwrap();
        assert_eq!(lhs.len(), rhs.len());
        for (l, r) in lhs.iter().zip(&rhs) {
            assert_eq!((l.shard, l.keys, l.writes), (r.shard, r.keys, r.writes));
        }
    }

    #[test]
    fn owners_severed_mid_barrier_heal_without_a_mixed_epoch() {
        let run = |faulted: bool| {
            let mut cluster = ClusterBackend::<2>::spawn_local(8).unwrap();
            let faults = RequestFaults::none();
            if faulted {
                // Epoch 0's freeze on owner 0, epoch 1's publish on owner 1:
                // both phases of the barrier lose a connection mid-flight.
                faults.schedule_sever(RequestKind::FreezeEpoch, 0, 0);
                faults.schedule_sever(RequestKind::PublishEpoch, 1, 1);
            }
            cluster.install_request_faults(faults.clone());
            let d0 = full_round(&mut cluster);
            cluster.commit_round(
                vec![(0..10u64).map(|i| (k(i), Value::pair(i, 1))).collect()],
                1,
            );
            let d1 = cluster.advance(1);
            let mut entries0 = d0.entries();
            let mut entries1 = d1.entries();
            entries0.sort_by_key(|&(key, _)| key);
            entries1.sort_by_key(|&(key, _)| key);
            (entries0, entries1, cluster.total_writes(), faults.severed())
        };
        let (clean0, clean1, clean_writes, clean_severed) = run(false);
        let (fault0, fault1, fault_writes, fault_severed) = run(true);
        assert_eq!(clean_severed, 0);
        assert_eq!(fault_severed, 2, "both scheduled severs must fire");
        assert_eq!(clean0, fault0);
        assert_eq!(clean1, fault1);
        assert_eq!(clean_writes, fault_writes);
    }

    #[test]
    fn mismatched_topologies_are_rejected_with_a_typed_error() {
        // Two "clusters" that each think they are a different topology: the
        // client connects to one owner of each and must refuse the splice.
        let a = serve_cluster(("127.0.0.1", 0), 0, vec!["a:1".into(), "b:2".into()]).unwrap();
        let b = serve_cluster(("127.0.0.1", 0), 0, vec!["c:3".into(), "d:4".into()]).unwrap();
        let endpoints = vec![a.local_addr().to_string(), b.local_addr().to_string()];
        let err = ClusterBackend::<2>::connect_cluster(&endpoints, 8).unwrap_err();
        match err {
            TransportError::Protocol { worker, message } => {
                assert_eq!(worker, 1);
                assert!(message.contains("disagree"), "{message}");
            }
            other => panic!("expected a topology mismatch, got {other:?}"),
        }

        // A plain (non-cluster) server advertises no map at all.
        let plain = crate::serve::serve(("127.0.0.1", 0)).unwrap();
        let endpoints = vec![plain.local_addr().to_string()];
        let err = ClusterBackend::<1>::connect_cluster(&endpoints, 8).unwrap_err();
        match err {
            TransportError::Protocol { message, .. } => {
                assert!(message.contains("without a cluster shard map"), "{message}");
            }
            other => panic!("expected a missing-map error, got {other:?}"),
        }
    }
}

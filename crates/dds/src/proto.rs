//! The DDS backend wire protocol: serializable requests, replies and frames.
//!
//! [`crate::ChannelBackend`] deliberately shrank the write-side backend
//! surface to a handful of message types so that a multi-process deployment
//! could speak it over a network.  This module promotes that protocol to a
//! first-class, *wire-level* API:
//!
//! * [`Request`] / [`Reply`] — the owner protocol as plain data.  Unlike the
//!   old private `enum Request` in `channel.rs`, no variant carries a reply
//!   channel: every request is answered by exactly one reply, and the
//!   pairing is positional (FIFO per connection), exactly like a
//!   length-prefixed RPC stream.
//! * [`encode_request`] / [`decode_request`] and [`encode_reply`] /
//!   [`decode_reply`] — the byte codec, built on the constant-size pair
//!   encoding of [`crate::codec`] (20-byte keys, 16-byte values).  Every
//!   integer is little-endian; every collection is a `u32` count followed by
//!   its elements.  Decoders reject truncated buffers, unknown tags and
//!   trailing garbage with a typed [`ProtoError`].
//! * [`EpochFrame`] — the framed payload of a frozen epoch: per-shard write
//!   counts plus every `(key, values)` entry.  This is how a remote peer
//!   fetches the frozen maps that the in-process transport hands over as an
//!   `Arc` (see [`crate::transport`]).
//! * [`write_frame`] / [`read_frame`] — length-prefixed framing over any
//!   `Write`/`Read`, with a hard [`MAX_FRAME_BYTES`] cap so a corrupt or
//!   hostile length prefix can never trigger an unbounded allocation.
//!
//! The protocol is versioned implicitly by the conformance suites: a remote
//! backend speaking these frames must produce byte-identical results to the
//! in-process backends (`tests/backend_conformance.rs`,
//! `tests/backend_determinism.rs`), and `crates/dds/tests/proto_roundtrip.rs`
//! pins the codec itself with property tests.

use crate::codec::{
    decode_key, decode_value, ENCODED_KEY_BYTES, ENCODED_PAIR_BYTES, ENCODED_VALUE_BYTES,
};
use crate::key::{Key, Value};
use crate::stats::ShardLoad;
use std::fmt;
use std::io::{IoSlice, Read, Write};

/// Hard ceiling on the size of a single protocol frame (payload bytes).
///
/// Large enough for any epoch this simulation produces (a frame of `k`
/// singleton entries costs ~40 bytes per entry), small enough that a corrupt
/// length prefix cannot drive an unbounded allocation.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// The kind of a [`Request`], without its payload.
///
/// Used by the fault-injection schedule ([`crate::transport::RequestFaults`])
/// to address "drop the `Commit` of epoch 3 on worker 1"-style coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RequestKind {
    /// [`Request::Commit`].
    Commit,
    /// [`Request::Advance`].
    Advance,
    /// [`Request::FreezeEpoch`].
    FreezeEpoch,
    /// [`Request::PublishEpoch`].
    PublishEpoch,
    /// [`Request::Loads`].
    Loads,
    /// [`Request::Dump`].
    Dump,
    /// [`Request::TotalWrites`].
    TotalWrites,
    /// [`Request::Lease`].
    Lease,
    /// [`Request::Goodbye`].
    Goodbye,
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RequestKind::Commit => "commit",
            RequestKind::Advance => "advance",
            RequestKind::FreezeEpoch => "freeze_epoch",
            RequestKind::PublishEpoch => "publish_epoch",
            RequestKind::Loads => "loads",
            RequestKind::Dump => "dump",
            RequestKind::TotalWrites => "total_writes",
            RequestKind::Lease => "lease",
            RequestKind::Goodbye => "goodbye",
        };
        f.write_str(name)
    }
}

/// A request to one shard-group owner.
///
/// `epoch` coordinates always name the epoch the request targets: `Commit`
/// and `Advance` target the *writable* epoch (the number of epochs the owner
/// has frozen so far — owners validate this and panic on a protocol
/// violation), `Loads` and `Dump` target a *completed* epoch.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Apply shard-partitioned pairs to the writable epoch.
    Commit {
        /// Index of the writable epoch the pairs belong to.
        epoch: usize,
        /// Per-connection monotone sequence number.  Owners acknowledge a
        /// retransmitted commit (same `seq` as the last one applied)
        /// without re-applying it, which is what makes the transport's
        /// retry-on-lost-ack safe — at-least-once delivery, exactly-once
        /// application.
        seq: u64,
        /// `batches[i]` = (local shard index within the owner's group,
        /// pairs in commit order).
        batches: Vec<(usize, Vec<(Key, Value)>)>,
    },
    /// Freeze the writable epoch in place, open the next one, and publish
    /// the frozen epoch (as a shared `Arc` in-process, as an
    /// [`EpochFrame`] over the wire).
    Advance {
        /// Index of the epoch being frozen.
        epoch: usize,
    },
    /// Phase 1 of the cluster's two-phase epoch barrier: freeze the
    /// writable epoch in place and hold it *prepared but unpublished*.
    /// Acknowledged with [`Reply::EpochFrozen`]; the coordinator must
    /// collect this ack from **every** owner before any
    /// [`Request::PublishEpoch`] goes out, so no client can observe a
    /// mixed epoch even if an owner dies mid-barrier.  Idempotent: a
    /// replayed freeze of an already-prepared (or already-published)
    /// epoch is re-acknowledged without re-freezing.
    FreezeEpoch {
        /// Index of the epoch being frozen.
        epoch: usize,
    },
    /// Phase 2 of the two-phase barrier: publish the epoch prepared by
    /// [`Request::FreezeEpoch`] and answer with its [`EpochFrame`].
    /// Idempotent: a replayed publish of an already-published epoch
    /// re-sends the same frame, which is what makes a sever between
    /// freeze and publish recoverable.
    PublishEpoch {
        /// Index of the prepared epoch being published.
        epoch: usize,
    },
    /// Report per-shard loads of a completed epoch (keyed by global shard
    /// id).
    Loads {
        /// Completed epoch to report on.
        epoch: usize,
    },
    /// Dump every `(key, values)` pair of a completed epoch (driver/tests).
    Dump {
        /// Completed epoch to dump.
        epoch: usize,
    },
    /// Report total writes accepted so far (all epochs, incl. writable).
    TotalWrites,
    /// Acquire — or, on a reconnect, resume — this connection's epoch
    /// lease.  The first frame of every TCP connection; also accepted
    /// mid-stream as an explicit renewal.  Handled entirely by the
    /// transport/serve layer: owner state machines never see it.
    Lease {
        /// Client-chosen session id.  One backend instance holds one
        /// session; its per-owner connections share it and are told apart
        /// by `worker`.
        session: u64,
        /// Index of the owner this connection addresses.
        worker: u64,
        /// Total shard count of the client's routing topology.  A serving
        /// process derives the owner's shard group as
        /// `(worker..num_shards).step_by(workers)`.
        num_shards: u64,
        /// Owner count of the client's routing topology.
        workers: u64,
        /// Lease duration in milliseconds; `0` asks for a lease that never
        /// expires.  The owner starts the expiry countdown when the
        /// connection drops, not while it is merely idle.
        ttl_ms: u64,
    },
    /// Clean-shutdown notice: the client is done and will not reconnect,
    /// so the owner may release the session immediately instead of holding
    /// its lease open for a reconnect that never comes.  Not answered.
    Goodbye,
}

impl Request {
    /// The kind of this request.
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::Commit { .. } => RequestKind::Commit,
            Request::Advance { .. } => RequestKind::Advance,
            Request::FreezeEpoch { .. } => RequestKind::FreezeEpoch,
            Request::PublishEpoch { .. } => RequestKind::PublishEpoch,
            Request::Loads { .. } => RequestKind::Loads,
            Request::Dump { .. } => RequestKind::Dump,
            Request::TotalWrites => RequestKind::TotalWrites,
            Request::Lease { .. } => RequestKind::Lease,
            Request::Goodbye => RequestKind::Goodbye,
        }
    }

    /// The declared [`ReplayPolicy`] of this request.  Total by
    /// construction: `ampc-lint` fails the build when a `Request` variant
    /// is missing from [`REPLAY_POLICY`].
    pub fn replay_policy(&self) -> ReplayPolicy {
        let kind = self.kind();
        REPLAY_POLICY
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, policy)| *policy)
            // lint: allow(panic) — REPLAY_POLICY totality is machine-checked by the proto-conformance pass
            .unwrap_or_else(|| panic!("REPLAY_POLICY has no entry for {kind}"))
    }
}

/// *Why* a [`Request`] is safe to retransmit — the machine-checked half of
/// the idempotent-replay guarantee.
///
/// After a reconnect the transport replays every request whose reply is
/// outstanding, so every request must be safe to reach the owner twice.
/// How each one achieves that is protocol design, not an implementation
/// accident, so it is declared in [`REPLAY_POLICY`] and cross-checked by
/// `ampc-lint`'s proto-conformance pass: adding a `Request` variant
/// without classifying its replay behavior is a CI failure.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReplayPolicy {
    /// Applied at most once: a replay inside the dispatch layer's
    /// deduplication window is acknowledged without re-applying
    /// (`Commit`, keyed by its per-session sequence number).
    Deduped,
    /// Re-applying converges: the owner re-acknowledges with the same
    /// observable result (`Advance` / `FreezeEpoch` / `PublishEpoch`
    /// republish the already-frozen epoch; the session-layer `Lease` and
    /// `Goodbye` lifecycle re-attaches or re-releases).
    Idempotent,
    /// A pure read of completed state with no owner-side effect
    /// (`Loads`, `Dump`, `TotalWrites`).
    Pure,
}

/// The replay classification of every request kind.
///
/// `ampc-lint` checks this table for totality over `Request`'s variants,
/// rejects duplicate or unknown entries, and requires a dispatch match arm
/// for every classified variant; [`Request::replay_policy`] is the runtime
/// lookup.
pub const REPLAY_POLICY: &[(RequestKind, ReplayPolicy)] = &[
    (RequestKind::Commit, ReplayPolicy::Deduped),
    (RequestKind::Advance, ReplayPolicy::Idempotent),
    (RequestKind::FreezeEpoch, ReplayPolicy::Idempotent),
    (RequestKind::PublishEpoch, ReplayPolicy::Idempotent),
    (RequestKind::Loads, ReplayPolicy::Pure),
    (RequestKind::Dump, ReplayPolicy::Pure),
    (RequestKind::TotalWrites, ReplayPolicy::Pure),
    (RequestKind::Lease, ReplayPolicy::Idempotent),
    (RequestKind::Goodbye, ReplayPolicy::Idempotent),
];

/// The reply to one [`Request`] (same variant order as the request kinds).
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// [`Request::Commit`] acknowledged.
    Committed {
        /// Epoch the pairs were applied to.
        epoch: usize,
        /// Number of pairs accepted by this owner.
        accepted: u64,
    },
    /// [`Request::Advance`] answered with the frozen epoch's serialized
    /// contents (wire transports only; in-process transports publish the
    /// epoch as a shared `Arc` instead and never materialize this variant).
    Epoch(EpochFrame),
    /// [`Request::Loads`] answered.
    Loads(Vec<ShardLoad>),
    /// [`Request::Dump`] answered.
    Dump(Vec<(Key, Vec<Value>)>),
    /// [`Request::TotalWrites`] answered.
    TotalWrites(u64),
    /// [`Request::Lease`] answered: the lease is held.
    LeaseGranted {
        /// The session the lease covers (echoed back).
        session: u64,
        /// Granted lease duration in milliseconds (`0` = never expires).
        ttl_ms: u64,
        /// `true` if existing session state was resumed (a reconnect
        /// re-attached to a live owner), `false` if the owner started this
        /// session fresh.  A reconnecting client that receives
        /// `resumed == false` must abort: its lease expired and the owner
        /// reclaimed the session's pending commits.  Mid-stream renewals
        /// are always answered `resumed == true` — a connection that holds
        /// its grant has, by definition, intact session state — and clients
        /// only validate the flag during the handshake.
        resumed: bool,
        /// The cluster shard map, when the granting process serves as one
        /// node of a cluster (`None` from a standalone owner).  Carries
        /// every owner's endpoint and contiguous shard range, stamped with
        /// the map epoch, so a freshly leased client learns the whole
        /// topology from any single node's handshake.
        shard_map: Option<ShardMap>,
    },
    /// [`Request::FreezeEpoch`] acknowledged: the epoch is frozen and held
    /// prepared, awaiting [`Request::PublishEpoch`].
    EpochFrozen {
        /// The epoch that is now prepared (echoed back).
        epoch: usize,
    },
}

/// The cluster topology as advertised in every cluster node's
/// [`Reply::LeaseGranted`]: which owner serves which contiguous shard
/// range, stamped with a map epoch.
///
/// Map epochs are monotone (the Aura-style invariant): a client holding a
/// map of epoch `e` must treat any map of epoch `> e` as superseding it and
/// must never mix routes from two map epochs.  All nodes of one cluster
/// generation advertise the identical map, which the client validates at
/// connect time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Monotone generation stamp of this map.
    pub epoch: u64,
    /// One entry per owner, ascending by shard range; the ranges partition
    /// `0..num_shards` contiguously.
    pub owners: Vec<OwnerSlice>,
}

/// One owner's slice of a [`ShardMap`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnerSlice {
    /// The owner's advertised `host:port` endpoint.
    pub endpoint: String,
    /// First shard (global id) the owner serves.
    pub start: u64,
    /// One past the last shard the owner serves (`start == end` is a valid
    /// empty slice when there are more owners than shards).
    pub end: u64,
}

impl ShardMap {
    /// Total shard count covered by the map (the `end` of the last slice).
    pub fn num_shards(&self) -> usize {
        self.owners.last().map_or(0, |slice| slice.end as usize)
    }

    /// `true` if the slices partition `0..num_shards` contiguously in
    /// order, which every well-formed map must.
    pub fn is_contiguous(&self) -> bool {
        let mut next = 0u64;
        for slice in &self.owners {
            if slice.start != next || slice.end < slice.start {
                return false;
            }
            next = slice.end;
        }
        true
    }
}

/// Serialized frozen epoch of one owner's shard group: the payload a remote
/// peer fetches in place of the in-process `Arc` hand-off.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct EpochFrame {
    /// `shards[local]` — the owner's `local`-th shard.
    pub shards: Vec<ShardFrame>,
}

/// One shard of an [`EpochFrame`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ShardFrame {
    /// Writes that built the shard.
    pub writes: u64,
    /// Every `(key, values)` entry of the shard, values in commit order.
    /// Entry order is unspecified (hash-map iteration order) — lookups are
    /// keyed, so replicas rebuilt from a frame read identically.
    pub entries: Vec<(Key, Vec<Value>)>,
}

/// Typed decode failure of a protocol frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer ended before the message did.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// An unknown message tag.
    UnknownTag {
        /// `"request"` or `"reply"`.
        kind: &'static str,
        /// The tag byte found.
        tag: u8,
    },
    /// The message decoded but the buffer kept going.
    Trailing {
        /// Bytes left over after the message.
        remaining: usize,
    },
    /// A frame (or a declared frame length) exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The offending length.
        len: usize,
        /// The cap it exceeds.
        max: usize,
    },
    /// A field decoded structurally but holds an invalid value (e.g. a
    /// shard-map endpoint that is not UTF-8).
    Malformed {
        /// What was being decoded.
        context: &'static str,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { context } => {
                write!(f, "frame truncated while decoding {context}")
            }
            ProtoError::UnknownTag { kind, tag } => {
                write!(f, "unknown {kind} tag {tag}")
            }
            ProtoError::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after the message")
            }
            ProtoError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::Malformed { context } => {
                write!(f, "malformed {context} in frame")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

const TAG_COMMIT: u8 = 0;
const TAG_ADVANCE: u8 = 1;
const TAG_LOADS: u8 = 2;
const TAG_DUMP: u8 = 3;
const TAG_TOTAL_WRITES: u8 = 4;
const TAG_LEASE: u8 = 5;
const TAG_GOODBYE: u8 = 6;
const TAG_FREEZE_EPOCH: u8 = 7;
const TAG_PUBLISH_EPOCH: u8 = 8;

const TAG_COMMITTED: u8 = 0;
const TAG_EPOCH: u8 = 1;
const TAG_LOADS_REPLY: u8 = 2;
const TAG_DUMP_REPLY: u8 = 3;
const TAG_TOTAL_WRITES_REPLY: u8 = 4;
const TAG_LEASE_GRANTED: u8 = 5;
const TAG_EPOCH_FROZEN: u8 = 6;

fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_key(buf: &mut Vec<u8>, key: &Key) {
    // The layout of [`crate::codec::encode_key`], written in place: the hot
    // encode path of a commit frame must not allocate per pair.
    put_u32(buf, key.tag.code());
    put_u64(buf, key.a);
    put_u64(buf, key.b);
}

fn put_value(buf: &mut Vec<u8>, value: &Value) {
    // The layout of [`crate::codec::encode_value`], written in place.
    put_u64(buf, value.x);
    put_u64(buf, value.y);
}

fn put_entries(buf: &mut Vec<u8>, entries: &[(Key, Vec<Value>)]) {
    put_u32(buf, entries.len() as u32);
    for (key, values) in entries {
        put_key(buf, key);
        put_u32(buf, values.len() as u32);
        for value in values {
            put_value(buf, value);
        }
    }
}

/// Encode a [`Request`] into its wire payload (no length prefix).
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    encode_request_into(&mut buf, request);
    buf
}

/// Encode a [`Request`] into a reusable buffer (cleared first, capacity
/// retained) — the zero-allocation path of the codec layer: once the buffer
/// has grown to the connection's working frame size, encoding allocates
/// nothing.
pub fn encode_request_into(buf: &mut Vec<u8>, request: &Request) {
    buf.clear();
    match request {
        Request::Commit {
            epoch,
            seq,
            batches,
        } => {
            buf.push(TAG_COMMIT);
            put_u64(buf, *epoch as u64);
            put_u64(buf, *seq);
            put_u32(buf, batches.len() as u32);
            for (local, pairs) in batches {
                put_u32(buf, *local as u32);
                put_u32(buf, pairs.len() as u32);
                for (key, value) in pairs {
                    put_key(buf, key);
                    put_value(buf, value);
                }
            }
        }
        Request::Advance { epoch } => {
            buf.push(TAG_ADVANCE);
            put_u64(buf, *epoch as u64);
        }
        Request::FreezeEpoch { epoch } => {
            buf.push(TAG_FREEZE_EPOCH);
            put_u64(buf, *epoch as u64);
        }
        Request::PublishEpoch { epoch } => {
            buf.push(TAG_PUBLISH_EPOCH);
            put_u64(buf, *epoch as u64);
        }
        Request::Loads { epoch } => {
            buf.push(TAG_LOADS);
            put_u64(buf, *epoch as u64);
        }
        Request::Dump { epoch } => {
            buf.push(TAG_DUMP);
            put_u64(buf, *epoch as u64);
        }
        Request::TotalWrites => buf.push(TAG_TOTAL_WRITES),
        Request::Lease {
            session,
            worker,
            num_shards,
            workers,
            ttl_ms,
        } => {
            buf.push(TAG_LEASE);
            put_u64(buf, *session);
            put_u64(buf, *worker);
            put_u64(buf, *num_shards);
            put_u64(buf, *workers);
            put_u64(buf, *ttl_ms);
        }
        Request::Goodbye => buf.push(TAG_GOODBYE),
    }
}

/// Encode a [`Reply`] into its wire payload (no length prefix).
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    encode_reply_into(&mut buf, reply);
    buf
}

/// Encode a [`Reply`] into a reusable buffer (cleared first, capacity
/// retained) — see [`encode_request_into`].
pub fn encode_reply_into(buf: &mut Vec<u8>, reply: &Reply) {
    buf.clear();
    match reply {
        Reply::Committed { epoch, accepted } => {
            buf.push(TAG_COMMITTED);
            put_u64(buf, *epoch as u64);
            put_u64(buf, *accepted);
        }
        Reply::Epoch(frame) => {
            buf.push(TAG_EPOCH);
            put_u32(buf, frame.shards.len() as u32);
            for shard in &frame.shards {
                put_u64(buf, shard.writes);
                put_entries(buf, &shard.entries);
            }
        }
        Reply::Loads(loads) => {
            buf.push(TAG_LOADS_REPLY);
            put_u32(buf, loads.len() as u32);
            for load in loads {
                put_u64(buf, load.shard as u64);
                put_u64(buf, load.keys);
                put_u64(buf, load.writes);
                put_u64(buf, load.reads);
            }
        }
        Reply::Dump(entries) => {
            buf.push(TAG_DUMP_REPLY);
            put_entries(buf, entries);
        }
        Reply::TotalWrites(total) => {
            buf.push(TAG_TOTAL_WRITES_REPLY);
            put_u64(buf, *total);
        }
        Reply::LeaseGranted {
            session,
            ttl_ms,
            resumed,
            shard_map,
        } => {
            buf.push(TAG_LEASE_GRANTED);
            put_u64(buf, *session);
            put_u64(buf, *ttl_ms);
            buf.push(u8::from(*resumed));
            match shard_map {
                None => buf.push(0),
                Some(map) => {
                    buf.push(1);
                    put_u64(buf, map.epoch);
                    put_u32(buf, map.owners.len() as u32);
                    for slice in &map.owners {
                        put_u32(buf, slice.endpoint.len() as u32);
                        buf.extend_from_slice(slice.endpoint.as_bytes());
                        put_u64(buf, slice.start);
                        put_u64(buf, slice.end);
                    }
                }
            }
        }
        Reply::EpochFrozen { epoch } => {
            buf.push(TAG_EPOCH_FROZEN);
            put_u64(buf, *epoch as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Byte cursor that turns out-of-bytes into typed [`ProtoError::Truncated`].
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ProtoError> {
        if self.bytes.len() < n {
            return Err(ProtoError::Truncated { context });
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, ProtoError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, ProtoError> {
        let bytes = self.take(4, context)?;
        // lint: allow(panic) — infallible: take() just returned exactly 4 bytes
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte take")))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, ProtoError> {
        let bytes = self.take(8, context)?;
        // lint: allow(panic) — infallible: take() just returned exactly 8 bytes
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte take")))
    }

    fn key(&mut self) -> Result<Key, ProtoError> {
        let bytes = self.take(ENCODED_KEY_BYTES, "key")?;
        // take() guaranteed the length, so the only way to fail is an
        // unassigned tag code — malformed, not truncated.
        decode_key(bytes).ok_or(ProtoError::Malformed { context: "key tag" })
    }

    fn value(&mut self) -> Result<Value, ProtoError> {
        let bytes = self.take(ENCODED_VALUE_BYTES, "value")?;
        decode_value(bytes).ok_or(ProtoError::Truncated { context: "value" })
    }

    /// A `u32` element count, validated against the bytes actually left
    /// (each element needs at least `min_element_bytes`), so a corrupt
    /// count can neither over-allocate nor masquerade as a short message.
    fn count(
        &mut self,
        min_element_bytes: usize,
        context: &'static str,
    ) -> Result<usize, ProtoError> {
        let count = self.u32(context)? as usize;
        if count.saturating_mul(min_element_bytes) > self.bytes.len() {
            return Err(ProtoError::Truncated { context });
        }
        Ok(count)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::Trailing {
                remaining: self.bytes.len(),
            })
        }
    }
}

fn get_values(cursor: &mut Cursor<'_>) -> Result<Vec<Value>, ProtoError> {
    let count = cursor.count(ENCODED_VALUE_BYTES, "values")?;
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(cursor.value()?);
    }
    Ok(values)
}

fn get_entries(cursor: &mut Cursor<'_>) -> Result<Vec<(Key, Vec<Value>)>, ProtoError> {
    let count = cursor.count(ENCODED_KEY_BYTES + 4, "entries")?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let key = cursor.key()?;
        entries.push((key, get_values(cursor)?));
    }
    Ok(entries)
}

/// Decode a [`Request`] from its wire payload.
///
/// The whole buffer must be one message: truncated buffers, unknown tags and
/// trailing bytes are all rejected.
pub fn decode_request(bytes: &[u8]) -> Result<Request, ProtoError> {
    let mut cursor = Cursor::new(bytes);
    let request = match cursor.u8("request tag")? {
        TAG_COMMIT => {
            let epoch = cursor.u64("commit epoch")? as usize;
            let seq = cursor.u64("commit seq")?;
            let batch_count = cursor.count(8, "commit batches")?;
            let mut batches = Vec::with_capacity(batch_count);
            for _ in 0..batch_count {
                let local = cursor.u32("batch shard")? as usize;
                let pair_count = cursor.count(ENCODED_PAIR_BYTES, "batch pairs")?;
                let mut pairs = Vec::with_capacity(pair_count);
                for _ in 0..pair_count {
                    let key = cursor.key()?;
                    let value = cursor.value()?;
                    pairs.push((key, value));
                }
                batches.push((local, pairs));
            }
            Request::Commit {
                epoch,
                seq,
                batches,
            }
        }
        TAG_ADVANCE => Request::Advance {
            epoch: cursor.u64("advance epoch")? as usize,
        },
        TAG_FREEZE_EPOCH => Request::FreezeEpoch {
            epoch: cursor.u64("freeze epoch")? as usize,
        },
        TAG_PUBLISH_EPOCH => Request::PublishEpoch {
            epoch: cursor.u64("publish epoch")? as usize,
        },
        TAG_LOADS => Request::Loads {
            epoch: cursor.u64("loads epoch")? as usize,
        },
        TAG_DUMP => Request::Dump {
            epoch: cursor.u64("dump epoch")? as usize,
        },
        TAG_TOTAL_WRITES => Request::TotalWrites,
        TAG_LEASE => Request::Lease {
            session: cursor.u64("lease session")?,
            worker: cursor.u64("lease worker")?,
            num_shards: cursor.u64("lease shards")?,
            workers: cursor.u64("lease workers")?,
            ttl_ms: cursor.u64("lease ttl")?,
        },
        TAG_GOODBYE => Request::Goodbye,
        tag => {
            return Err(ProtoError::UnknownTag {
                kind: "request",
                tag,
            })
        }
    };
    cursor.finish()?;
    Ok(request)
}

/// Decode a [`Reply`] from its wire payload (same contract as
/// [`decode_request`]).
pub fn decode_reply(bytes: &[u8]) -> Result<Reply, ProtoError> {
    let mut cursor = Cursor::new(bytes);
    let reply = match cursor.u8("reply tag")? {
        TAG_COMMITTED => Reply::Committed {
            epoch: cursor.u64("committed epoch")? as usize,
            accepted: cursor.u64("committed count")?,
        },
        TAG_EPOCH => {
            let shard_count = cursor.count(12, "epoch shards")?;
            let mut shards = Vec::with_capacity(shard_count);
            for _ in 0..shard_count {
                let writes = cursor.u64("shard writes")?;
                let entries = get_entries(&mut cursor)?;
                shards.push(ShardFrame { writes, entries });
            }
            Reply::Epoch(EpochFrame { shards })
        }
        TAG_LOADS_REPLY => {
            let count = cursor.count(32, "loads")?;
            let mut loads = Vec::with_capacity(count);
            for _ in 0..count {
                loads.push(ShardLoad {
                    shard: cursor.u64("load shard")? as usize,
                    keys: cursor.u64("load keys")?,
                    writes: cursor.u64("load writes")?,
                    reads: cursor.u64("load reads")?,
                });
            }
            Reply::Loads(loads)
        }
        TAG_DUMP_REPLY => Reply::Dump(get_entries(&mut cursor)?),
        TAG_TOTAL_WRITES_REPLY => Reply::TotalWrites(cursor.u64("total writes")?),
        TAG_LEASE_GRANTED => Reply::LeaseGranted {
            session: cursor.u64("lease session")?,
            ttl_ms: cursor.u64("lease ttl")?,
            resumed: match cursor.u8("lease resumed")? {
                0 => false,
                1 => true,
                tag => return Err(ProtoError::UnknownTag { kind: "reply", tag }),
            },
            shard_map: match cursor.u8("shard map flag")? {
                0 => None,
                1 => {
                    let epoch = cursor.u64("shard map epoch")?;
                    let owner_count = cursor.count(20, "shard map owners")?;
                    let mut owners = Vec::with_capacity(owner_count);
                    for _ in 0..owner_count {
                        let len = cursor.count(1, "owner endpoint")?;
                        let bytes = cursor.take(len, "owner endpoint")?;
                        let endpoint = std::str::from_utf8(bytes)
                            .map_err(|_| ProtoError::Malformed {
                                context: "owner endpoint",
                            })?
                            .to_owned();
                        owners.push(OwnerSlice {
                            endpoint,
                            start: cursor.u64("owner range start")?,
                            end: cursor.u64("owner range end")?,
                        });
                    }
                    Some(ShardMap { epoch, owners })
                }
                tag => return Err(ProtoError::UnknownTag { kind: "reply", tag }),
            },
        },
        TAG_EPOCH_FROZEN => Reply::EpochFrozen {
            epoch: cursor.u64("frozen epoch")? as usize,
        },
        tag => return Err(ProtoError::UnknownTag { kind: "reply", tag }),
    };
    cursor.finish()?;
    Ok(reply)
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one length-prefixed frame (`u32` little-endian payload length, then
/// the payload).
///
/// Header and payload go out through a single `write_vectored` call, so a
/// small frame costs one syscall instead of two.  The OS may accept fewer
/// bytes than offered (a *short* vectored write — guaranteed on plain
/// `Write` adapters whose `write_vectored` forwards to `write` of the first
/// buffer); the loop tracks a byte offset across both slices and re-offers
/// the remainder until the frame is fully out.  Allocates nothing.
///
/// # Errors
/// `InvalidData` if the payload exceeds [`MAX_FRAME_BYTES`]; `WriteZero` if
/// the writer stops accepting bytes mid-frame; otherwise any I/O error of
/// the underlying writer.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtoError::Oversized {
                len: payload.len(),
                max: MAX_FRAME_BYTES,
            }
            .to_string(),
        ));
    }
    let header = (payload.len() as u32).to_le_bytes();
    let total = header.len() + payload.len();
    let mut written = 0usize;
    while written < total {
        let result = if written < header.len() {
            writer.write_vectored(&[IoSlice::new(&header[written..]), IoSlice::new(payload)])
        } else {
            writer.write(&payload[written - header.len()..])
        };
        match result {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "writer stopped accepting bytes mid-frame",
                ))
            }
            Ok(n) => written += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err),
        }
    }
    Ok(())
}

/// Read one length-prefixed frame written by [`write_frame`] into `payload`,
/// a reusable scratch buffer (cleared first, capacity retained).
///
/// A connection-lived scratch makes steady-state reads allocation-free: the
/// buffer grows to the largest frame seen and is reused from then on
/// (pinned by `crates/dds/tests/framing_alloc.rs` with a counting
/// allocator).
///
/// # Errors
/// `InvalidData` if the declared length exceeds [`MAX_FRAME_BYTES`] (the
/// payload is not read, let alone allocated); `UnexpectedEof` if the stream
/// ends mid-frame; otherwise any I/O error of the underlying reader.  On
/// error the scratch contents are unspecified.
pub fn read_frame<R: Read>(reader: &mut R, payload: &mut Vec<u8>) -> std::io::Result<()> {
    let mut prefix = [0u8; 4];
    reader.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtoError::Oversized {
                len,
                max: MAX_FRAME_BYTES,
            }
            .to_string(),
        ));
    }
    payload.clear();
    payload.resize(len, 0);
    reader.read_exact(payload)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyTag;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Commit {
                epoch: 3,
                seq: 41,
                batches: vec![
                    (0, vec![(Key::of(KeyTag::Scalar, 1), Value::scalar(10))]),
                    (
                        2,
                        vec![
                            (Key::with_index(KeyTag::Adjacency, 7, 1), Value::pair(1, 2)),
                            (Key::of(KeyTag::Custom(9), u64::MAX), Value::scalar(0)),
                        ],
                    ),
                    (5, Vec::new()),
                ],
            },
            Request::Advance { epoch: 0 },
            Request::FreezeEpoch { epoch: 5 },
            Request::PublishEpoch { epoch: 5 },
            Request::Loads { epoch: 17 },
            Request::Dump {
                epoch: usize::MAX >> 8,
            },
            Request::TotalWrites,
            Request::Lease {
                session: u64::MAX,
                worker: 3,
                num_shards: 1024,
                workers: 8,
                ttl_ms: 30_000,
            },
            Request::Goodbye,
        ]
    }

    fn sample_replies() -> Vec<Reply> {
        vec![
            Reply::Committed {
                epoch: 4,
                accepted: 1234,
            },
            Reply::Epoch(EpochFrame {
                shards: vec![
                    ShardFrame {
                        writes: 3,
                        entries: vec![
                            (Key::of(KeyTag::Degree, 0), vec![Value::scalar(1)]),
                            (
                                Key::of(KeyTag::Scalar, 9),
                                vec![Value::scalar(2), Value::pair(3, 4)],
                            ),
                        ],
                    },
                    ShardFrame {
                        writes: 0,
                        entries: Vec::new(),
                    },
                ],
            }),
            Reply::Loads(vec![
                ShardLoad {
                    shard: 0,
                    keys: 1,
                    writes: 2,
                    reads: 3,
                },
                ShardLoad {
                    shard: 9,
                    keys: 0,
                    writes: 0,
                    reads: u64::MAX,
                },
            ]),
            Reply::Dump(vec![(
                Key::of(KeyTag::Successor, 5),
                vec![Value::scalar(6), Value::scalar(7)],
            )]),
            Reply::TotalWrites(42),
            Reply::LeaseGranted {
                session: 7,
                ttl_ms: 0,
                resumed: true,
                shard_map: None,
            },
            Reply::LeaseGranted {
                session: u64::MAX,
                ttl_ms: 86_400_000,
                resumed: false,
                shard_map: None,
            },
            Reply::LeaseGranted {
                session: 9,
                ttl_ms: 30_000,
                resumed: false,
                shard_map: Some(ShardMap {
                    epoch: 1,
                    owners: vec![
                        OwnerSlice {
                            endpoint: "127.0.0.1:7471".to_owned(),
                            start: 0,
                            end: 5,
                        },
                        OwnerSlice {
                            endpoint: "127.0.0.1:7472".to_owned(),
                            start: 5,
                            end: 5,
                        },
                        OwnerSlice {
                            endpoint: "[::1]:80".to_owned(),
                            start: 5,
                            end: 8,
                        },
                    ],
                }),
            },
            Reply::EpochFrozen { epoch: 11 },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for request in sample_requests() {
            let bytes = encode_request(&request);
            assert_eq!(decode_request(&bytes), Ok(request));
        }
    }

    #[test]
    fn replies_round_trip() {
        for reply in sample_replies() {
            let bytes = encode_reply(&reply);
            assert_eq!(decode_reply(&bytes), Ok(reply));
        }
    }

    #[test]
    fn truncated_messages_are_rejected_at_every_length() {
        for request in sample_requests() {
            let bytes = encode_request(&request);
            for len in 0..bytes.len() {
                assert!(
                    decode_request(&bytes[..len]).is_err(),
                    "request prefix of {len} bytes must not decode"
                );
            }
        }
        for reply in sample_replies() {
            let bytes = encode_reply(&reply);
            for len in 0..bytes.len() {
                assert!(
                    decode_reply(&bytes[..len]).is_err(),
                    "reply prefix of {len} bytes must not decode"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_request(&Request::TotalWrites);
        bytes.push(0);
        assert_eq!(
            decode_request(&bytes),
            Err(ProtoError::Trailing { remaining: 1 })
        );
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert_eq!(
            decode_request(&[200]),
            Err(ProtoError::UnknownTag {
                kind: "request",
                tag: 200
            })
        );
        assert_eq!(
            decode_reply(&[99]),
            Err(ProtoError::UnknownTag {
                kind: "reply",
                tag: 99
            })
        );
    }

    #[test]
    fn corrupt_key_tags_fail_decoding_instead_of_panicking() {
        let mut bytes = encode_request(&Request::Commit {
            epoch: 0,
            seq: 1,
            batches: vec![(0, vec![(Key::of(KeyTag::Scalar, 7), Value::scalar(8))])],
        });
        // The key's 4-byte tag code is the first field of the encoded pair;
        // overwrite it with a code in the unassigned gap (11..0x1_0000).
        let key_at = bytes.len() - crate::codec::ENCODED_PAIR_BYTES;
        bytes[key_at..key_at + 4].copy_from_slice(&999u32.to_le_bytes());
        assert_eq!(
            decode_request(&bytes),
            Err(ProtoError::Malformed { context: "key tag" })
        );
    }

    #[test]
    fn replay_policy_is_total_over_request_kinds() {
        // The lint checks the table against the enum *textually*; this
        // pins the runtime lookup for every constructible kind.
        let requests = [
            Request::Commit {
                epoch: 0,
                seq: 0,
                batches: Vec::new(),
            },
            Request::Advance { epoch: 0 },
            Request::FreezeEpoch { epoch: 0 },
            Request::PublishEpoch { epoch: 0 },
            Request::Loads { epoch: 0 },
            Request::Dump { epoch: 0 },
            Request::TotalWrites,
            Request::Lease {
                session: 0,
                worker: 0,
                num_shards: 1,
                workers: 1,
                ttl_ms: 0,
            },
            Request::Goodbye,
        ];
        assert_eq!(requests.len(), REPLAY_POLICY.len());
        for request in &requests {
            let policy = request.replay_policy(); // must not panic
            match request.kind() {
                RequestKind::Commit => assert_eq!(policy, ReplayPolicy::Deduped),
                RequestKind::Loads | RequestKind::Dump | RequestKind::TotalWrites => {
                    assert_eq!(policy, ReplayPolicy::Pure)
                }
                _ => assert_eq!(policy, ReplayPolicy::Idempotent),
            }
        }
    }

    #[test]
    fn bogus_lease_resumed_flags_are_rejected() {
        let mut bytes = encode_reply(&Reply::LeaseGranted {
            session: 1,
            ttl_ms: 2,
            resumed: false,
            shard_map: None,
        });
        let resumed_at = bytes.len() - 2; // [.., resumed, shard-map flag]
        bytes[resumed_at] = 9; // neither 0 nor 1
        assert_eq!(
            decode_reply(&bytes),
            Err(ProtoError::UnknownTag {
                kind: "reply",
                tag: 9
            })
        );
    }

    #[test]
    fn bogus_shard_map_flags_and_endpoints_are_rejected() {
        let granted = |shard_map| Reply::LeaseGranted {
            session: 1,
            ttl_ms: 2,
            resumed: false,
            shard_map,
        };
        // A shard-map flag that is neither "absent" nor "present".
        let mut bytes = encode_reply(&granted(None));
        *bytes.last_mut().unwrap() = 7;
        assert_eq!(
            decode_reply(&bytes),
            Err(ProtoError::UnknownTag {
                kind: "reply",
                tag: 7
            })
        );
        // An endpoint that is not UTF-8 is malformed, not a panic.
        let map = ShardMap {
            epoch: 3,
            owners: vec![OwnerSlice {
                endpoint: "ab".to_owned(),
                start: 0,
                end: 4,
            }],
        };
        let mut bytes = encode_reply(&granted(Some(map)));
        let endpoint_at = bytes.len() - 18; // "ab" sits before start+end
        bytes[endpoint_at] = 0xFF;
        assert_eq!(
            decode_reply(&bytes),
            Err(ProtoError::Malformed {
                context: "owner endpoint"
            })
        );
    }

    #[test]
    fn shard_map_contiguity_is_checkable() {
        let map = |ranges: &[(u64, u64)]| ShardMap {
            epoch: 1,
            owners: ranges
                .iter()
                .map(|&(start, end)| OwnerSlice {
                    endpoint: "x:1".to_owned(),
                    start,
                    end,
                })
                .collect(),
        };
        assert!(map(&[(0, 4), (4, 8)]).is_contiguous());
        assert!(map(&[(0, 0), (0, 8)]).is_contiguous());
        assert_eq!(map(&[(0, 4), (4, 9)]).num_shards(), 9);
        assert!(!map(&[(0, 4), (5, 8)]).is_contiguous());
        assert!(!map(&[(1, 4), (4, 8)]).is_contiguous());
        assert!(!map(&[(0, 4), (4, 2)]).is_contiguous());
    }

    #[test]
    fn corrupt_counts_cannot_over_allocate() {
        // A Dump reply declaring u32::MAX entries in a 9-byte buffer must be
        // rejected by the count validation, not by an allocation attempt.
        let mut bytes = vec![TAG_DUMP_REPLY];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 4]);
        assert_eq!(
            decode_reply(&bytes),
            Err(ProtoError::Truncated { context: "entries" })
        );
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let payload = encode_request(&Request::Advance { epoch: 2 });
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        assert_eq!(wire.len(), payload.len() + 4);
        let mut reader: &[u8] = &wire;
        let mut scratch = Vec::new();
        read_frame(&mut reader, &mut scratch).unwrap();
        assert_eq!(scratch, payload);
        assert!(reader.is_empty());

        // A length prefix past the cap is rejected without reading further.
        let huge = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        let mut reader: &[u8] = &huge;
        let err = read_frame(&mut reader, &mut scratch).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // A frame cut short mid-payload is an UnexpectedEof.
        let mut short = Vec::new();
        write_frame(&mut short, &payload).unwrap();
        short.truncate(short.len() - 1);
        let mut reader: &[u8] = &short;
        let err = read_frame(&mut reader, &mut scratch).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}

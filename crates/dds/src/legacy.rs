//! The pre-refactor store layout, kept as an executable specification.
//!
//! Before the compact-slot refactor, every key in the store mapped to a
//! heap-allocated `Vec<Value>` and the end-of-round commit replayed writes
//! one shard-lock acquisition per pair.  [`LegacyStore`] preserves exactly
//! that behaviour — same hash, same shard assignment, same per-key value
//! order — so the property tests in `tests/proptests.rs` can assert that
//! the new [`crate::ShardedStore`] / [`crate::Snapshot`] layout is
//! observationally equivalent (`get` / `get_indexed` / `multiplicity` /
//! `len`) under arbitrary write interleavings.
//!
//! Not used on any hot path; do not add features here.

use crate::hashing::{hash_words, FxHashMap};
use crate::key::{Key, Value};

/// The old `Vec<Value>`-per-key sharded layout, single-threaded.
#[derive(Clone, Debug, Default)]
pub struct LegacyStore {
    shards: Vec<FxHashMap<Key, Vec<Value>>>,
}

impl LegacyStore {
    /// Create a legacy store with `num_shards` shards (at least 1).
    pub fn new(num_shards: usize) -> Self {
        LegacyStore {
            shards: vec![FxHashMap::default(); num_shards.max(1)],
        }
    }

    #[inline]
    fn shard_of(&self, key: &Key) -> usize {
        (hash_words(key.tag.code(), key.a, key.b) % self.shards.len() as u64) as usize
    }

    /// Append `value` under `key` (the old one-lock-per-pair write path,
    /// minus the lock: the legacy reference is single-threaded).
    pub fn write(&mut self, key: Key, value: Value) {
        let shard = self.shard_of(&key);
        self.shards[shard].entry(key).or_default().push(value);
    }

    /// First value stored under `key`, if any.
    pub fn get(&self, key: &Key) -> Option<Value> {
        self.shards[self.shard_of(key)]
            .get(key)
            .and_then(|vs| vs.first().copied())
    }

    /// The `index`-th value stored under `key` (zero-based), if present.
    pub fn get_indexed(&self, key: &Key, index: usize) -> Option<Value> {
        self.shards[self.shard_of(key)]
            .get(key)
            .and_then(|vs| vs.get(index).copied())
    }

    /// How many values are stored under `key`.
    pub fn multiplicity(&self, key: &Key) -> usize {
        self.shards[self.shard_of(key)].get(key).map_or(0, Vec::len)
    }

    /// Total number of distinct keys across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(FxHashMap::len).sum()
    }

    /// `true` if no key has been written.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(FxHashMap::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyTag;

    #[test]
    fn behaves_like_a_multimap() {
        let mut store = LegacyStore::new(4);
        let key = Key::of(KeyTag::Scalar, 7);
        assert!(store.is_empty());
        store.write(key, Value::scalar(1));
        store.write(key, Value::scalar(2));
        assert_eq!(store.get(&key), Some(Value::scalar(1)));
        assert_eq!(store.get_indexed(&key, 1), Some(Value::scalar(2)));
        assert_eq!(store.get_indexed(&key, 2), None);
        assert_eq!(store.multiplicity(&key), 2);
        assert_eq!(store.len(), 1);
    }
}

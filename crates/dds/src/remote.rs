//! The transport-generic message-passing backend: [`RemoteBackend`].
//!
//! This is the client ("backend") and server ("owner") realization of the
//! [`crate::proto`] wire protocol.  Shards are partitioned into groups, each
//! group is owned by a dedicated worker, and the backend talks to each owner
//! over one [`crate::transport::Transport`] connection:
//!
//! * `RemoteBackend<MpscTransport>` is the in-process
//!   [`crate::ChannelBackend`] — typed messages over channels, frozen epochs
//!   published zero-copy as shared `Arc`s;
//! * `RemoteBackend<TcpTransport>` ([`TcpBackend`]) runs the identical owner
//!   loop behind localhost sockets — every request and reply round-trips
//!   through the byte codec, and frozen epochs are fetched as
//!   [`crate::proto::EpochFrame`]s and rebuilt into local replicas.
//!
//! Either way, a round's reads resolve **locally and lock-free**: the view
//! holds one [`FrozenEpoch`] per owner (shared or replicated — machine code
//! cannot tell) and probes its immutable maps directly.  Only the
//! write-side protocol (`Commit`, `Advance`) and the driver-side requests
//! (`Loads`, `Dump`, `TotalWrites`) cross the transport.
//!
//! Owner failures surface as typed [`TransportError`]s: when a connection
//! drops because the owner thread panicked, the backend joins the thread
//! and attaches the panic payload to the error instead of hanging or dying
//! on an opaque broken channel.

use crate::backend::{DdsBackend, SnapshotView};
use crate::hashing::{hash_words, FxHashMap};
use crate::key::{Key, Value};
use crate::proto::{EpochFrame, Reply, Request, ShardFrame};
use crate::slot::Slot;
use crate::stats::{ShardLoad, StoreStats};
use crate::transport::dispatch::Worker;
use crate::transport::{
    ClientReply, RequestFaults, TcpOptions, TcpTransport, Transport, TransportError,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// [`RemoteBackend`] over localhost TCP sockets — the deployable backend.
///
/// Select it through `ampc_runtime::AmpcConfig` (`DdsBackendKind::Remote`)
/// rather than constructing it directly.
pub type TcpBackend = RemoteBackend<TcpTransport>;

// ---------------------------------------------------------------------------
// FrozenEpoch — one owner's published epoch
// ---------------------------------------------------------------------------

/// One frozen epoch of one owner's shard group.
///
/// On shared-memory transports the owner and every view hold the *same*
/// allocation (the zero-copy publication); on wire transports each view
/// holds a replica rebuilt from the fetched [`EpochFrame`].  The maps are
/// immutable once published; the read counters are atomics so concurrent
/// machine threads and the accounting agree without locks.
pub struct FrozenEpoch {
    /// `shards[local]` — frozen map of the group's `local`-th shard.
    pub(crate) shards: Vec<FxHashMap<Key, Slot>>,
    /// Writes that built each shard.
    pub(crate) writes: Vec<u64>,
    /// Reads served per shard since the epoch froze.
    pub(crate) reads: Vec<AtomicU64>,
}

impl FrozenEpoch {
    /// Serialize for the wire ([`Reply::Epoch`]).
    pub(crate) fn to_frame(&self) -> EpochFrame {
        EpochFrame {
            shards: self
                .shards
                .iter()
                .zip(&self.writes)
                .map(|(map, &writes)| ShardFrame {
                    writes,
                    entries: map
                        .iter()
                        .map(|(key, slot)| (*key, slot.as_slice().to_vec()))
                        .collect(),
                })
                .collect(),
        }
    }

    /// Rebuild a local replica from a fetched frame.
    pub(crate) fn from_frame(frame: EpochFrame) -> FrozenEpoch {
        let mut shards = Vec::with_capacity(frame.shards.len());
        let mut writes = Vec::with_capacity(frame.shards.len());
        for shard in frame.shards {
            let mut map = FxHashMap::default();
            map.reserve(shard.entries.len());
            for (key, mut values) in shard.entries {
                let slot = if values.len() == 1 {
                    Slot::One(values[0])
                } else if values.is_empty() {
                    // Owners never emit empty entries; skip defensively.
                    continue;
                } else {
                    values.shrink_to_fit();
                    Slot::Many(values)
                };
                map.insert(key, slot);
            }
            shards.push(map);
            writes.push(shard.writes);
        }
        let reads = (0..shards.len()).map(|_| AtomicU64::new(0)).collect();
        FrozenEpoch {
            shards,
            writes,
            reads,
        }
    }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// Key → (owner, local shard) routing, shared by backend and views.
#[derive(Clone, Debug)]
pub(crate) struct Routing {
    num_shards: usize,
    placement: Placement,
}

/// How global shards map onto owner groups.
#[derive(Clone, Debug)]
enum Placement {
    /// `shard → (shard % workers, shard / workers)` — the in-process and
    /// single-owner-process split, where every owner serves a stride of the
    /// shard space.
    Interleaved { workers: usize },
    /// Contiguous ranges in owner order: owner `i` holds global shards
    /// `[starts[i], starts[i+1])` (with `starts[owners]` an implicit
    /// `num_shards` sentinel appended at construction) — the cluster split,
    /// matching the ranges in an advertised [`crate::proto::ShardMap`].
    Ranged { starts: Vec<usize> },
}

impl Routing {
    /// Interleaved routing over `workers` owner groups.
    pub(crate) fn interleaved(num_shards: usize, workers: usize) -> Routing {
        Routing {
            num_shards,
            placement: Placement::Interleaved { workers },
        }
    }

    /// Ranged routing: `starts[i]` is the first global shard of owner `i`.
    /// Starts must be non-decreasing from 0; the final range ends at
    /// `num_shards`.
    pub(crate) fn ranged(num_shards: usize, mut starts: Vec<usize>) -> Routing {
        assert!(
            !starts.is_empty(),
            "ranged routing needs at least one owner"
        );
        assert_eq!(starts[0], 0, "owner 0's range must start at shard 0");
        assert!(
            starts.windows(2).all(|pair| pair[0] <= pair[1])
                && starts.last().is_some_and(|&last| last <= num_shards),
            "owner ranges must tile the shard space in order"
        );
        starts.push(num_shards);
        Routing {
            num_shards,
            placement: Placement::Ranged { starts },
        }
    }

    pub(crate) fn num_shards(&self) -> usize {
        self.num_shards
    }

    #[inline]
    fn shard_of(&self, key: &Key) -> usize {
        (hash_words(key.tag.code(), key.a, key.b) % self.num_shards as u64) as usize
    }

    /// (owner, local shard index) owning `key`.
    #[inline]
    pub(crate) fn route(&self, key: &Key) -> (usize, usize) {
        self.placement(self.shard_of(key))
    }

    /// (owner, local shard index) of global shard `shard`.
    #[inline]
    pub(crate) fn placement(&self, shard: usize) -> (usize, usize) {
        match &self.placement {
            Placement::Interleaved { workers } => (shard % workers, shard / workers),
            Placement::Ranged { starts } => {
                // partition_point finds the first start beyond `shard`; the
                // owner is the range before it.  Empty ranges are skipped by
                // construction — their start equals the next start, and
                // partition_point lands past both.
                let owner = starts.partition_point(|&start| start <= shard) - 1;
                (owner, shard - starts[owner])
            }
        }
    }
}

// ---------------------------------------------------------------------------
// RemoteBackend
// ---------------------------------------------------------------------------

/// A multi-owner, message-passing DDS backend, generic over the
/// [`Transport`] carrying the [`crate::proto`] protocol.
///
/// See the [module docs](self) for the design; select it through
/// `ampc_runtime::AmpcConfig` rather than constructing it directly.
pub struct RemoteBackend<T: Transport> {
    clients: Vec<T>,
    handles: Vec<Option<JoinHandle<()>>>,
    routing: Routing,
    completed: usize,
    faults: RequestFaults,
    /// Monotone sequence numbers for `Commit` requests (owners use them to
    /// deduplicate retransmissions).
    next_seq: u64,
}

impl<T: Transport> RemoteBackend<T> {
    /// Spawn a backend with `num_shards` shards owned by up to `workers`
    /// owner threads (clamped to `[1, num_shards]`).
    pub fn new(num_shards: usize, workers: usize) -> Self {
        let num_shards = num_shards.max(1);
        let workers = workers.clamp(1, num_shards);
        let mut clients = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            let shard_ids: Vec<usize> = (worker..num_shards).step_by(workers).collect();
            let (client, server) = T::connect(worker);
            let state = Worker::new(shard_ids);
            let handle = std::thread::Builder::new()
                .name(format!("dds-owner-{worker}"))
                .spawn(move || state.serve(server))
                // lint: allow(panic) — thread-spawn failure at backend construction has no round boundary to report through; dying loudly beats serving without owners
                .expect("spawning DDS owner thread");
            clients.push(client);
            handles.push(Some(handle));
        }
        RemoteBackend {
            clients,
            handles,
            routing: Routing::interleaved(num_shards, workers),
            completed: 0,
            faults: RequestFaults::none(),
            next_seq: 0,
        }
    }

    /// Number of owner threads serving the shards.
    pub fn num_workers(&self) -> usize {
        self.clients.len()
    }

    /// When a connection died without a panic payload, join the owner and
    /// harvest its panic message so the caller sees *why*, not just that the
    /// channel broke.
    fn harvest(&mut self, err: TransportError) -> TransportError {
        let TransportError::PeerClosed {
            worker,
            panic: None,
        } = &err
        else {
            return err;
        };
        let worker = *worker;
        let Some(handle) = self.handles.get_mut(worker).and_then(Option::take) else {
            return err;
        };
        match handle.join() {
            Ok(()) => err,
            Err(payload) => {
                let message = crate::transport::panic_message(payload.as_ref())
                    .unwrap_or_else(|| "owner panicked with a non-string payload".to_string());
                TransportError::PeerClosed {
                    worker,
                    panic: Some(message),
                }
            }
        }
    }

    fn send(&mut self, worker: usize, request: Request) -> Result<(), TransportError> {
        let result = self.clients[worker].send(request);
        result.map_err(|err| self.harvest(err))
    }

    fn recv(&mut self, worker: usize) -> Result<ClientReply, TransportError> {
        let result = self.clients[worker].recv();
        result.map_err(|err| self.harvest(err))
    }

    fn recv_wire(&mut self, worker: usize) -> Result<Reply, TransportError> {
        match self.recv(worker)? {
            ClientReply::Wire(reply) => Ok(reply),
            ClientReply::SharedEpoch(_) => Err(TransportError::Protocol {
                worker,
                message: "unsolicited epoch publication".to_string(),
            }),
        }
    }

    /// Fallible [`DdsBackend::commit_round`]: partition the ordered batches
    /// by owner, pipeline one `Commit` per owner, then collect the acks.
    /// Returns the number of pairs accepted.
    pub fn try_commit_round(
        &mut self,
        batches: Vec<Vec<(Key, Value)>>,
    ) -> Result<u64, TransportError> {
        // Partition into per-(worker, local shard) buckets.  Concatenation
        // order is preserved bucket-wise, which — keys living on exactly one
        // shard — preserves every key's multi-value index order.
        let workers = self.clients.len();
        type WorkerBuckets = Vec<(usize, Vec<(Key, Value)>)>;
        let mut buckets: Vec<WorkerBuckets> = vec![Vec::new(); workers];
        let mut bucket_index: FxHashMap<(usize, usize), usize> = FxHashMap::default();
        for batch in batches {
            for (key, value) in batch {
                let (worker, local) = self.routing.route(&key);
                let slot = *bucket_index.entry((worker, local)).or_insert_with(|| {
                    buckets[worker].push((local, Vec::new()));
                    buckets[worker].len() - 1
                });
                buckets[worker][slot].1.push((key, value));
            }
        }
        let epoch = self.completed;
        let mut pending = Vec::with_capacity(workers);
        for (worker, batches) in buckets.into_iter().enumerate() {
            if !batches.is_empty() {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.send(
                    worker,
                    Request::Commit {
                        epoch,
                        seq,
                        batches,
                    },
                )?;
                pending.push(worker);
            }
        }
        let mut accepted = 0u64;
        for worker in pending {
            match self.recv_wire(worker)? {
                Reply::Committed { accepted: n, .. } => accepted += n,
                other => {
                    return Err(TransportError::Protocol {
                        worker,
                        message: format!("expected a commit ack, got {other:?}"),
                    })
                }
            }
        }
        Ok(accepted)
    }

    /// Fallible [`DdsBackend::advance`]: pipeline one `Advance` per owner,
    /// then collect each frozen epoch — shared when the transport can, a
    /// replica rebuilt from the fetched frame when it cannot.
    pub fn try_advance(&mut self) -> Result<RemoteSnapshot, TransportError> {
        let epoch = self.completed;
        for worker in 0..self.clients.len() {
            self.send(worker, Request::Advance { epoch })?;
        }
        let mut groups = Vec::with_capacity(self.clients.len());
        for worker in 0..self.clients.len() {
            match self.recv(worker)? {
                ClientReply::SharedEpoch(shared) => groups.push(shared),
                ClientReply::Wire(Reply::Epoch(frame)) => {
                    groups.push(Arc::new(FrozenEpoch::from_frame(frame)))
                }
                ClientReply::Wire(other) => {
                    return Err(TransportError::Protocol {
                        worker,
                        message: format!("expected a frozen epoch, got {other:?}"),
                    })
                }
            }
        }
        self.completed += 1;
        Ok(RemoteSnapshot::published(
            self.routing.clone(),
            epoch,
            groups,
        ))
    }

    /// Fallible [`DdsBackend::total_writes`].
    pub fn try_total_writes(&mut self) -> Result<u64, TransportError> {
        for worker in 0..self.clients.len() {
            self.send(worker, Request::TotalWrites)?;
        }
        let mut total = 0;
        for worker in 0..self.clients.len() {
            match self.recv_wire(worker)? {
                Reply::TotalWrites(writes) => total += writes,
                other => {
                    return Err(TransportError::Protocol {
                        worker,
                        message: format!("expected a total-writes reply, got {other:?}"),
                    })
                }
            }
        }
        Ok(total)
    }

    /// Owner-served per-shard loads of completed epoch `epoch`, sorted by
    /// global shard id.
    ///
    /// Note the accounting asymmetry on wire transports: reads resolve
    /// against client-side replicas, so the owner's read counters stay at
    /// zero there; on shared-memory transports owner and views count in the
    /// same atomics.  Views therefore serve [`SnapshotView::shard_loads`]
    /// from their own epoch data; this request exists for drivers and tests
    /// that audit the owner side.
    pub fn epoch_loads(&mut self, epoch: usize) -> Result<Vec<ShardLoad>, TransportError> {
        for worker in 0..self.clients.len() {
            self.send(worker, Request::Loads { epoch })?;
        }
        let mut loads = Vec::new();
        for worker in 0..self.clients.len() {
            match self.recv_wire(worker)? {
                Reply::Loads(worker_loads) => loads.extend(worker_loads),
                other => {
                    return Err(TransportError::Protocol {
                        worker,
                        message: format!("expected a loads reply, got {other:?}"),
                    })
                }
            }
        }
        loads.sort_by_key(|load| load.shard);
        Ok(loads)
    }

    /// Owner-served dump of completed epoch `epoch` (no particular order).
    pub fn epoch_entries(
        &mut self,
        epoch: usize,
    ) -> Result<Vec<(Key, Vec<Value>)>, TransportError> {
        for worker in 0..self.clients.len() {
            self.send(worker, Request::Dump { epoch })?;
        }
        let mut entries = Vec::new();
        for worker in 0..self.clients.len() {
            match self.recv_wire(worker)? {
                Reply::Dump(worker_entries) => entries.extend(worker_entries),
                other => {
                    return Err(TransportError::Protocol {
                        worker,
                        message: format!("expected a dump reply, got {other:?}"),
                    })
                }
            }
        }
        Ok(entries)
    }
}

impl RemoteBackend<TcpTransport> {
    /// Connect to an already-running owner process (`ampc_dds::serve`) at
    /// `endpoint` instead of spawning in-process owner threads.
    ///
    /// The backend opens one leased connection per owner under a fresh
    /// session id; the serving process derives each owner's shard group
    /// from the topology announced in the lease and keeps per-session
    /// state, so any number of concurrent clients can share one owner
    /// process.  Dropping the backend says goodbye on every connection,
    /// releasing the session immediately.
    pub fn connect_remote(
        endpoint: impl std::net::ToSocketAddrs,
        num_shards: usize,
        workers: usize,
    ) -> Result<Self, TransportError> {
        let num_shards = num_shards.max(1);
        let workers = workers.clamp(1, num_shards);
        let endpoint = endpoint
            .to_socket_addrs()
            .map_err(|err| TransportError::Io {
                worker: 0,
                message: format!("resolving the DDS serve address: {err}"),
            })?
            .next()
            .ok_or_else(|| TransportError::Io {
                worker: 0,
                message: "the DDS serve address resolved to nothing".to_string(),
            })?;
        let options = TcpOptions::fresh().with_topology(num_shards, workers);
        let mut clients = Vec::with_capacity(workers);
        for worker in 0..workers {
            clients.push(TcpTransport::connect_to(endpoint, worker, options.clone())?);
        }
        Ok(RemoteBackend {
            clients,
            handles: (0..workers).map(|_| None).collect(),
            routing: Routing::interleaved(num_shards, workers),
            completed: 0,
            faults: RequestFaults::none(),
            next_seq: 0,
        })
    }
}

/// Unwrap a transport result inside the infallible [`DdsBackend`] surface.
///
/// The panic message carries the full typed error (worker, cause, any owner
/// panic payload); `ampc_runtime` catches it at the round boundary and
/// surfaces it as a typed `AmpcError::Backend`.
pub(crate) fn expect_transport<V>(result: Result<V, TransportError>) -> V {
    match result {
        Ok(value) => value,
        // lint: allow(panic) — the documented harvest boundary: the runtime catches this at the round edge and re-types it as AmpcError::Backend
        Err(err) => panic!("DDS transport failure: {err}"),
    }
}

impl<T: Transport> DdsBackend for RemoteBackend<T> {
    type View = RemoteSnapshot;

    fn with_shards(num_shards: usize, threads: usize) -> Self {
        RemoteBackend::new(num_shards, threads)
    }

    fn num_shards(&self) -> usize {
        self.routing.num_shards()
    }

    fn empty_view(&self) -> RemoteSnapshot {
        RemoteSnapshot::empty(self.routing.clone())
    }

    fn commit_round(&mut self, batches: Vec<Vec<(Key, Value)>>, _threads: usize) {
        expect_transport(self.try_commit_round(batches));
    }

    fn advance(&mut self, _threads: usize) -> RemoteSnapshot {
        expect_transport(self.try_advance())
    }

    fn completed_epochs(&self) -> usize {
        self.completed
    }

    fn total_writes(&mut self) -> u64 {
        expect_transport(self.try_total_writes())
    }

    fn backend_name(&self) -> &'static str {
        T::NAME
    }

    fn install_request_faults(&mut self, faults: RequestFaults) {
        self.faults = faults.clone();
        for client in &mut self.clients {
            client.install_faults(faults.clone());
        }
    }

    fn dropped_requests(&self) -> u64 {
        self.faults.dropped()
    }

    fn severed_connections(&self) -> u64 {
        self.faults.severed()
    }
}

impl<T: Transport> Drop for RemoteBackend<T> {
    fn drop(&mut self) {
        // Disconnect every owner (their serve loops exit on a gone client),
        // then reap the threads so nothing is left detached.  Panic payloads
        // were either harvested during operation or are deliberately
        // swallowed here — propagating from `drop` would abort.
        self.clients.clear();
        for handle in self.handles.iter_mut().filter_map(Option::take) {
            let _ = handle.join();
        }
    }
}

impl<T: Transport> std::fmt::Debug for RemoteBackend<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("transport", &T::NAME)
            .field("num_shards", &self.routing.num_shards())
            .field("workers", &self.clients.len())
            .field("completed_epochs", &self.completed)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// RemoteSnapshot
// ---------------------------------------------------------------------------

/// State shared by every clone of a [`RemoteSnapshot`].
struct ViewInner {
    routing: Routing,
    /// Completed epoch served, or `None` for the pre-input empty view.
    epoch: Option<usize>,
    /// The epoch's frozen data, one entry per owner (`groups[w]` is owner
    /// `w`'s shard group) — shared with the owner on in-process transports,
    /// a local replica on wire transports.  Empty for the empty view.
    groups: Vec<Arc<FrozenEpoch>>,
    /// Read accounting of the empty view (per shard); published epochs
    /// count inside their [`FrozenEpoch`] instead.
    empty_reads: Vec<AtomicU64>,
}

/// Read view of one completed [`RemoteBackend`] epoch.
///
/// Cloning is an `Arc` bump; clones share the epoch data and therefore the
/// read accounting.  Every operation — lookups *and* the driver-side
/// `shard_loads` / `entries` / `len` — resolves locally against the frozen
/// epoch, with no transport traffic; views therefore stay valid, and their
/// reads byte-identical, for as long as the caller keeps them, even after
/// the backend (and its owner threads) are gone.
#[derive(Clone)]
pub struct RemoteSnapshot {
    inner: Arc<ViewInner>,
}

impl RemoteSnapshot {
    /// View of completed epoch `epoch`, with `groups[i]` owner `i`'s frozen
    /// shard group under `routing`.
    pub(crate) fn published(
        routing: Routing,
        epoch: usize,
        groups: Vec<Arc<FrozenEpoch>>,
    ) -> RemoteSnapshot {
        RemoteSnapshot {
            inner: Arc::new(ViewInner {
                epoch: Some(epoch),
                groups,
                empty_reads: Vec::new(),
                routing,
            }),
        }
    }

    /// The pre-input empty view under `routing`.
    pub(crate) fn empty(routing: Routing) -> RemoteSnapshot {
        RemoteSnapshot {
            inner: Arc::new(ViewInner {
                epoch: None,
                groups: Vec::new(),
                empty_reads: (0..routing.num_shards())
                    .map(|_| AtomicU64::new(0))
                    .collect(),
                routing,
            }),
        }
    }

    /// The frozen group data owning `key`, with the key's local shard index
    /// inside it, or `None` on the empty view (which counts the miss).
    #[inline]
    fn probe(&self, key: &Key) -> Option<(&FrozenEpoch, usize)> {
        if self.inner.epoch.is_none() {
            let shard = self.inner.routing.shard_of(key);
            self.inner.empty_reads[shard].fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let (worker, local) = self.inner.routing.route(key);
        Some((&self.inner.groups[worker], local))
    }

    fn loads(&self) -> Vec<ShardLoad> {
        if self.inner.epoch.is_none() {
            return self
                .inner
                .empty_reads
                .iter()
                .enumerate()
                .map(|(shard, reads)| ShardLoad {
                    shard,
                    keys: 0,
                    writes: 0,
                    reads: reads.load(Ordering::Relaxed),
                })
                .collect();
        }
        (0..self.inner.routing.num_shards())
            .map(|shard| {
                let (worker, local) = self.inner.routing.placement(shard);
                let group = &self.inner.groups[worker];
                ShardLoad {
                    shard,
                    keys: group.shards[local].len() as u64,
                    writes: group.writes[local],
                    reads: group.reads[local].load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

impl SnapshotView for RemoteSnapshot {
    fn num_shards(&self) -> usize {
        self.inner.routing.num_shards()
    }

    fn get(&self, key: &Key) -> Option<Value> {
        let (epoch, local) = self.probe(key)?;
        epoch.reads[local].fetch_add(1, Ordering::Relaxed);
        epoch.shards[local].get(key).map(Slot::first)
    }

    fn get_indexed(&self, key: &Key, index: usize) -> Option<Value> {
        let (epoch, local) = self.probe(key)?;
        epoch.reads[local].fetch_add(1, Ordering::Relaxed);
        epoch.shards[local]
            .get(key)
            .and_then(|slot| slot.get(index))
    }

    fn get_all(&self, key: &Key) -> Vec<Value> {
        let Some((epoch, local)) = self.probe(key) else {
            return Vec::new();
        };
        let values = epoch.shards[local]
            .get(key)
            .map(|slot| slot.as_slice().to_vec())
            .unwrap_or_default();
        epoch.reads[local].fetch_add(values.len().max(1) as u64, Ordering::Relaxed);
        values
    }

    fn multiplicity(&self, key: &Key) -> usize {
        let Some((epoch, local)) = self.probe(key) else {
            return 0;
        };
        epoch.reads[local].fetch_add(1, Ordering::Relaxed);
        epoch.shards[local].get(key).map_or(0, Slot::len)
    }

    fn len(&self) -> usize {
        self.inner
            .groups
            .iter()
            .map(|group| group.shards.iter().map(FxHashMap::len).sum::<usize>())
            .sum()
    }

    fn get_many_slice(&self, keys: &[Key], out: &mut [Option<Value>]) {
        assert!(
            out.len() >= keys.len(),
            "output slice shorter than key batch"
        );
        if self.inner.epoch.is_none() {
            for (key, slot) in keys.iter().zip(out.iter_mut()) {
                let shard = self.inner.routing.shard_of(key);
                self.inner.empty_reads[shard].fetch_add(1, Ordering::Relaxed);
                *slot = None;
            }
            return;
        }
        // Every key resolves against the frozen maps directly; coalesce
        // read-counter updates over runs of same-shard keys (totals are
        // identical to per-key counting), mirroring `Snapshot`.
        let mut run: Option<(usize, usize)> = None;
        let mut run_len = 0u64;
        for (key, slot) in keys.iter().zip(out.iter_mut()) {
            let (worker, local) = self.inner.routing.route(key);
            if run != Some((worker, local)) {
                if let Some((w, l)) = run {
                    self.inner.groups[w].reads[l].fetch_add(run_len, Ordering::Relaxed);
                }
                run = Some((worker, local));
                run_len = 0;
            }
            run_len += 1;
            *slot = self.inner.groups[worker].shards[local]
                .get(key)
                .map(Slot::first);
        }
        if let Some((w, l)) = run {
            self.inner.groups[w].reads[l].fetch_add(run_len, Ordering::Relaxed);
        }
    }

    fn total_reads(&self) -> u64 {
        self.loads().iter().map(|load| load.reads).sum()
    }

    fn shard_loads(&self) -> Vec<ShardLoad> {
        self.loads()
    }

    fn stats(&self) -> StoreStats {
        StoreStats::from_loads(self.loads())
    }

    fn entries(&self) -> Vec<(Key, Vec<Value>)> {
        let mut entries = Vec::new();
        for group in &self.inner.groups {
            for shard in &group.shards {
                for (key, slot) in shard {
                    entries.push((*key, slot.as_slice().to_vec()));
                }
            }
        }
        entries
    }
}

impl std::fmt::Debug for RemoteSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteSnapshot")
            .field("num_shards", &self.inner.routing.num_shards())
            .field("epoch", &self.inner.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyTag;
    use crate::transport::MpscTransport;

    fn k(a: u64) -> Key {
        Key::of(KeyTag::Scalar, a)
    }

    fn owner_served_requests_agree_with_the_view<T: Transport>() {
        let mut backend = RemoteBackend::<T>::new(8, 3);
        backend.commit_round(
            vec![
                (0..40u64).map(|i| (k(i % 10), Value::scalar(i))).collect(),
                vec![(k(3), Value::pair(7, 8))],
            ],
            1,
        );
        let view = backend.advance(1);

        // The owner-served dump matches the view's local entries…
        let mut local = view.entries();
        let mut served = backend.epoch_entries(0).unwrap();
        local.sort_by_key(|&(key, _)| key);
        served.sort_by_key(|&(key, _)| key);
        assert_eq!(local, served);

        // …and the owner-served loads agree on keys and writes (read
        // counters live client-side on wire transports, so they are
        // excluded here; `channel.rs` pins the shared-memory case).
        let served = backend.epoch_loads(0).unwrap();
        let local = view.shard_loads();
        assert_eq!(local.len(), served.len());
        for (local, served) in local.iter().zip(&served) {
            assert_eq!(local.shard, served.shard);
            assert_eq!(local.keys, served.keys);
            assert_eq!(local.writes, served.writes);
        }
        assert_eq!(backend.total_writes(), 41);
    }

    #[test]
    fn mpsc_owner_served_requests_agree_with_the_view() {
        owner_served_requests_agree_with_the_view::<MpscTransport>();
    }

    #[test]
    fn tcp_owner_served_requests_agree_with_the_view() {
        owner_served_requests_agree_with_the_view::<TcpTransport>();
    }

    fn owner_panics_surface_as_typed_errors<T: Transport>() {
        let mut backend = RemoteBackend::<T>::new(4, 2);
        backend.commit_round(vec![vec![(k(1), Value::scalar(1))]], 1);
        let _ = backend.advance(1);
        // Asking for an epoch that does not exist is a protocol violation:
        // the owner panics, and the client must surface a typed error
        // carrying the harvested panic payload — not hang on a dead
        // connection.
        let err = backend.epoch_loads(7).unwrap_err();
        match err {
            TransportError::PeerClosed {
                panic: Some(message),
                ..
            } => assert!(message.contains("unknown epoch 7"), "{message}"),
            other => panic!("expected a harvested owner panic, got {other:?}"),
        }
    }

    #[test]
    fn mpsc_owner_panics_surface_as_typed_errors() {
        owner_panics_surface_as_typed_errors::<MpscTransport>();
    }

    #[test]
    fn tcp_owner_panics_surface_as_typed_errors() {
        owner_panics_surface_as_typed_errors::<TcpTransport>();
    }

    fn retransmitted_requests_apply_exactly_once<T: Transport>() {
        use crate::proto::RequestKind;
        use crate::transport::RequestFaults;

        let run = |faulted: bool| {
            let mut backend = RemoteBackend::<T>::new(8, 2);
            let faults = RequestFaults::none();
            if faulted {
                faults.schedule_drop(RequestKind::Commit, 0, 0);
                faults.schedule_drop(RequestKind::Commit, 0, 1);
                faults.schedule_drop(RequestKind::Advance, 1, 0);
            }
            backend.install_request_faults(faults.clone());
            backend.commit_round(
                vec![(0..60u64).map(|i| (k(i % 20), Value::scalar(i))).collect()],
                1,
            );
            let d0 = backend.advance(1);
            backend.commit_round(
                vec![(0..10u64).map(|i| (k(i), Value::pair(i, 1))).collect()],
                1,
            );
            let d1 = backend.advance(1);
            let mut entries0 = d0.entries();
            let mut entries1 = d1.entries();
            entries0.sort_by_key(|&(key, _)| key);
            entries1.sort_by_key(|&(key, _)| key);
            (entries0, entries1, backend.total_writes(), faults.dropped())
        };

        let (clean0, clean1, clean_writes, clean_fired) = run(false);
        let (faulty0, faulty1, faulty_writes, faulty_fired) = run(true);
        assert_eq!(clean_fired, 0);
        assert_eq!(faulty_fired, 3, "every scheduled fault must fire");
        // The duplicates really crossed the transport (pinned in
        // `transport::tests`); if the owner ever re-applied one, the
        // multiplicities and write totals here would double.
        assert_eq!(clean0, faulty0);
        assert_eq!(clean1, faulty1);
        assert_eq!(clean_writes, faulty_writes);
    }

    #[test]
    fn mpsc_retransmitted_requests_apply_exactly_once() {
        retransmitted_requests_apply_exactly_once::<MpscTransport>();
    }

    #[test]
    fn tcp_retransmitted_requests_apply_exactly_once() {
        retransmitted_requests_apply_exactly_once::<TcpTransport>();
    }

    #[test]
    fn epoch_frames_rebuild_identical_replicas() {
        let mut backend = RemoteBackend::<MpscTransport>::new(4, 1);
        backend.commit_round(
            vec![(0..30u64).map(|i| (k(i % 12), Value::scalar(i))).collect()],
            1,
        );
        let view = backend.advance(1);
        // Round-trip the frozen epoch through its wire frame and compare
        // every entry of the rebuilt replica.
        let mut original = view.entries();
        let shared = &view.inner.groups[0];
        let replica = FrozenEpoch::from_frame(shared.to_frame());
        let mut rebuilt: Vec<(Key, Vec<Value>)> = replica
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .iter()
                    .map(|(key, slot)| (*key, slot.as_slice().to_vec()))
            })
            .collect();
        original.sort_by_key(|&(key, _)| key);
        rebuilt.sort_by_key(|&(key, _)| key);
        assert_eq!(original, rebuilt);
        assert_eq!(replica.writes, shared.writes);
    }
}

//! Constant-size keys and values.
//!
//! The AMPC model requires that every key-value pair stored in the DDS has
//! constant size: "both key and value consist of a constant number of words"
//! (Section 2 of the paper).  We encode keys as a small tag plus two 64-bit
//! words and values as two 64-bit words, which is enough for every algorithm
//! in the paper (adjacency entries, statuses, priorities, contracted edges,
//! list-ranking weights, …).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Namespace tag of a [`Key`].
///
/// Tags keep the key spaces of different per-round data disjoint, e.g. the
/// adjacency list of a vertex versus its MIS status.  Algorithms are free to
/// invent their own tags via [`KeyTag::Custom`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KeyTag {
    /// Degree of a vertex.
    Degree,
    /// The `i`-th entry of a vertex adjacency list.
    Adjacency,
    /// Cycle successor/predecessor of a vertex (used by `Shrink`).
    CycleNeighbors,
    /// "Is this vertex sampled in the current iteration?"
    Sampled,
    /// Random priority of a vertex (MIS, cycle connectivity).
    Priority,
    /// Settled status of a vertex (MIS).
    Status,
    /// Successor pointer of a list element (list ranking).
    Successor,
    /// Accumulated weight of a list element (list ranking).
    Weight,
    /// Component / leader label of a vertex.
    Label,
    /// Weighted adjacency entry (minimum spanning forest).
    WeightedAdjacency,
    /// Generic per-vertex scalar.
    Scalar,
    /// User-defined namespace.
    Custom(u16),
}

impl KeyTag {
    /// Stable numeric encoding used by hashing and the byte codec.
    #[inline]
    pub fn code(self) -> u32 {
        match self {
            KeyTag::Degree => 0,
            KeyTag::Adjacency => 1,
            KeyTag::CycleNeighbors => 2,
            KeyTag::Sampled => 3,
            KeyTag::Priority => 4,
            KeyTag::Status => 5,
            KeyTag::Successor => 6,
            KeyTag::Weight => 7,
            KeyTag::Label => 8,
            KeyTag::WeightedAdjacency => 9,
            KeyTag::Scalar => 10,
            KeyTag::Custom(c) => 0x1_0000 + c as u32,
        }
    }

    /// Inverse of [`KeyTag::code`] for codes a well-formed encoder can
    /// produce; `None` for the gap between the named tags and the
    /// `Custom` namespace.  Wire decoders use this so a corrupt frame
    /// surfaces as a decode error instead of a panic.
    #[inline]
    pub fn try_from_code(code: u32) -> Option<Self> {
        Some(match code {
            0 => KeyTag::Degree,
            1 => KeyTag::Adjacency,
            2 => KeyTag::CycleNeighbors,
            3 => KeyTag::Sampled,
            4 => KeyTag::Priority,
            5 => KeyTag::Status,
            6 => KeyTag::Successor,
            7 => KeyTag::Weight,
            8 => KeyTag::Label,
            9 => KeyTag::WeightedAdjacency,
            10 => KeyTag::Scalar,
            c if c >= 0x1_0000 => KeyTag::Custom((c - 0x1_0000) as u16),
            _ => return None,
        })
    }

    /// Inverse of [`KeyTag::code`], panicking on unassigned codes.  For
    /// trusted in-process codes only — untrusted input goes through
    /// [`KeyTag::try_from_code`].
    #[inline]
    pub fn from_code(code: u32) -> Self {
        // lint: allow(panic) — trusted-input inverse; wire decoding uses try_from_code
        Self::try_from_code(code).unwrap_or_else(|| panic!("invalid KeyTag code {code}"))
    }
}

/// A constant-size key: a namespace tag plus two 64-bit coordinates.
///
/// Typical uses: `Key::of(KeyTag::Degree, v)` for the degree of vertex `v`,
/// or `Key::with_index(KeyTag::Adjacency, v, i)` for the `i`-th neighbour of
/// `v`.  The model's multi-value addressing "(x, 1), …, (x, k)" maps onto the
/// store's per-key value lists (see [`crate::ShardedStore`]); the `b`
/// coordinate here is for keys that are *structurally* two-dimensional.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Key {
    /// Namespace of the key.
    pub tag: KeyTag,
    /// Primary coordinate (usually a vertex or list-element id).
    pub a: u64,
    /// Secondary coordinate (usually an index within an adjacency list).
    pub b: u64,
}

impl Key {
    /// A one-dimensional key in namespace `tag`.
    #[inline]
    pub fn of(tag: KeyTag, a: u64) -> Self {
        Key { tag, a, b: 0 }
    }

    /// A two-dimensional key, e.g. `(Adjacency, v, i)`.
    #[inline]
    pub fn with_index(tag: KeyTag, a: u64, b: u64) -> Self {
        Key { tag, a, b }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?},{},{})", self.tag, self.a, self.b)
    }
}

/// A constant-size value: two 64-bit words.
///
/// Helpers cover the common shapes: a single scalar, a pair, or a
/// `(vertex, weight)` edge endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Value {
    /// First word.
    pub x: u64,
    /// Second word.
    pub y: u64,
}

impl Value {
    /// A single-word value (second word zero).
    #[inline]
    pub fn scalar(x: u64) -> Self {
        Value { x, y: 0 }
    }

    /// A two-word value.
    #[inline]
    pub fn pair(x: u64, y: u64) -> Self {
        Value { x, y }
    }

    /// First word interpreted as a vertex id.
    #[inline]
    pub fn as_vertex(&self) -> u32 {
        self.x as u32
    }

    /// Both words as a `(u64, u64)` tuple.
    #[inline]
    pub fn as_pair(&self) -> (u64, u64) {
        (self.x, self.y)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::scalar(x)
    }
}

impl From<(u64, u64)> for Value {
    fn from((x, y): (u64, u64)) -> Self {
        Value::pair(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_tag_codes_round_trip() {
        let tags = [
            KeyTag::Degree,
            KeyTag::Adjacency,
            KeyTag::CycleNeighbors,
            KeyTag::Sampled,
            KeyTag::Priority,
            KeyTag::Status,
            KeyTag::Successor,
            KeyTag::Weight,
            KeyTag::Label,
            KeyTag::WeightedAdjacency,
            KeyTag::Scalar,
            KeyTag::Custom(0),
            KeyTag::Custom(42),
            KeyTag::Custom(u16::MAX),
        ];
        for tag in tags {
            assert_eq!(KeyTag::from_code(tag.code()), tag);
        }
    }

    #[test]
    fn key_equality_depends_on_all_fields() {
        let a = Key::with_index(KeyTag::Adjacency, 3, 1);
        let b = Key::with_index(KeyTag::Adjacency, 3, 2);
        let c = Key::with_index(KeyTag::Degree, 3, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, Key::with_index(KeyTag::Adjacency, 3, 1));
    }

    #[test]
    fn value_helpers() {
        let v = Value::scalar(7);
        assert_eq!(v.as_pair(), (7, 0));
        let w = Value::pair(1, 2);
        assert_eq!(w.as_pair(), (1, 2));
        assert_eq!(w.as_vertex(), 1);
        let from: Value = 9u64.into();
        assert_eq!(from, Value::scalar(9));
        let from2: Value = (3u64, 4u64).into();
        assert_eq!(from2, Value::pair(3, 4));
    }

    #[test]
    fn key_display_is_compact() {
        let k = Key::with_index(KeyTag::Adjacency, 5, 2);
        assert_eq!(format!("{k}"), "(Adjacency,5,2)");
    }

    #[test]
    #[should_panic(expected = "invalid KeyTag code")]
    fn invalid_tag_code_panics() {
        let _ = KeyTag::from_code(999);
    }
}

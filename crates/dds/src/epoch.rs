//! The chain of per-round stores `D_0, D_1, D_2, …`.
//!
//! Section 2 of the paper: "in the i-th round, each machine can read data
//! from `D_{i-1}` and write to `D_i`".  [`DdsChain`] owns the current
//! writable store and the frozen snapshots of all earlier rounds, and
//! enforces the read-previous / write-current discipline by construction:
//! callers can only obtain a [`Snapshot`] for a *completed* epoch.

use crate::key::{Key, Value};
use crate::snapshot::Snapshot;
use crate::stats::StoreStats;
use crate::store::ShardedStore;

/// The sequence of distributed data stores produced by one AMPC execution.
pub struct DdsChain {
    num_shards: usize,
    /// Snapshots of completed epochs, `snapshots[i]` = `D_i`.
    snapshots: Vec<Snapshot>,
    /// The store currently accepting writes (`D_{current_epoch}`).
    current: ShardedStore,
}

impl DdsChain {
    /// Create a chain whose stores all use `num_shards` shards.
    ///
    /// The chain starts at epoch 0 with an empty writable `D_0`; the input of
    /// an algorithm is loaded by writing into it and calling
    /// [`DdsChain::advance`].
    pub fn new(num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        DdsChain {
            num_shards,
            snapshots: Vec::new(),
            current: ShardedStore::new(num_shards),
        }
    }

    /// Number of shards used by every store in the chain.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Index of the epoch currently accepting writes.
    pub fn current_epoch(&self) -> usize {
        self.snapshots.len()
    }

    /// The writable store of the current epoch.
    pub fn current_store(&self) -> &ShardedStore {
        &self.current
    }

    /// Write a key-value pair into the current epoch's store.
    pub fn write(&mut self, key: Key, value: Value) {
        self.current.write(key, value);
    }

    /// Write a batch of pairs into the current epoch's store.
    ///
    /// The batch is grouped by destination shard, taking each shard lock
    /// once per batch (see [`ShardedStore::write_batch`]).
    pub fn write_batch(&mut self, pairs: impl IntoIterator<Item = (Key, Value)>) {
        self.current.write_batch(pairs);
    }

    /// Commit ordered write batches (for the runtime: one per machine, in
    /// machine-id order) into the current epoch's store, locking each shard
    /// once and committing distinct shards in parallel on up to `threads`
    /// workers.  Per-key multi-value index order is the concatenation order
    /// of the batches.
    ///
    /// Large rounds also run the *partition pass* in parallel
    /// ([`ShardedStore::partition_writes_parallel`]): each worker buckets a
    /// contiguous run of batches, and the commit consumes the runs in order,
    /// so the result is bit-identical to the single-threaded pass.
    pub fn commit_round(&mut self, batches: Vec<Vec<(Key, Value)>>, threads: usize) {
        // Below this many pairs the scoped-thread setup of the parallel
        // partition costs more than the bucketing itself.
        const PARALLEL_PARTITION_THRESHOLD: usize = 4 * 1024;
        let total_pairs: usize = batches.iter().map(Vec::len).sum();
        if threads <= 1 || total_pairs < PARALLEL_PARTITION_THRESHOLD {
            let per_shard = self.current.partition_writes(batches);
            self.current.commit_partitioned(per_shard, threads);
        } else {
            let chunks = self.current.partition_writes_parallel(batches, threads);
            self.current.commit_chunked(chunks, threads);
        }
    }

    /// Freeze the current epoch **in place** and open the next one; the
    /// write-side shard maps become the snapshot's frozen maps without a
    /// rebuild, shrunk shard-parallel on up to one worker per available CPU.
    ///
    /// Returns the snapshot of the epoch that just completed; subsequent
    /// reads in the next round go against that snapshot.  Callers with a
    /// configured thread cap (the AMPC runtime) should use
    /// [`DdsChain::advance_with_threads`] instead.
    pub fn advance(&mut self) -> Snapshot {
        self.advance_with_threads(crate::default_parallelism())
    }

    /// [`DdsChain::advance`] with an explicit cap on the freeze workers,
    /// so embedders that limit runtime threads are not oversubscribed by
    /// the shard-parallel freeze.
    pub fn advance_with_threads(&mut self, threads: usize) -> Snapshot {
        let finished = std::mem::replace(&mut self.current, ShardedStore::new(self.num_shards));
        let snapshot = finished.freeze_with_threads(threads);
        self.snapshots.push(snapshot.clone());
        snapshot
    }

    /// Snapshot of a completed epoch `i` (i.e. `D_i`), if it exists.
    pub fn snapshot(&self, epoch: usize) -> Option<Snapshot> {
        self.snapshots.get(epoch).cloned()
    }

    /// Snapshot of the most recently completed epoch, if any.
    pub fn latest_snapshot(&self) -> Option<Snapshot> {
        self.snapshots.last().cloned()
    }

    /// Number of completed epochs.
    pub fn completed_epochs(&self) -> usize {
        self.snapshots.len()
    }

    /// Aggregate statistics of every completed epoch.
    pub fn epoch_stats(&self) -> Vec<StoreStats> {
        self.snapshots.iter().map(|s| s.stats()).collect()
    }

    /// Total writes across all epochs (completed and current).
    pub fn total_writes(&self) -> u64 {
        let completed: u64 = self.snapshots.iter().map(|s| s.stats().total_writes).sum();
        completed + self.current.total_writes()
    }

    /// Total reads served across all completed epochs.
    pub fn total_reads(&self) -> u64 {
        self.snapshots.iter().map(|s| s.total_reads()).sum()
    }
}

impl std::fmt::Debug for DdsChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DdsChain")
            .field("num_shards", &self.num_shards)
            .field("completed_epochs", &self.completed_epochs())
            .field("current_epoch", &self.current_epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyTag;

    fn k(a: u64) -> Key {
        Key::of(KeyTag::Scalar, a)
    }

    #[test]
    fn epochs_advance_and_freeze() {
        let mut chain = DdsChain::new(4);
        assert_eq!(chain.current_epoch(), 0);
        chain.write(k(1), Value::scalar(100));
        let d0 = chain.advance();
        assert_eq!(chain.current_epoch(), 1);
        assert_eq!(d0.get(&k(1)), Some(Value::scalar(100)));
        assert_eq!(
            chain.snapshot(0).unwrap().get(&k(1)),
            Some(Value::scalar(100))
        );
        assert!(chain.snapshot(1).is_none());
    }

    #[test]
    fn writes_go_to_current_epoch_only() {
        let mut chain = DdsChain::new(2);
        chain.write(k(1), Value::scalar(1));
        chain.advance();
        chain.write(k(2), Value::scalar(2));
        chain.advance();

        let d0 = chain.snapshot(0).unwrap();
        let d1 = chain.snapshot(1).unwrap();
        assert_eq!(d0.get(&k(1)), Some(Value::scalar(1)));
        assert_eq!(d0.get(&k(2)), None);
        assert_eq!(d1.get(&k(1)), None);
        assert_eq!(d1.get(&k(2)), Some(Value::scalar(2)));
    }

    #[test]
    fn latest_snapshot_tracks_most_recent_epoch() {
        let mut chain = DdsChain::new(2);
        assert!(chain.latest_snapshot().is_none());
        chain.write(k(5), Value::scalar(5));
        chain.advance();
        assert_eq!(
            chain.latest_snapshot().unwrap().get(&k(5)),
            Some(Value::scalar(5))
        );
        chain.write(k(6), Value::scalar(6));
        chain.advance();
        let latest = chain.latest_snapshot().unwrap();
        assert_eq!(latest.get(&k(6)), Some(Value::scalar(6)));
        assert_eq!(latest.get(&k(5)), None);
    }

    #[test]
    fn totals_accumulate_across_epochs() {
        let mut chain = DdsChain::new(2);
        chain.write_batch((0..10u64).map(|i| (k(i), Value::scalar(i))));
        let d0 = chain.advance();
        chain.write_batch((0..5u64).map(|i| (k(i), Value::scalar(i))));
        assert_eq!(chain.total_writes(), 15);
        let _ = d0.get(&k(0));
        let _ = d0.get(&k(1));
        assert_eq!(chain.total_reads(), 2);
        assert_eq!(chain.epoch_stats().len(), 1);
    }

    #[test]
    fn empty_advance_produces_empty_snapshot() {
        let mut chain = DdsChain::new(3);
        let snap = chain.advance();
        assert!(snap.is_empty());
        assert_eq!(chain.completed_epochs(), 1);
    }
}

//! Per-key storage slots: inline singletons, heap only for multi-values.
//!
//! Profiling the algorithm suite shows that ~99% of DDS keys hold exactly
//! one value (degrees, statuses, successor pointers, per-slot adjacency
//! entries, …).  The original layout paid a heap-allocated `Vec<Value>` for
//! every key; these slot types keep the singleton case inline in the shard's
//! hash map and only touch the heap once a key becomes multi-valued.
//!
//! [`WriteSlot`] is the growable variant used by the writable
//! [`crate::ShardedStore`]; [`Slot`] is the compact frozen variant built at
//! `freeze()` time for [`crate::Snapshot`], with `Box<[Value]>` instead of
//! `Vec<Value>` so multi-value entries carry no spare capacity.

use crate::key::Value;

/// Growable per-key slot of the writable store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum WriteSlot {
    /// The common case: exactly one value, stored inline.
    One(Value),
    /// Two or more values, in commit order.
    Many(Vec<Value>),
}

impl WriteSlot {
    /// Append `value`, upgrading a singleton to a heap list when needed.
    #[inline]
    pub fn push(&mut self, value: Value) {
        match self {
            WriteSlot::One(first) => {
                *self = WriteSlot::Many(vec![*first, value]);
            }
            WriteSlot::Many(values) => values.push(value),
        }
    }

    /// All values, in commit order.
    #[inline]
    pub fn as_slice(&self) -> &[Value] {
        match self {
            WriteSlot::One(value) => std::slice::from_ref(value),
            WriteSlot::Many(values) => values,
        }
    }

    /// Convert into the compact frozen representation.
    #[inline]
    pub fn freeze(self) -> Slot {
        match self {
            WriteSlot::One(value) => Slot::One(value),
            WriteSlot::Many(values) => Slot::Many(values.into_boxed_slice()),
        }
    }
}

/// Compact frozen per-key slot of a [`crate::Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Slot {
    /// The common case: exactly one value, stored inline.
    One(Value),
    /// Two or more values, in commit order, without spare capacity.
    Many(Box<[Value]>),
}

impl Slot {
    /// All values, in commit order.
    #[inline]
    pub fn as_slice(&self) -> &[Value] {
        match self {
            Slot::One(value) => std::slice::from_ref(value),
            Slot::Many(values) => values,
        }
    }

    /// First value (the model's `(x, 1)` lookup).
    #[inline]
    pub fn first(&self) -> Value {
        match self {
            Slot::One(value) => *value,
            Slot::Many(values) => values[0],
        }
    }

    /// The `index`-th value, if present.
    #[inline]
    pub fn get(&self, index: usize) -> Option<Value> {
        match self {
            Slot::One(value) if index == 0 => Some(*value),
            Slot::One(_) => None,
            Slot::Many(values) => values.get(index).copied(),
        }
    }

    /// Number of values stored.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Slot::One(_) => 1,
            Slot::Many(values) => values.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_slot_upgrades_to_many() {
        let mut slot = WriteSlot::One(Value::scalar(1));
        assert_eq!(slot.as_slice(), &[Value::scalar(1)]);
        slot.push(Value::scalar(2));
        slot.push(Value::scalar(3));
        assert_eq!(
            slot.as_slice(),
            &[Value::scalar(1), Value::scalar(2), Value::scalar(3)]
        );
    }

    #[test]
    fn frozen_slot_exposes_indexed_access() {
        let single = WriteSlot::One(Value::pair(1, 2)).freeze();
        assert_eq!(single.len(), 1);
        assert_eq!(single.first(), Value::pair(1, 2));
        assert_eq!(single.get(0), Some(Value::pair(1, 2)));
        assert_eq!(single.get(1), None);

        let mut multi = WriteSlot::One(Value::scalar(0));
        for i in 1..5u64 {
            multi.push(Value::scalar(i));
        }
        let multi = multi.freeze();
        assert_eq!(multi.len(), 5);
        for i in 0..5u64 {
            assert_eq!(multi.get(i as usize), Some(Value::scalar(i)));
        }
        assert_eq!(multi.get(5), None);
    }

    #[test]
    fn singleton_slots_are_inline() {
        // The whole point of the layout: a singleton entry is no bigger than
        // the multi-value header, and needs no heap allocation.
        assert!(std::mem::size_of::<Slot>() <= 24);
        assert_eq!(
            std::mem::size_of::<Slot>(),
            std::mem::size_of::<Box<[Value]>>() + std::mem::size_of::<u64>()
        );
    }
}

//! Per-key storage slots: inline singletons, heap only for multi-values.
//!
//! Profiling the algorithm suite shows that ~99% of DDS keys hold exactly
//! one value (degrees, statuses, successor pointers, per-slot adjacency
//! entries, …).  The original layout paid a heap-allocated `Vec<Value>` for
//! every key; [`Slot`] keeps the singleton case inline in the shard's hash
//! map and only touches the heap once a key becomes multi-valued.
//!
//! # One layout for both sides of the freeze
//!
//! Earlier revisions used two types: a growable `WriteSlot` (`Vec<Value>`
//! multi-values) for the writable store and a compact frozen `Slot`
//! (`Box<[Value]>`) for snapshots, which forced `freeze()` to **rebuild
//! every shard map** just to change the value type.  [`Slot`] is now the
//! single layout shared by the write side and the frozen side: freeze became
//! an *in-place* pass ([`Slot::shrink_to_fit`] on the few multi-value
//! entries) that reuses the write-side map allocation outright.
//!
//! The anticipated cost — a `Vec` header carries a capacity word a
//! `Box<[Value]>` does not — never materialises: the discriminant lives in
//! the `Vec` pointer's non-null niche, so the unified slot is exactly as
//! wide as the old frozen slot (24 bytes, pinned by the size test below).
//! The only residual trade is the spare multi-value capacity dropped by
//! [`Slot::shrink_to_fit`]; the `read_latency` series in
//! `BENCH_commit.json` keeps the read-side cost of the layout visible
//! against the legacy `Vec`-per-key baseline.

use crate::hashing::FxHashMap;
use crate::key::{Key, Value};

/// Freeze one shard map **in place**: reuse the map allocation (and every
/// inline singleton slot) as-is, dropping only the spare `Vec` capacity of
/// the rare multi-value slots.
///
/// The single freeze pass shared by [`crate::ShardedStore::freeze`] and the
/// [`crate::ChannelBackend`] owner threads' `Advance`, so the two epoch
/// pipelines cannot drift apart.
pub(crate) fn freeze_map_in_place(map: &mut FxHashMap<Key, Slot>) {
    for slot in map.values_mut() {
        slot.shrink_to_fit();
    }
}

/// Per-key slot used by both the writable store and frozen snapshots.
///
/// On the write side slots grow via [`Slot::push`]; at freeze time
/// [`Slot::shrink_to_fit`] drops the spare capacity of multi-value entries
/// and the slot (and the map holding it) is served read-only from then on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Slot {
    /// The common case: exactly one value, stored inline.
    One(Value),
    /// Two or more values, in commit order.
    Many(Vec<Value>),
}

impl Slot {
    /// Append `value`, upgrading a singleton to a heap list when needed.
    #[inline]
    pub fn push(&mut self, value: Value) {
        match self {
            Slot::One(first) => {
                *self = Slot::Many(vec![*first, value]);
            }
            Slot::Many(values) => values.push(value),
        }
    }

    /// Drop the spare capacity of a multi-value slot (no-op for singletons).
    ///
    /// This is the entire per-slot work of the in-place freeze: the slot is
    /// not moved, re-hashed, or re-allocated unless the `Vec` actually holds
    /// spare capacity.
    #[inline]
    pub fn shrink_to_fit(&mut self) {
        if let Slot::Many(values) = self {
            values.shrink_to_fit();
        }
    }

    /// All values, in commit order.
    #[inline]
    pub fn as_slice(&self) -> &[Value] {
        match self {
            Slot::One(value) => std::slice::from_ref(value),
            Slot::Many(values) => values,
        }
    }

    /// First value (the model's `(x, 1)` lookup).
    #[inline]
    pub fn first(&self) -> Value {
        match self {
            Slot::One(value) => *value,
            Slot::Many(values) => values[0],
        }
    }

    /// The `index`-th value, if present.
    #[inline]
    pub fn get(&self, index: usize) -> Option<Value> {
        match self {
            Slot::One(value) if index == 0 => Some(*value),
            Slot::One(_) => None,
            Slot::Many(values) => values.get(index).copied(),
        }
    }

    /// Number of values stored.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Slot::One(_) => 1,
            Slot::Many(values) => values.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_upgrades_to_many() {
        let mut slot = Slot::One(Value::scalar(1));
        assert_eq!(slot.as_slice(), &[Value::scalar(1)]);
        slot.push(Value::scalar(2));
        slot.push(Value::scalar(3));
        assert_eq!(
            slot.as_slice(),
            &[Value::scalar(1), Value::scalar(2), Value::scalar(3)]
        );
    }

    #[test]
    fn slot_exposes_indexed_access() {
        let single = Slot::One(Value::pair(1, 2));
        assert_eq!(single.len(), 1);
        assert_eq!(single.first(), Value::pair(1, 2));
        assert_eq!(single.get(0), Some(Value::pair(1, 2)));
        assert_eq!(single.get(1), None);

        let mut multi = Slot::One(Value::scalar(0));
        for i in 1..5u64 {
            multi.push(Value::scalar(i));
        }
        assert_eq!(multi.len(), 5);
        for i in 0..5u64 {
            assert_eq!(multi.get(i as usize), Some(Value::scalar(i)));
        }
        assert_eq!(multi.get(5), None);
    }

    #[test]
    fn shrink_to_fit_drops_spare_capacity_and_keeps_contents() {
        let mut slot = Slot::One(Value::scalar(0));
        for i in 1..9u64 {
            slot.push(Value::scalar(i));
        }
        slot.shrink_to_fit();
        let Slot::Many(values) = &slot else {
            panic!("multi-value slot expected");
        };
        assert_eq!(values.capacity(), values.len());
        for i in 0..9u64 {
            assert_eq!(slot.get(i as usize), Some(Value::scalar(i)));
        }
        // Shrinking a singleton is a no-op.
        let mut single = Slot::One(Value::scalar(7));
        single.shrink_to_fit();
        assert_eq!(single, Slot::One(Value::scalar(7)));
    }

    #[test]
    fn singleton_slots_are_inline() {
        // The whole point of the layout: a singleton entry is no bigger than
        // the multi-value header, and needs no heap allocation.  The shared
        // write/freeze layout is no wider than the old frozen `Box<[Value]>`
        // slot either — the discriminant hides in the `Vec` pointer niche.
        assert!(std::mem::size_of::<Slot>() <= 24);
        assert_eq!(
            std::mem::size_of::<Slot>(),
            std::mem::size_of::<Vec<Value>>()
        );
    }
}

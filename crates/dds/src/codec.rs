//! Byte-level encoding of key-value pairs.
//!
//! The in-process store keeps values as plain structs, but the model's space
//! accounting is defined in *words*, and a real deployment (the RDMA-backed
//! DHT the paper targets) ships bytes over the wire.  This module provides
//! the canonical wire format — a fixed 20-byte key and 16-byte value — used
//! by the space accounting in the runtime and by tests that check the
//! "constant number of words" requirement is honoured.

use crate::key::{Key, KeyTag, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Size of an encoded [`Key`] in bytes: 4 (tag) + 8 (a) + 8 (b).
pub const ENCODED_KEY_BYTES: usize = 20;
/// Size of an encoded [`Value`] in bytes: 8 (x) + 8 (y).
pub const ENCODED_VALUE_BYTES: usize = 16;
/// Size of an encoded key-value pair in bytes.
pub const ENCODED_PAIR_BYTES: usize = ENCODED_KEY_BYTES + ENCODED_VALUE_BYTES;

/// Encode a key into its fixed-size wire representation.
pub fn encode_key(key: &Key) -> Bytes {
    let mut buf = BytesMut::with_capacity(ENCODED_KEY_BYTES);
    buf.put_u32_le(key.tag.code());
    buf.put_u64_le(key.a);
    buf.put_u64_le(key.b);
    buf.freeze()
}

/// Decode a key from its wire representation.
///
/// Returns `None` if the buffer is too short or the tag code is not one a
/// well-formed encoder can produce — a corrupt frame must fail decoding,
/// not panic the decoder's thread.
pub fn decode_key(mut bytes: &[u8]) -> Option<Key> {
    if bytes.len() < ENCODED_KEY_BYTES {
        return None;
    }
    let tag = KeyTag::try_from_code(bytes.get_u32_le())?;
    let a = bytes.get_u64_le();
    let b = bytes.get_u64_le();
    Some(Key { tag, a, b })
}

/// Encode a value into its fixed-size wire representation.
pub fn encode_value(value: &Value) -> Bytes {
    let mut buf = BytesMut::with_capacity(ENCODED_VALUE_BYTES);
    buf.put_u64_le(value.x);
    buf.put_u64_le(value.y);
    buf.freeze()
}

/// Decode a value from its wire representation.
///
/// Returns `None` if the buffer is too short.
pub fn decode_value(mut bytes: &[u8]) -> Option<Value> {
    if bytes.len() < ENCODED_VALUE_BYTES {
        return None;
    }
    let x = bytes.get_u64_le();
    let y = bytes.get_u64_le();
    Some(Value { x, y })
}

/// Encode a whole key-value pair.
pub fn encode_pair(key: &Key, value: &Value) -> Bytes {
    let mut buf = BytesMut::with_capacity(ENCODED_PAIR_BYTES);
    buf.put_slice(&encode_key(key));
    buf.put_slice(&encode_value(value));
    buf.freeze()
}

/// Decode a whole key-value pair.
pub fn decode_pair(bytes: &[u8]) -> Option<(Key, Value)> {
    if bytes.len() < ENCODED_PAIR_BYTES {
        return None;
    }
    let key = decode_key(&bytes[..ENCODED_KEY_BYTES])?;
    let value = decode_value(&bytes[ENCODED_KEY_BYTES..])?;
    Some((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trips() {
        let keys = [
            Key::of(KeyTag::Degree, 0),
            Key::with_index(KeyTag::Adjacency, u64::MAX, 17),
            Key::with_index(KeyTag::Custom(9), 1, 2),
        ];
        for key in keys {
            let bytes = encode_key(&key);
            assert_eq!(bytes.len(), ENCODED_KEY_BYTES);
            assert_eq!(decode_key(&bytes), Some(key));
        }
    }

    #[test]
    fn value_round_trips() {
        let values = [
            Value::scalar(0),
            Value::pair(u64::MAX, 1),
            Value::pair(3, 4),
        ];
        for value in values {
            let bytes = encode_value(&value);
            assert_eq!(bytes.len(), ENCODED_VALUE_BYTES);
            assert_eq!(decode_value(&bytes), Some(value));
        }
    }

    #[test]
    fn pair_round_trips() {
        let key = Key::with_index(KeyTag::WeightedAdjacency, 12, 3);
        let value = Value::pair(99, 100);
        let bytes = encode_pair(&key, &value);
        assert_eq!(bytes.len(), ENCODED_PAIR_BYTES);
        assert_eq!(decode_pair(&bytes), Some((key, value)));
    }

    #[test]
    fn short_buffers_are_rejected() {
        assert_eq!(decode_key(&[0u8; 3]), None);
        assert_eq!(decode_value(&[0u8; 3]), None);
        assert_eq!(decode_pair(&[0u8; 3]), None);
    }

    #[test]
    fn encoding_is_constant_size() {
        // The model requires constant-size pairs; the codec makes that literal.
        assert_eq!(ENCODED_PAIR_BYTES, 36);
    }
}

//! Load statistics for the DDS shards.
//!
//! Lemma 2.1 of the paper argues that under random key placement every DDS
//! machine answers only `O(S)` queries with high probability.  These types
//! expose the measured counterpart: per-shard read/write/key counts and a
//! summary with the max/mean load and the imbalance factor, which the
//! contention benchmark reports alongside the analytical bound.

use serde::{Deserialize, Serialize};

/// Load observed on a single shard ("DDS machine").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Number of distinct keys resident on the shard.
    pub keys: u64,
    /// Writes the shard accepted.
    pub writes: u64,
    /// Reads the shard served.
    pub reads: u64,
}

impl ShardLoad {
    /// Total traffic (reads + writes) on the shard — the quantity bounded by
    /// Lemma 2.1.
    pub fn traffic(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Aggregate statistics over all shards of a store or snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Number of shards.
    pub num_shards: usize,
    /// Total keys across shards.
    pub total_keys: u64,
    /// Total reads served.
    pub total_reads: u64,
    /// Total writes accepted.
    pub total_writes: u64,
    /// Maximum traffic (reads + writes) on any single shard.
    pub max_shard_traffic: u64,
    /// Mean traffic per shard.
    pub mean_shard_traffic: f64,
}

impl StoreStats {
    /// Aggregate a list of per-shard loads.
    pub fn from_loads(loads: Vec<ShardLoad>) -> Self {
        let num_shards = loads.len().max(1);
        let total_keys = loads.iter().map(|l| l.keys).sum();
        let total_reads = loads.iter().map(|l| l.reads).sum();
        let total_writes = loads.iter().map(|l| l.writes).sum();
        let max_shard_traffic = loads.iter().map(|l| l.traffic()).max().unwrap_or(0);
        let mean_shard_traffic = (total_reads + total_writes) as f64 / num_shards as f64;
        StoreStats {
            num_shards,
            total_keys,
            total_reads,
            total_writes,
            max_shard_traffic,
            mean_shard_traffic,
        }
    }

    /// Ratio between the hottest shard and the mean shard.
    ///
    /// Values close to 1.0 mean the random placement balanced traffic well;
    /// Lemma 2.1 predicts an O(1) factor when `P = O(S^{1-Ω(1)})`.
    pub fn imbalance(&self) -> f64 {
        if self.mean_shard_traffic == 0.0 {
            1.0
        } else {
            self.max_shard_traffic as f64 / self.mean_shard_traffic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(shard: usize, keys: u64, writes: u64, reads: u64) -> ShardLoad {
        ShardLoad {
            shard,
            keys,
            writes,
            reads,
        }
    }

    #[test]
    fn traffic_sums_reads_and_writes() {
        assert_eq!(load(0, 5, 3, 7).traffic(), 10);
        assert_eq!(load(0, 5, 0, 0).traffic(), 0);
    }

    #[test]
    fn aggregation_over_loads() {
        let stats = StoreStats::from_loads(vec![
            load(0, 10, 5, 15),
            load(1, 20, 5, 5),
            load(2, 0, 0, 0),
        ]);
        assert_eq!(stats.num_shards, 3);
        assert_eq!(stats.total_keys, 30);
        assert_eq!(stats.total_reads, 20);
        assert_eq!(stats.total_writes, 10);
        assert_eq!(stats.max_shard_traffic, 20);
        assert!((stats.mean_shard_traffic - 10.0).abs() < 1e-9);
        assert!((stats.imbalance() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_loads_have_neutral_imbalance() {
        let stats = StoreStats::from_loads(vec![]);
        assert_eq!(stats.num_shards, 1);
        assert_eq!(stats.imbalance(), 1.0);
    }

    #[test]
    fn stats_clone_and_compare() {
        let stats = StoreStats::from_loads(vec![load(0, 1, 2, 3)]);
        let copy = stats.clone();
        assert_eq!(stats, copy);
    }
}
